//! # cfva — Conflict-Free Vector Access
//!
//! Umbrella crate for the reproduction of
//!
//! > M. Valero, T. Lang, J. M. Llabería, M. Peiron, E. Ayguadé and
//! > J. J. Navarro, *"Increasing the Number of Strides for Conflict-Free
//! > Vector Access"*, ISCA 1992.
//!
//! Re-exports the three member crates:
//!
//! * [`core`] ([`cfva_core`]) — address mappings, access orders,
//!   planners, analytic models and hardware models (the paper's
//!   contribution);
//! * [`memsim`] ([`cfva_memsim`]) — the cycle-accurate multi-module
//!   memory simulator used to measure latencies;
//! * [`vecproc`] ([`cfva_vecproc`]) — the decoupled access/execute
//!   vector-processor model (register file, strip-mining, chaining).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub use cfva_core as core;
pub use cfva_memsim as memsim;
pub use cfva_vecproc as vecproc;

pub use cfva_core::{Addr, ConfigError, ModuleId, PlanError, Stride, StrideFamily, VectorSpec};
