//! Property tests of the paper's central claims: for ANY stride in the
//! window and ANY initial address, the replay order is conflict free
//! and the access completes in exactly `T + L + 1` cycles.

use cfva::core::mapping::{XorMatched, XorUnmatched};
use cfva::core::plan::{Planner, Strategy};
use cfva::core::{Stride, VectorSpec};
use cfva::memsim::{MemConfig, MemorySystem};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 + Section 3.2, matched memory: t = 3, s = 4, L = 128.
    #[test]
    fn matched_window_always_conflict_free(
        x in 0u32..=4,
        sigma in prop::sample::select(vec![1i64, 3, 5, 7, 9, 11, 13, 15]),
        base in 0u64..1_000_000,
    ) {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();

        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        prop_assert!(plan.is_conflict_free(8));

        let stats = MemorySystem::new(MemConfig::new(3, 3).unwrap()).run_plan(&plan);
        prop_assert_eq!(stats.latency, 8 + 128 + 1);
        prop_assert_eq!(stats.conflicts, 0);
        prop_assert_eq!(stats.stall_cycles, 0);
    }

    /// Theorem 3 + Section 4.2, unmatched memory: t = 3, s = 4, y = 9.
    #[test]
    fn unmatched_window_always_conflict_free(
        x in 0u32..=9,
        sigma in prop::sample::select(vec![1i64, 3, 5, 7]),
        base in 0u64..1_000_000,
    ) {
        let planner = Planner::unmatched(XorUnmatched::new(3, 4, 9).unwrap());
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();

        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        prop_assert!(plan.is_conflict_free(8));

        let stats = MemorySystem::new(MemConfig::new(6, 3).unwrap()).run_plan(&plan);
        prop_assert_eq!(stats.latency, 8 + 128 + 1);
        prop_assert_eq!(stats.conflicts, 0);
    }

    /// Negative strides are window members too (the module sequence is
    /// reversed but conflict-freedom is direction-independent).
    #[test]
    fn negative_strides_conflict_free(
        x in 0u32..=4,
        sigma in prop::sample::select(vec![-1i64, -3, -5, -7]),
        base in 1_000_000u64..2_000_000,
    ) {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        prop_assert!(plan.is_conflict_free(8));
    }

    /// Section 3.1 bound: subsequence order with q = 2, q' = 1 finishes
    /// within 2T + L cycles for any window family, σ, base.
    #[test]
    fn subsequence_order_within_2t_plus_l(
        x in 0u32..=4,
        sigma in prop::sample::select(vec![1i64, 3, 5, 7, 9, 11]),
        base in 0u64..1_000_000,
    ) {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();

        let plan = planner.plan(&vec, Strategy::Subsequence).unwrap();
        let mem = MemConfig::new(3, 3).unwrap().with_queues(2, 1).unwrap();
        let stats = MemorySystem::new(mem).run_plan(&plan);
        prop_assert!(
            stats.latency <= 2 * 8 + 128,
            "latency {} > 2T+L",
            stats.latency
        );
    }

    /// Every plan, of any strategy, is a permutation of the elements —
    /// nothing lost, nothing fetched twice.
    #[test]
    fn plans_are_permutations(
        x in 0u32..=6,
        sigma in prop::sample::select(vec![1i64, 3, 5]),
        base in 0u64..100_000,
        strategy in prop::sample::select(vec![
            Strategy::Canonical,
            Strategy::Subsequence,
            Strategy::ConflictFree,
            Strategy::Auto,
        ]),
    ) {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();
        if let Ok(plan) = planner.plan(&vec, strategy) {
            let mut order = plan.element_order();
            order.sort_unstable();
            let want: Vec<u64> = (0..128).collect();
            prop_assert_eq!(order, want);
            // Entries agree with the vector's address arithmetic.
            for e in &plan {
                prop_assert_eq!(e.addr(), vec.element_addr(e.element()));
            }
        }
    }

    /// Auto never fails and never does worse than canonical.
    #[test]
    fn auto_never_worse_than_canonical(
        x in 0u32..=8,
        sigma in prop::sample::select(vec![1i64, 3, 5]),
        base in 0u64..100_000,
    ) {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();
        let mem = MemConfig::new(3, 3).unwrap();

        let auto = planner.plan(&vec, Strategy::Auto).unwrap();
        let canonical = planner.plan(&vec, Strategy::Canonical).unwrap();
        let auto_lat = MemorySystem::new(mem).run_plan(&auto).latency;
        let canon_lat = MemorySystem::new(mem).run_plan(&canonical).latency;
        prop_assert!(auto_lat <= canon_lat, "auto {auto_lat} > canonical {canon_lat}");
    }
}

/// The T-matched necessary condition (Section 2): families outside the
/// window produce vectors that are NOT T-matched, hence no order can be
/// conflict free.
#[test]
fn outside_window_not_t_matched() {
    use cfva::core::dist::SpatialDistribution;
    let map = XorMatched::new(3, 4).unwrap();
    for x in 5..=8u32 {
        let vec = VectorSpec::new(0, 1i64 << x, 128).unwrap();
        let sd = SpatialDistribution::compute(&map, &vec);
        assert!(!sd.is_t_matched(8), "family {x} should not be T-matched");
    }
}
