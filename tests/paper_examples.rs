//! End-to-end checks of every worked example in the paper, through the
//! full planner → simulator pipeline.

use cfva::core::dist::{ctp, SpatialDistribution};
use cfva::core::mapping::{ModuleMap, XorMatched, XorUnmatched};
use cfva::core::plan::{Planner, Strategy};
use cfva::memsim::{MemConfig, MemorySystem};
use cfva::VectorSpec;

/// Section 3 example: stride 12, A1 = 16, m = t = 3, s = 3.
#[test]
fn section_3_running_example() {
    let map = XorMatched::new(3, 3).unwrap();
    let vec = VectorSpec::new(16, 12, 64).unwrap();

    // CTP from the paper text.
    let want: Vec<u64> = vec![2, 7, 5, 2, 0, 5, 3, 0, 6, 3, 1, 6, 4, 1, 7, 4];
    let got: Vec<u64> = ctp(&map, &vec).iter().map(|m| m.get()).collect();
    assert_eq!(got, want);

    // The vector is T-matched (8 elements per module).
    let sd = SpatialDistribution::compute(&map, &vec);
    assert_eq!(sd.counts(), &[8u64; 8]);

    // In order: conflicts; replayed: the exact minimum latency.
    let planner = Planner::matched(map);
    let mem = MemConfig::new(3, 3).unwrap();

    let canonical = planner.plan(&vec, Strategy::Canonical).unwrap();
    let stats = MemorySystem::new(mem).run_plan(&canonical);
    assert!(stats.conflicts > 0);
    assert!(stats.latency > 73);

    let replay = planner.plan(&vec, Strategy::ConflictFree).unwrap();
    let stats = MemorySystem::new(mem).run_plan(&replay);
    assert_eq!(stats.latency, 73);
    assert_eq!(stats.conflicts, 0);
}

/// Figure 3's grid positions, spot-checked through the public API.
#[test]
fn figure_3_spot_checks() {
    let map = XorMatched::new(3, 3).unwrap();
    // (address, module) pairs read off the figure.
    for (addr, module) in [
        (0u64, 0u64),
        (9, 0),
        (8, 1),
        (18, 0),
        (27, 0),
        (36, 0),
        (45, 0),
        (54, 0),
        (63, 0),
        (64, 0),
        (71, 7),
        (31, 4),
        (50, 4),
    ] {
        assert_eq!(map.module_of(addr.into()).get(), module, "address {addr}");
    }
}

/// Section 3.3: L = 128, m = t = 3, s = 4 gives conflict-free families
/// x = 0..4 — checked by simulation at the family representatives.
#[test]
fn section_3_3_window_example() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let mem = MemConfig::new(3, 3).unwrap();
    for x in 0..=4u32 {
        let vec = VectorSpec::new(100, 1i64 << x, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let stats = MemorySystem::new(mem).run_plan(&plan);
        assert_eq!(stats.latency, 8 + 128 + 1, "family {x}");
    }
    // x = 5 is outside.
    let vec = VectorSpec::new(100, 32, 128).unwrap();
    assert!(planner.plan(&vec, Strategy::ConflictFree).is_err());
}

/// Figure 7 and the Section 4.1 examples on the unmatched memory.
#[test]
fn section_4_unmatched_examples() {
    let map = XorUnmatched::new(2, 3, 7).unwrap();

    // The italic vector: A1 = 6, S = 16, λ = 5.
    let vec = VectorSpec::new(6, 16, 32).unwrap();
    let first_subseq: Vec<u64> = [0u64, 8, 16, 24]
        .iter()
        .map(|&e| map.module_of(vec.element_addr(e)).get())
        .collect();
    assert_eq!(first_subseq, vec![2, 6, 10, 14]);

    let planner = Planner::unmatched(map);
    let mem = MemConfig::new(4, 2).unwrap();
    let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
    let stats = MemorySystem::new(mem).run_plan(&plan);
    assert_eq!(stats.latency, 4 + 32 + 1);

    // x = 6, σ = 3: modules (0,12,8,4)/(4,0,12,8) pre-replay.
    let vec = VectorSpec::new(0, 192, 32).unwrap();
    let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
    let stats = MemorySystem::new(mem).run_plan(&plan);
    assert_eq!(stats.latency, 4 + 32 + 1);
    assert_eq!(stats.conflicts, 0);
}

/// Section 4.3: M = 64, T = 8, s = 4, y = 9 serves x = 0..9 for L=128.
#[test]
fn section_4_3_window_example() {
    let planner = Planner::unmatched(XorUnmatched::new(3, 4, 9).unwrap());
    let mem = MemConfig::new(6, 3).unwrap();
    for x in 0..=9u32 {
        let vec = VectorSpec::new(12345, 3i64 << x, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let stats = MemorySystem::new(mem).run_plan(&plan);
        assert_eq!(stats.latency, 8 + 128 + 1, "family {x}");
        assert_eq!(stats.conflicts, 0, "family {x}");
    }
    let vec = VectorSpec::new(12345, 1 << 10, 128).unwrap();
    assert!(planner.plan(&vec, Strategy::ConflictFree).is_err());
}

/// Section 5's four headline efficiency numbers, as analytic values.
#[test]
fn section_5_headline_numbers() {
    use cfva::core::analysis;
    assert_eq!(analysis::fraction_conflict_free_exact(4), (31, 32));
    assert_eq!(analysis::fraction_conflict_free_exact(9), (1023, 1024));
    assert!((analysis::efficiency(4, 3) - 0.914).abs() < 5e-4);
    assert!((analysis::efficiency(9, 3) - 0.997).abs() < 5e-4);
    assert!((analysis::efficiency(0, 3) - 0.4).abs() < 1e-9);
    assert!((analysis::efficiency(3, 3) - 0.842).abs() < 5e-4);
}

/// The umbrella crate re-exports are usable as documented.
#[test]
fn umbrella_reexports() {
    let s: cfva::Stride = 24i64.try_into().unwrap();
    assert_eq!(s.family(), cfva::StrideFamily::new(3));
    let v = cfva::VectorSpec::new(0, 24, 64).unwrap();
    assert_eq!(v.lambda(), Some(6));
    let a = cfva::Addr::new(7);
    assert_eq!(a.get(), 7);
    let m = cfva::ModuleId::new(3);
    assert_eq!(m.get(), 3);
}
