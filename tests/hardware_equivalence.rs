//! Property tests: the register-transfer-level hardware models produce
//! cycle-for-cycle the same streams as the functional planner.

use cfva::core::hardware::{AddressGenerator, GeneratorConfig, ReplayEngine};
use cfva::core::mapping::{XorMatched, XorUnmatched};
use cfva::core::order::{replay_order, subseq_order, ReplayKey, SubseqStructure};
use cfva::core::{Stride, VectorSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Figure 4/5 FSM == functional subsequence order, for any matched
    /// configuration, family, σ, base.
    #[test]
    fn generator_equals_functional(
        t in 1u32..=3,
        extra in 0u32..=2,
        x in 0u32..=5,
        sigma in prop::sample::select(vec![1i64, 3, 5, -3]),
        base in 100_000u64..200_000,
    ) {
        let s = t + extra;
        let map = XorMatched::new(t, s).unwrap();
        prop_assume!(x <= s);
        let stride = Stride::from_parts(sigma, x).unwrap();
        let len = 1u64 << (s + t - x + 1); // two periods
        let vec = VectorSpec::with_stride(base.into(), stride, len).unwrap();
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();

        let cfg = GeneratorConfig::for_vector(&vec, &st).unwrap();
        let rtl: Vec<(u64, u64)> = AddressGenerator::new(cfg)
            .map(|(a, r)| (a.get(), r))
            .collect();
        let func: Vec<(u64, u64)> = subseq_order(&st, len)
            .unwrap()
            .into_iter()
            .map(|e| (vec.element_addr(e).get(), e))
            .collect();
        prop_assert_eq!(rtl, func);
    }

    /// Figure 6 engine == functional replay order, and the latch file
    /// never needs more than the paper's two latches per key.
    #[test]
    fn replay_engine_equals_functional_matched(
        x in 0u32..=4,
        sigma in prop::sample::select(vec![1i64, 3, 5]),
        base in 0u64..100_000,
    ) {
        let map = XorMatched::new(3, 4).unwrap();
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();

        let expected = replay_order(&map, &vec, &st, ReplayKey::Module).unwrap();
        let mut engine = ReplayEngine::new(&map, &vec, &st, ReplayKey::Module).unwrap();
        let got: Vec<u64> = std::iter::from_fn(|| engine.step().map(|r| r.element)).collect();
        prop_assert_eq!(got, expected);
        prop_assert!(engine.stats().max_latches_per_key <= 2);
        prop_assert!(engine.stats().max_latches_total <= 16); // 2T
    }

    /// Same equivalence on the unmatched memory, both replay keys.
    #[test]
    fn replay_engine_equals_functional_unmatched(
        x in 0u32..=7,
        sigma in prop::sample::select(vec![1i64, 3]),
        base in 0u64..100_000,
    ) {
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();

        let (st, key) = if x <= 3 {
            (
                SubseqStructure::for_unmatched_lower(&map, vec.family()).unwrap(),
                ReplayKey::Supermodule { t: 2 },
            )
        } else {
            (
                SubseqStructure::for_unmatched_upper(&map, vec.family()).unwrap(),
                ReplayKey::Section { t: 2 },
            )
        };

        let expected = replay_order(&map, &vec, &st, key).unwrap();
        let mut engine = ReplayEngine::new(&map, &vec, &st, key).unwrap();
        let got: Vec<u64> = std::iter::from_fn(|| engine.step().map(|r| r.element)).collect();
        prop_assert_eq!(got, expected);
        prop_assert!(engine.stats().max_latches_per_key <= 2);
    }
}
