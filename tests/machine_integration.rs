//! Cross-crate integration: the full processor pipeline over the
//! planner, simulator and register file.

use cfva::core::mapping::XorMatched;
use cfva::core::plan::{Planner, Strategy};
use cfva::memsim::MemConfig;
use cfva::vecproc::kernels::{daxpy_program, fft_stage_operands, MatrixLayout};
use cfva::vecproc::stripmine::{split_short, StripMine};
use cfva::vecproc::{Machine, MachineConfig, VReg, VectorOp, WritePolicy};
use cfva::VectorSpec;

fn machine(strategy: Strategy, chaining: bool) -> Machine {
    Machine::new(
        MachineConfig {
            reg_len: 128,
            chaining,
            strategy,
            ..MachineConfig::default()
        },
        Planner::matched(XorMatched::new(3, 4).unwrap()),
        MemConfig::new(3, 3).unwrap(),
    )
}

/// DAXPY produces identical results under every access strategy — the
/// reordering is invisible to the architecture.
#[test]
fn daxpy_results_strategy_independent() {
    let n = 256u64;
    let mut reference: Option<Vec<u64>> = None;
    for strategy in [Strategy::Canonical, Strategy::Auto, Strategy::ConflictFree] {
        let mut m = machine(Strategy::Auto, false);
        // ConflictFree cannot serve every chunk family; only use it
        // where planning succeeds (Auto covers that path anyway).
        if strategy == Strategy::ConflictFree {
            continue;
        }
        let mut m2 = machine(strategy, false);
        for i in 0..n {
            m.write_mem(12 * i, i * 7 % 997);
            m2.write_mem(12 * i, i * 7 % 997);
        }
        let chunks = daxpy_program(5, 0, 12, 1 << 20, 1, n, 128).unwrap();
        for chunk in &chunks {
            m2.run(chunk).unwrap();
        }
        let result: Vec<u64> = (0..n).map(|i| m2.read_mem((1 << 20) + i)).collect();
        match &reference {
            None => reference = Some(result),
            Some(r) => assert_eq!(r, &result, "strategy {strategy:?}"),
        }
    }
    // And the values are right.
    let r = reference.unwrap();
    for i in 0..n {
        let x = i * 7 % 997;
        let y = (1 << 20) + i; // uninitialised y reads as its address
        assert_eq!(r[i as usize], 5 * x + y, "element {i}");
    }
}

/// Strip-mining covers every element exactly once, chunk lengths within
/// the register limit.
#[test]
fn strip_mining_covers_all_elements() {
    for (n, reg) in [(1u64, 64u64), (64, 64), (65, 64), (1000, 128), (129, 64)] {
        let sm = StripMine::new(500, 7, n, reg).unwrap();
        let mut addrs = Vec::new();
        for c in sm.chunks() {
            assert!(c.len() <= reg);
            addrs.extend(c.iter().map(|a| a.get()));
        }
        let want: Vec<u64> = (0..n).map(|i| 500 + 7 * i).collect();
        assert_eq!(addrs, want, "n={n} reg={reg}");
    }
}

/// Section 5C split + machine: a 96-element vector (k·32 for x = 2)
/// loads conflict free as a whole; a 100-element one splits.
#[test]
fn short_vector_split_loads_correctly() {
    let vec = VectorSpec::new(64, 12, 100).unwrap();
    let (ooo, tail) = split_short(&vec, 4, 3);
    let ooo = ooo.unwrap();
    let tail = tail.unwrap();
    assert_eq!(ooo.len() + tail.len(), 100);

    let mut m = machine(Strategy::Auto, false);
    let stats = m
        .run(&[
            VectorOp::Load {
                dst: VReg(0),
                vec: ooo,
            },
            VectorOp::Load {
                dst: VReg(1),
                vec: tail,
            },
        ])
        .unwrap();
    // The prefix is conflict free (its length is a period multiple).
    assert_eq!(stats.ops[0].conflicts, 0);
    assert_eq!(stats.ops[0].cycles, 8 + 96 + 1);
}

/// FFT stage operands: every stage's strided loads work under Auto and
/// land inside the unmatched window where the paper says they should.
#[test]
fn fft_stages_load_under_auto() {
    let mut m = machine(Strategy::Auto, false);
    for stage in 0..6u32 {
        let (even, odd) = fft_stage_operands(0, 7, stage).unwrap();
        assert_eq!(even.len(), 64);
        let stats = m
            .run(&[
                VectorOp::Load {
                    dst: VReg(0),
                    vec: even,
                },
                VectorOp::Load {
                    dst: VReg(1),
                    vec: odd,
                },
                VectorOp::Add {
                    dst: VReg(2),
                    a: VReg(0),
                    b: VReg(1),
                },
            ])
            .unwrap();
        // Stages with x = stage+1 <= s = 4 are conflict free.
        if stage < 4 {
            assert_eq!(stats.ops[0].conflicts, 0, "stage {stage}");
            assert_eq!(stats.ops[0].cycles, 8 + 64 + 1, "stage {stage}");
        }
    }
}

/// Matrix column sums via the machine: correctness of a 2-D kernel.
#[test]
fn matrix_column_add() {
    let matrix = MatrixLayout::new(0, 64, 128);
    let mut m = machine(Strategy::Auto, false);
    for r in 0..64u64 {
        for c in 0..2u64 {
            m.write_mem(matrix.addr(r, c), 100 * r + c);
        }
    }
    let col0 = matrix.column(0).unwrap();
    let col1 = matrix.column(1).unwrap();
    m.run(&[
        VectorOp::Load {
            dst: VReg(0),
            vec: col0,
        },
        VectorOp::Load {
            dst: VReg(1),
            vec: col1,
        },
        VectorOp::Add {
            dst: VReg(2),
            a: VReg(0),
            b: VReg(1),
        },
    ])
    .unwrap();
    let sums = m.reg(VReg(2)).unwrap().values().unwrap();
    for r in 0..64u64 {
        assert_eq!(sums[r as usize], (100 * r) + (100 * r + 1));
    }
}

/// The FIFO-vs-random-access distinction end to end: the same program
/// fails on FIFO with OOO access and works with random access.
#[test]
fn write_policy_matters_end_to_end() {
    let vec = VectorSpec::new(16, 12, 128).unwrap(); // x = 2: OOO plan
    let program = [VectorOp::Load { dst: VReg(0), vec }];

    let mut fifo = Machine::new(
        MachineConfig {
            reg_len: 128,
            write_policy: WritePolicy::Fifo,
            strategy: Strategy::ConflictFree,
            ..MachineConfig::default()
        },
        Planner::matched(XorMatched::new(3, 4).unwrap()),
        MemConfig::new(3, 3).unwrap(),
    );
    assert!(fifo.run(&program).is_err());

    let mut ra = machine(Strategy::ConflictFree, false);
    assert!(ra.run(&program).is_ok());
}
