//! Multi-stream engine properties across **every registered map** (the
//! registry coverage set, so new maps are covered on registration):
//!
//! * the fast path (closed-form conflict-free finish, event-engine
//!   trace demux otherwise) is bit-identical to the traced cycle
//!   oracle for both static issue policies;
//! * per-stream statistics of conflict-free co-scheduled batches are
//!   permutation-invariant: reordering the streams permutes the
//!   per-stream views (up to the deterministic issue-slot shift of the
//!   arrivals) and changes nothing else.

use cfva::core::mapping::Registry;
use cfva::core::plan::{AccessPlan, Planner, Strategy};
use cfva::memsim::multi::{run_multi, IssuePolicy, MultiStats};
use cfva::memsim::{Engine, MemConfig, MemorySystem};
use cfva::{Stride, VectorSpec};
use proptest::prelude::*;

fn registry_len() -> usize {
    Registry::builtin().all_specs().len()
}

fn planner_for(kind: usize) -> (Planner, MemConfig) {
    let specs = Registry::builtin().all_specs();
    let spec = &specs[kind % specs.len()];
    (
        Planner::from_spec(spec).expect("coverage specs are buildable"),
        MemConfig::from_spec(spec).expect("coverage specs fit the simulator"),
    )
}

/// A small stream menu per map: spread strides, a conflicted family,
/// uneven lengths.
fn stream_menu(planner: &Planner) -> Vec<AccessPlan> {
    let mut plans = Vec::new();
    for (base, sigma, x, len) in [
        (0u64, 1i64, 0u32, 96u64),
        (17, 3, 0, 96),
        (5, 1, 2, 64),
        (1 << 9, 5, 1, 48),
    ] {
        let Ok(stride) = Stride::from_parts(sigma, x) else {
            continue;
        };
        let Ok(vec) = VectorSpec::with_stride(base.into(), stride, len) else {
            continue;
        };
        if let Ok(plan) = planner.plan(&vec, Strategy::Auto) {
            plans.push(plan);
        }
    }
    plans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast path ≡ cycle oracle, bit for bit, for every registered
    /// map, both static policies, any stream subset.
    #[test]
    fn multi_stream_fast_path_bit_identical_to_cycle_oracle(
        kind in 0usize..64,
        mask in 1usize..15,
        policy_ix in 0usize..2,
    ) {
        let kind = kind % registry_len();
        let (planner, cfg) = planner_for(kind);
        let menu = stream_menu(&planner);
        let plans: Vec<&AccessPlan> = menu
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, p)| p)
            .collect();
        prop_assume!(!plans.is_empty());
        let policy = [IssuePolicy::RoundRobin, IssuePolicy::Priority][policy_ix];
        let oracle = run_multi(cfg, &plans, policy).expect("validated plans");
        let fast = run_multi(cfg.with_engine(Engine::FastPath), &plans, policy)
            .expect("validated plans");
        prop_assert_eq!(&oracle, &fast, "map {} policy {}", kind, policy);
        // The totals are the per-stream sums under both paths.
        prop_assert_eq!(
            oracle.conflicts,
            oracle.streams.iter().map(|s| s.conflicts).sum::<u64>()
        );
        prop_assert_eq!(
            oracle.stall_cycles,
            oracle.streams.iter().map(|s| s.stall_cycles).sum::<u64>()
        );
    }

    /// Work-conserving runs are deterministic and account the same
    /// element counts as the static policies.
    #[test]
    fn work_conserving_is_deterministic_and_complete(
        kind in 0usize..64,
        mask in 1usize..15,
    ) {
        let kind = kind % registry_len();
        let (planner, cfg) = planner_for(kind);
        let menu = stream_menu(&planner);
        let plans: Vec<&AccessPlan> = menu
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, p)| p)
            .collect();
        prop_assume!(!plans.is_empty());
        let a = run_multi(cfg, &plans, IssuePolicy::WorkConserving).expect("validated");
        let b = run_multi(cfg, &plans, IssuePolicy::WorkConserving).expect("validated");
        prop_assert_eq!(&a, &b);
        for (stream, plan) in a.streams.iter().zip(&plans) {
            prop_assert_eq!(stream.elements, plan.len());
            prop_assert!(stream.arrival.iter().all(|&c| c > 0) || plan.is_empty());
        }
    }

    /// Permutation invariance of conflict-free co-scheduled batches:
    /// for equal-length streams whose round-robin co-run is conflict
    /// free, each stream's latency/spread/conflict/stall statistics do
    /// not depend on its position in the batch, and its arrivals shift
    /// by exactly its issue-slot offset.
    ///
    /// The batch is the canonical conflict-free co-schedule: `T`
    /// clustered streams (stride `2^u`, each pinned to a distinct
    /// module), so the round-robin rotation gives every module exactly
    /// `T` cycles between accesses. Each stream conflicts heavily
    /// *alone* — only the co-schedule is conflict free, which is
    /// precisely the scheduler's value proposition.
    #[test]
    fn conflict_free_coscheduled_stats_are_permutation_invariant(
        kind in 0usize..64,
        rotation in 1usize..8,
    ) {
        let kind = kind % registry_len();
        let specs = Registry::builtin().all_specs();
        let spec = &specs[kind];
        let registry = Registry::builtin();
        let map = registry.build(spec).expect("coverage specs build");
        let used = map.address_bits_used();
        prop_assume!(used <= 45); // Region saturates `used`; stride 2^64 unrepresentable
        let (planner, cfg) = planner_for(kind);
        let t_cycles = planner.t_cycles();
        prop_assume!(t_cycles <= 16);
        let rotation = rotation % t_cycles.max(2) as usize;
        prop_assume!(rotation > 0);
        // One stream per distinct module among small bases; need T of
        // them so the rotation spaces each module by exactly T cycles.
        let stride = Stride::from_parts(1, used).expect("used <= 45");
        let mut menu = Vec::new();
        let mut seen_modules = Vec::new();
        for base in 0u64..64 {
            if menu.len() as u64 == t_cycles {
                break;
            }
            let module = map.module_of(base.into());
            if seen_modules.contains(&module) {
                continue;
            }
            let Ok(vec) = VectorSpec::with_stride(base.into(), stride, 32) else { continue };
            if let Ok(plan) = planner.plan(&vec, Strategy::Auto) {
                seen_modules.push(module);
                menu.push(plan);
            }
        }
        prop_assume!(menu.len() as u64 == t_cycles);
        let plans: Vec<&AccessPlan> = menu.iter().collect();
        let baseline = run_multi(cfg, &plans, IssuePolicy::RoundRobin).expect("validated");
        prop_assert_eq!(baseline.conflicts, 0, "disjoint clustered batch is CF");
        prop_assert_eq!(baseline.stall_cycles, 0);

        let rotated: Vec<&AccessPlan> = (0..plans.len())
            .map(|i| plans[(i + rotation) % plans.len()])
            .collect();
        let permuted = run_multi(cfg, &rotated, IssuePolicy::RoundRobin).expect("validated");
        prop_assert_eq!(permuted.conflicts, 0);
        prop_assert_eq!(permuted.stall_cycles, 0);
        prop_assert_eq!(permuted.makespan, baseline.makespan);
        for (new_pos, stream) in permuted.streams.iter().enumerate() {
            let old_pos = (new_pos + rotation) % plans.len();
            let original = &baseline.streams[old_pos];
            prop_assert_eq!(stream.elements, original.elements);
            prop_assert_eq!(stream.latency, original.latency, "latency is position-free");
            prop_assert_eq!(stream.spread, original.spread, "spread is position-free");
            prop_assert_eq!(stream.conflicts, original.conflicts);
            prop_assert_eq!(stream.stall_cycles, original.stall_cycles);
            // Arrivals shift by the issue-slot delta, nothing else.
            let shift = new_pos as i64 - old_pos as i64;
            for (a, b) in stream.arrival.iter().zip(&original.arrival) {
                prop_assert_eq!(*a as i64 - *b as i64, shift);
            }
        }
    }
}

/// Deterministic anchor on the analyzable low-order map (`m = 3`,
/// matched `T = 8`): stride-2 streams from bases 0 and 1 own the even
/// and odd modules respectively. Each conflicts alone (same module
/// every 4 cycles, `T = 8`); interleaved, each module sees exactly
/// `T`-cycle spacing — the co-schedule is conflict free and beats the
/// sum of the solo runs. The reverse pair (bases 0 and 2, both on the
/// even modules) keeps conflicting, which is exactly the contrast the
/// conflict predictor scores.
#[test]
fn module_disjoint_pair_co_runs_conflict_free_on_the_low_order_map() {
    let specs = Registry::builtin().all_specs();
    let spec = specs
        .iter()
        .find(|s| format!("{s}").starts_with("interleaved"))
        .expect("interleaved is builtin");
    let planner = Planner::from_spec(spec).expect("buildable");
    let cfg = MemConfig::from_spec(spec).expect("buildable");
    let plan = |base: u64| {
        planner
            .plan(&VectorSpec::new(base, 2, 64).unwrap(), Strategy::Auto)
            .unwrap()
    };
    let (even, odd, even2) = (plan(0), plan(1), plan(2));

    let disjoint = run_multi(cfg, &[&even, &odd], IssuePolicy::RoundRobin).expect("validated");
    assert_eq!(disjoint.conflicts, 0, "disjoint module sets co-run CF");
    assert_eq!(disjoint.stall_cycles, 0);

    let shared = run_multi(cfg, &[&even, &even2], IssuePolicy::RoundRobin).expect("validated");
    assert!(shared.conflicts > 0, "shared module sets keep conflicting");

    // The CF co-schedule beats running the two streams back to back.
    let solo: Vec<u64> = [&even, &odd]
        .iter()
        .map(|p| MemorySystem::new(cfg).run_plan(p).latency)
        .collect();
    assert!(disjoint.makespan < MultiStats::sequential_baseline(&solo));
}
