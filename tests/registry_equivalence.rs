//! The registry satellite proof: for **every registered spec**, the
//! registry-constructed map is bit-identical to the directly
//! constructed type — `module_of`, bulk `map_stride_into`, and the
//! full `AccessStats` of simulated accesses — and every spec
//! round-trips `MapSpec::parse(spec.to_string())`.
//!
//! The direct constructions below are the *oracle list*: the one place
//! that still names concrete types on purpose, so a registry wiring
//! bug (wrong key, wrong default, swapped parameter) cannot hide
//! behind the registry itself.

use cfva::core::mapping::{
    CustomGf2, Interleaved, Linear, MapSpec, ModuleMap, PseudoRandom, RegionMap, Registry, Skewed,
    XorMatched, XorUnmatched,
};
use cfva::core::plan::{Planner, Strategy};
use cfva::memsim::MemConfig;
use cfva::{Addr, ModuleId, Stride, VectorSpec};
use cfva_bench::runner::BatchRunner;
use proptest::prelude::*;

/// The hand-constructed twin of a builtin coverage spec — must match
/// the parameters in `Registry::builtin()` exactly.
fn direct_map(spec: &MapSpec) -> Box<dyn ModuleMap + Send + Sync> {
    match spec.name() {
        "interleaved" => Box::new(Interleaved::new(3).unwrap()),
        "skewed" => Box::new(Skewed::new(3, 3).unwrap()),
        "xor-matched" => Box::new(XorMatched::new(3, 4).unwrap()),
        "xor-unmatched" => Box::new(XorUnmatched::new(3, 4, 9).unwrap()),
        "linear" => {
            Box::new(Linear::new(vec![0b1_0010_1101, 0b0_1101_1010, 0b1_1000_0111]).unwrap())
        }
        "pseudo-random" => Box::new(PseudoRandom::new(3, 0b1011, 14).unwrap()),
        "region" => Box::new(RegionMap::new(3, 10, 3).unwrap().with_region(1, 6).unwrap()),
        "custom-gf2" => Box::new(CustomGf2::new(vec![0b001001, 0b010010, 0b100100], 6).unwrap()),
        other => panic!("coverage spec {other:?} has no direct twin — extend the oracle list"),
    }
}

/// The hand-constructed planner + memory twin of a coverage spec.
fn direct_session(spec: &MapSpec) -> BatchRunner {
    let (planner, cfg) = match spec.name() {
        "xor-matched" => (
            Planner::matched(XorMatched::new(3, 4).unwrap()),
            MemConfig::new(3, 3).unwrap(),
        ),
        "xor-unmatched" => (
            Planner::unmatched(XorUnmatched::new(3, 4, 9).unwrap()),
            MemConfig::new(6, 3).unwrap(),
        ),
        _ => {
            // Coverage specs carry no `t` rider, so the planner and
            // memory default to a matched geometry (t = m).
            let map = direct_map(spec);
            let m = map.module_bits();
            (Planner::baseline(map, m), MemConfig::new(m, m).unwrap())
        }
    };
    BatchRunner::new(planner, cfg)
}

#[test]
fn every_spec_round_trips_through_its_string_form() {
    for spec in Registry::builtin().all_specs() {
        let rendered = spec.to_string();
        let reparsed = MapSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("{rendered}: rendered spec must re-parse, got {e}"));
        assert_eq!(reparsed, spec, "{rendered}");
    }
}

/// Full-stats equivalence: planning **and simulating** through a
/// spec-built session equals the directly constructed session, for
/// every registered map, family and strategy — the registry changes
/// how a map is named, never what it measures.
#[test]
fn registry_sessions_measure_identically_to_direct_sessions() {
    for spec in Registry::builtin().all_specs() {
        let mut from_spec = BatchRunner::from_spec(&spec).expect("coverage specs are buildable");
        let mut direct = direct_session(&spec);
        assert_eq!(from_spec.mem(), direct.mem(), "{spec}: memory geometry");
        for x in 0..=6u32 {
            for sigma in [1i64, 3] {
                let stride = Stride::from_parts(sigma, x).unwrap();
                for base in [0u64, 16, 1000] {
                    let vec = VectorSpec::with_stride(base.into(), stride, 64).unwrap();
                    for strategy in [Strategy::Canonical, Strategy::Auto] {
                        assert_eq!(
                            from_spec.measure_owned(&vec, strategy),
                            direct.measure_owned(&vec, strategy),
                            "{spec}: x={x} sigma={sigma} base={base} {strategy}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `module_of` bit-identity between the registry-built map and the
    /// direct construction, at random addresses.
    #[test]
    fn registry_module_of_matches_direct_construction(
        kind in 0usize..Registry::builtin().all_specs().len(),
        addr in 0u64..10_000_000,
    ) {
        let specs = Registry::builtin().all_specs();
        let spec = &specs[kind % specs.len()];
        let built = Registry::builtin().build(spec).expect("buildable");
        let direct = direct_map(spec);
        prop_assert_eq!(built.module_bits(), direct.module_bits(), "{}", spec);
        prop_assert_eq!(built.address_bits_used(), direct.address_bits_used(), "{}", spec);
        let a = Addr::new(addr);
        prop_assert_eq!(
            built.module_of(a),
            direct.module_of(a),
            "{}: address {}", spec, addr
        );
        prop_assert_eq!(
            built.displacement_of(a),
            direct.displacement_of(a),
            "{}: address {}", spec, addr
        );
    }

    /// Bulk `map_stride_into` bit-identity over random walks, both
    /// stride signs, ragged lengths.
    #[test]
    fn registry_bulk_mapping_matches_direct_construction(
        kind in 0usize..Registry::builtin().all_specs().len(),
        base in 0u64..1_000_000,
        sigma in prop::sample::select(vec![1i64, 3, 5, -3, -7]),
        x in 0u32..=6,
        len in 1usize..=300,
    ) {
        let specs = Registry::builtin().all_specs();
        let spec = &specs[kind % specs.len()];
        let built = Registry::builtin().build(spec).expect("buildable");
        let direct = direct_map(spec);
        let stride = sigma << x;
        let mut got = vec![ModuleId::new(0); len];
        let mut want = vec![ModuleId::new(0); len];
        built.map_stride_into(Addr::new(base), stride, &mut got);
        direct.map_stride_into(Addr::new(base), stride, &mut want);
        prop_assert_eq!(got, want, "{}: base {} stride {}", spec, base, stride);
    }

    /// Round-trip strengthening: a spec rebuilt from its rendered
    /// string constructs a map identical to the original build.
    #[test]
    fn reparsed_specs_build_identical_maps(
        kind in 0usize..Registry::builtin().all_specs().len(),
        addr in 0u64..1_000_000,
    ) {
        let specs = Registry::builtin().all_specs();
        let spec = &specs[kind % specs.len()];
        let original = Registry::builtin().build(spec).expect("buildable");
        let reparsed = Registry::builtin()
            .build_str(&spec.to_string())
            .expect("rendered specs are buildable");
        let a = Addr::new(addr);
        prop_assert_eq!(original.module_of(a), reparsed.module_of(a), "{}", spec);
    }
}
