//! Property tests of the mapping layer: balance, period contracts, and
//! agreement between the specialised maps and the general GF(2) matrix
//! form.
//!
//! The cross-map properties iterate the **registry** coverage set
//! (`Registry::builtin().all_specs()`), not a hand-rolled type list:
//! registering a map is what opts it into every property below.

use cfva::core::dist::empirical_period;
use cfva::core::mapping::{
    Interleaved, Linear, MapSpec, ModuleMap, Registry, Skewed, XorMatched, XorUnmatched,
};
use cfva::core::{Addr, Stride, VectorSpec};
use proptest::prelude::*;

fn assert_balanced_block<M: ModuleMap>(map: &M, block: u64) {
    let span = 1u64 << map.balance_bits();
    let mut counts = vec![0u64; map.module_count() as usize];
    for a in block * span..(block + 1) * span {
        counts[map.module_of(Addr::new(a)).get() as usize] += 1;
    }
    let expect = span / map.module_count();
    assert!(
        counts.iter().all(|&c| c == expect),
        "unbalanced map in block {block}: {counts:?}"
    );
}

fn assert_balanced<M: ModuleMap>(map: &M) {
    assert!(
        map.balance_bits() <= 22,
        "balance check would iterate 2^{} addresses — pick a smaller configuration",
        map.balance_bits()
    );
    assert_balanced_block(map, 0);
    if map.balance_bits() < map.address_bits_used() {
        // A map balanced on a finer grain than it is determined (an
        // overridden RegionMap) can apply different schemes in
        // different blocks — block 0 only sees the default, so walk a
        // few more to reach the overrides.
        for block in 1..4 {
            assert_balanced_block(map, block);
        }
    }
}

/// The `ModuleMap` contract documented in `cfva-core/src/mapping/mod.rs`:
/// over any aligned block of `2^{balance_bits()}` consecutive
/// addresses, every module receives the same number of addresses.
/// Checked for **every registered map** via the registry's coverage
/// set, plus extra parameterizations per family of maps (the
/// per-type proptests below cover more).
#[test]
fn every_registered_map_is_balanced_over_one_period() {
    for (spec, map) in Registry::builtin().all_maps() {
        assert!(
            map.balance_bits() <= 22,
            "{spec}: coverage specs must keep the balance check enumerable"
        );
        assert_balanced(&map);
    }

    // Degenerate and boundary parameterizations the canonical coverage
    // specs do not reach (skew 0, skews beyond M, tiny widths).
    for m in 1..=5u32 {
        assert_balanced(&Interleaved::new(m).unwrap());
        for skew in [0u64, 7, 11] {
            assert_balanced(&Skewed::new(m, skew).unwrap());
        }
    }
    assert_balanced(&Linear::interleaved(4).unwrap());
    assert_balanced(&Linear::xor_matched(3, 5).unwrap());
    assert_balanced(&Linear::xor_unmatched(2, 3, 7).unwrap());
}

/// The registry's coverage specs, parsed once: the cross-map property
/// tests below draw a `kind` index into this list, so registering a
/// new map automatically adds it to every property.
fn registry_specs() -> Vec<MapSpec> {
    Registry::builtin().all_specs()
}

/// One representative per registered map, for the cross-map property
/// tests below.
fn map_for(kind: usize) -> Box<dyn ModuleMap + Send + Sync> {
    let specs = registry_specs();
    Registry::builtin()
        .build(&specs[kind % specs.len()])
        .expect("coverage specs are buildable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `ModuleMap::period(family)` is a **true** period for every
    /// registered map: the module sequence of a random constant-stride
    /// vector repeats exactly after `P_x` elements.
    /// Note the contract is only that `P_x` is *a* period — it need
    /// not be the minimal one (some base/σ combinations repeat
    /// earlier), which is why the check is `seq[k] == seq[k + P_x]`
    /// and not minimality.
    #[test]
    fn period_is_a_true_period_for_all_registered_maps(
        kind in 0usize..registry_specs().len(),
        x in 0u32..=8,
        sigma in prop::sample::select(vec![1i64, 3, 5, 7, 9]),
        base in 0u64..1_000_000,
    ) {
        let map = map_for(kind);
        let stride = Stride::from_parts(sigma, x).expect("odd sigma");
        let p = map.period(stride.family());
        // Keep the enumeration bounded; every map above has
        // address_bits_used small enough that this covers p <= 2^14.
        if p <= 1 << 14 {
            let len = 2 * p + 17; // cover one full period plus a ragged tail
            let vec = VectorSpec::with_stride(base.into(), stride, len).expect("valid");
            for k in 0..p + 17 {
                let a = vec.element_addr(k);
                let b = vec.element_addr(k + p);
                prop_assert_eq!(
                    map.module_of(a),
                    map.module_of(b),
                    "kind {} x {} sigma {} base {}: element {} vs {}",
                    kind, x, sigma, base, k, k + p
                );
            }
        }
    }

    /// The bulk `map_stride_into` produces exactly the per-element
    /// `module_of` sequence for every registered map, stride sign and
    /// length — the contract `Planner::plan_into` relies on.
    #[test]
    fn bulk_mapping_matches_module_of_for_all_registered_maps(
        kind in 0usize..registry_specs().len(),
        x in 0u32..=6,
        sigma in prop::sample::select(vec![1i64, 3, 5, -3, -7]),
        base in 500_000u64..1_000_000,
        len in 1u64..=300,
    ) {
        let map = map_for(kind);
        let stride = Stride::from_parts(sigma, x).expect("odd sigma");
        let vec = VectorSpec::with_stride(base.into(), stride, len).expect("valid");
        let mut bulk = vec![cfva::ModuleId::new(0); len as usize];
        map.map_stride_into(vec.base(), vec.stride().get(), &mut bulk);
        for (k, &got) in bulk.iter().enumerate() {
            prop_assert_eq!(
                got,
                map.module_of(vec.element_addr(k as u64)),
                "kind {} stride {} base {} element {}",
                kind, vec.stride().get(), base, k
            );
        }
    }

    /// Every map distributes one full address period evenly over the
    /// modules (the balance requirement of the ModuleMap contract).
    #[test]
    fn xor_matched_is_balanced(t in 1u32..=3, extra in 0u32..=3) {
        assert_balanced(&XorMatched::new(t, t + extra).unwrap());
    }

    #[test]
    fn xor_unmatched_is_balanced(t in 1u32..=2, se in 0u32..=2, ye in 0u32..=2) {
        let s = t + se;
        let y = s + t + ye;
        assert_balanced(&XorUnmatched::new(t, s, y).unwrap());
    }

    #[test]
    fn skewed_is_balanced(m in 1u32..=4, skew in 0u64..16) {
        assert_balanced(&Skewed::new(m, skew).unwrap());
    }

    /// The closed-form period is a true period of the module sequence:
    /// the empirically observed period divides it.
    #[test]
    fn period_contract(
        t in 1u32..=3,
        extra in 0u32..=2,
        x in 0u32..=6,
        sigma in prop::sample::select(vec![1i64, 3, 5, 7]),
        base in 0u64..100_000,
    ) {
        let map = XorMatched::new(t, t + extra).unwrap();
        let stride = Stride::from_parts(sigma, x).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 1 << 12).unwrap();
        let p = map.period(vec.family());
        if p <= 1 << 10 {
            let emp = empirical_period(&map, &vec, 2 * p.max(2)).unwrap();
            prop_assert_eq!(p % emp, 0, "empirical {} does not divide {}", emp, p);
        }
    }

    /// The general GF(2) matrix map agrees with the hand-optimised
    /// special cases everywhere.
    #[test]
    fn linear_matches_special_cases(addr in 0u64..1_000_000) {
        let a = Addr::new(addr);

        let xm = XorMatched::new(3, 5).unwrap();
        let lm = Linear::xor_matched(3, 5).unwrap();
        prop_assert_eq!(xm.module_of(a), lm.module_of(a));

        let xu = XorUnmatched::new(2, 3, 7).unwrap();
        let lu = Linear::xor_unmatched(2, 3, 7).unwrap();
        prop_assert_eq!(xu.module_of(a), lu.module_of(a));

        let il = Interleaved::new(4).unwrap();
        let li = Linear::interleaved(4).unwrap();
        prop_assert_eq!(il.module_of(a), li.module_of(a));
    }

    /// (module, displacement) is injective: distinct addresses never
    /// collide in both coordinates.
    #[test]
    fn module_displacement_injective(seed in 0u64..1000) {
        use std::collections::HashSet;
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let mut seen = HashSet::new();
        for a in (seed * 512)..(seed * 512 + 512) {
            let key = (map.module_of(Addr::new(a)).get(), map.displacement_of(Addr::new(a)));
            prop_assert!(seen.insert(key), "collision at address {}", a);
        }
    }

    /// Matched in-order conflict freedom for family x = s (the prior
    /// art the paper builds on): any window of T consecutive elements
    /// hits T distinct modules.
    #[test]
    fn xor_matched_family_s_in_order(
        sigma in prop::sample::select(vec![1i64, 3, 5, 7]),
        base in 0u64..1_000_000,
    ) {
        let map = XorMatched::new(3, 4).unwrap();
        let stride = Stride::from_parts(sigma, 4).unwrap();
        let vec = VectorSpec::with_stride(base.into(), stride, 256).unwrap();
        let mods: Vec<u64> = vec.iter().map(|a| map.module_of(a).get()).collect();
        for w in mods.windows(8) {
            let set: std::collections::BTreeSet<&u64> = w.iter().collect();
            prop_assert_eq!(set.len(), 8);
        }
    }
}
