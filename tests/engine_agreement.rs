//! Property suite: the four simulation engines (`Cycle` oracle,
//! `Event` queue, `Periodic` steady-state fast-forward, `FastPath`
//! shortcut) agree bit-for-bit on randomly generated plans — across
//! **every registered `ModuleMap`** (the registry coverage set, so new
//! maps are covered on registration) — and on synthetic request
//! streams that mix conflict-free windows with bursts to a single
//! module.

use cfva::core::mapping::Registry;
use cfva::core::plan::{Planner, Strategy};
use cfva::memsim::{Engine, MemConfig, MemorySystem};
use cfva::{Addr, ModuleId, Stride, VectorSpec};
use proptest::prelude::*;

/// Number of registered maps: the `kind` dimension of the proptests.
fn registry_len() -> usize {
    Registry::builtin().all_specs().len()
}

/// One planner + memory configuration per registered map, both derived
/// from the same coverage spec (`xor-matched`/`xor-unmatched` get
/// their out-of-order planners and the unmatched `M = T²` geometry).
fn planner_for(kind: usize) -> (Planner, MemConfig) {
    let specs = Registry::builtin().all_specs();
    let spec = &specs[kind % specs.len()];
    (
        Planner::from_spec(spec).expect("coverage specs are buildable"),
        MemConfig::from_spec(spec).expect("coverage specs fit the simulator"),
    )
}

/// Runs one plan through all four engines on fresh systems and
/// asserts identical statistics.
fn engines_agree_on_plan(
    planner: &Planner,
    cfg: MemConfig,
    vec: &VectorSpec,
    strategy: Strategy,
) -> Result<(), TestCaseError> {
    let Ok(plan) = planner.plan(vec, strategy) else {
        // Strategy cannot serve the access (e.g. family outside the
        // window for ConflictFree): nothing to compare.
        return Ok(());
    };
    let oracle = MemorySystem::new(cfg).run_plan(&plan);
    let event = MemorySystem::new(cfg.with_engine(Engine::Event)).run_plan(&plan);
    let periodic = MemorySystem::new(cfg.with_engine(Engine::Periodic)).run_plan(&plan);
    let fast = MemorySystem::new(cfg.with_engine(Engine::FastPath)).run_plan(&plan);
    prop_assert_eq!(&oracle, &event, "cycle vs event");
    prop_assert_eq!(&oracle, &periodic, "cycle vs periodic");
    prop_assert_eq!(&oracle, &fast, "cycle vs fast-path");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random plans over every registered map, strategies and queue
    /// shapes: identical `AccessStats` from all four engines.
    #[test]
    fn engines_agree_on_random_plans(
        kind in 0usize..registry_len(),
        x in 0u32..=7,
        sigma in prop::sample::select(vec![1i64, 3, 5, 7, 9]),
        base in 0u64..10_000,
        lambda in 4u32..=7,
        strategy in prop::sample::select(vec![
            Strategy::Canonical,
            Strategy::Auto,
            Strategy::ConflictFree,
            Strategy::Subsequence,
        ]),
        q_in in 1usize..=3,
        q_out in 1usize..=2,
    ) {
        let (planner, cfg) = planner_for(kind);
        let cfg = cfg.with_queues(q_in, q_out).expect("nonzero queues");
        let stride = Stride::from_parts(sigma, x).expect("odd sigma");
        let vec = VectorSpec::with_stride(base.into(), stride, 1 << lambda).expect("valid");
        engines_agree_on_plan(&planner, cfg, &vec, strategy)?;
    }

    /// Synthetic request streams alternating conflict-free rotations
    /// with bursts pinned to one module — the mixed regime where the
    /// event engine flips between per-cycle processing and closed-form
    /// stall skips.
    #[test]
    fn engines_agree_on_mixed_window_burst_streams(
        m in 1u32..=3,
        t in 1u32..=5,
        cf_window in 1u64..=16,
        burst in 1u64..=16,
        burst_module in 0u64..8,
        q_in in 1usize..=3,
        q_out in 1usize..=2,
        // Long enough that the periodic engine's recurrence detection
        // and fast-forward actually engage on many cases.
        len in 1u64..=512,
    ) {
        let module_count = 1u64 << m;
        let burst_module = burst_module % module_count;
        let cfg = MemConfig::new(m, t)
            .expect("valid")
            .with_queues(q_in, q_out)
            .expect("nonzero queues");

        // Element i takes a rotating module during conflict-free
        // phases and the pinned module during burst phases.
        let period = cf_window + burst;
        let stream: Vec<(u64, Addr, ModuleId)> = (0..len)
            .map(|i| {
                let module = if i % period < cf_window {
                    i % module_count
                } else {
                    burst_module
                };
                (i, Addr::new(i), ModuleId::new(module))
            })
            .collect();

        let oracle = MemorySystem::new(cfg).run_requests(&stream);
        let event = MemorySystem::new(cfg.with_engine(Engine::Event)).run_requests(&stream);
        let periodic = MemorySystem::new(cfg.with_engine(Engine::Periodic)).run_requests(&stream);
        let fast = MemorySystem::new(cfg.with_engine(Engine::FastPath)).run_requests(&stream);
        prop_assert_eq!(&oracle, &event, "cycle vs event");
        prop_assert_eq!(&oracle, &periodic, "cycle vs periodic");
        prop_assert_eq!(&oracle, &fast, "cycle vs fast-path");
    }
}
