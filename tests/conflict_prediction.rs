//! Validates the closed-form conflict predictor
//! (`equiv::conflict_score`) against **measured** multi-stream
//! conflicts for every registered map.
//!
//! The predictor promises, per map:
//!
//! * score `0.0` for two streams whose occupancy signatures touch
//!   disjoint module sets — such pairs must co-run with zero measured
//!   conflicts when each stream is conflict-free alone;
//! * for streams that hammer a single shared module (`x ≥ u`, same
//!   module), a score near the module count and measured conflicts
//!   strictly above zero;
//! * class invariance and symmetry (unit-tested in `cfva-core`); here
//!   we check the *ordering*: among measured candidates, a max-score
//!   pair never measures fewer co-run conflicts than a zero-score pair.

use cfva::core::equiv::conflict_score;
use cfva::core::mapping::Registry;
use cfva::core::plan::{AccessPlan, Planner, Strategy};
use cfva::memsim::multi::{run_multi, IssuePolicy};
use cfva::memsim::{MemConfig, MemorySystem};
use cfva::{Stride, VectorSpec};

/// Streams that are conflict-free alone under this map, paired with
/// their specs (the predictor works on specs, not plans).
fn cf_candidates(planner: &Planner, cfg: MemConfig) -> Vec<(VectorSpec, AccessPlan)> {
    let mut out = Vec::new();
    for (base, sigma, x) in [
        (0u64, 1i64, 0u32),
        (3, 1, 0),
        (1 << 8, 3, 0),
        (65, 5, 0),
        (7, 1, 1),
        (1 << 10, 3, 1),
    ] {
        let Ok(stride) = Stride::from_parts(sigma, x) else {
            continue;
        };
        let Ok(vec) = VectorSpec::with_stride(base.into(), stride, 64) else {
            continue;
        };
        let Ok(plan) = planner.plan(&vec, Strategy::Auto) else {
            continue;
        };
        let alone = MemorySystem::new(cfg).run_plan(&plan);
        if alone.conflicts == 0 && alone.stall_cycles == 0 {
            out.push((vec, plan));
        }
    }
    out
}

#[test]
fn zero_score_pairs_measure_zero_conflicts() {
    let registry = Registry::builtin();
    let mut checked = 0usize;
    for spec in registry.all_specs() {
        let map = registry.build(&spec).expect("coverage specs build");
        let planner = registry.planner(&spec).expect("coverage specs plan");
        let cfg = MemConfig::from_spec(&spec).expect("coverage specs simulate");
        let candidates = cf_candidates(&planner, cfg);
        for (i, (va, pa)) in candidates.iter().enumerate() {
            for (vb, pb) in candidates.iter().skip(i + 1) {
                let score = conflict_score(map.as_ref(), va, vb);
                if score != 0.0 {
                    continue;
                }
                // Disjoint modules + both CF alone: the co-run issues
                // each stream at half rate onto disjoint modules, so
                // spacing only grows — zero conflicts, guaranteed.
                let co = run_multi(cfg, &[pa, pb], IssuePolicy::RoundRobin)
                    .expect("two validated streams");
                assert_eq!(
                    co.conflicts, 0,
                    "map {}: predictor said disjoint but co-run conflicted",
                    spec
                );
                checked += 1;
            }
        }
    }
    // The menu must actually exercise the property on some maps.
    assert!(checked > 0, "no zero-score pairs found across the registry");
}

#[test]
fn clustered_same_module_pairs_score_high_and_measure_conflicts() {
    let registry = Registry::builtin();
    let mut checked = 0usize;
    for spec in registry.all_specs() {
        let map = registry.build(&spec).expect("coverage specs build");
        let used = map.address_bits_used();
        // Region's override saturates used to the full 64 bits; a
        // 2^64 stride is unrepresentable, so that map is covered by
        // the sampled-prefix unit tests instead.
        if used > 45 {
            continue;
        }
        let planner = registry.planner(&spec).expect("coverage specs plan");
        let cfg = MemConfig::from_spec(&spec).expect("coverage specs simulate");
        let module_count = map.module_count() as f64;
        // Stride 2^used from the same base: every element of both
        // streams maps to one and the same module.
        let stride = Stride::from_parts(1, used).expect("used <= 45");
        let va = VectorSpec::with_stride(0u64.into(), stride, 32).expect("valid");
        let vb = VectorSpec::with_stride(0u64.into(), stride, 32).expect("valid");
        let score = conflict_score(map.as_ref(), &va, &vb);
        assert!(
            (score - module_count).abs() < 1e-9,
            "map {}: clustered pair scored {score}, expected {module_count}",
            spec
        );
        let pa = planner.plan(&va, Strategy::Auto).expect("plannable");
        let pb = planner.plan(&vb, Strategy::Auto).expect("plannable");
        let co =
            run_multi(cfg, &[&pa, &pb], IssuePolicy::RoundRobin).expect("two validated streams");
        assert!(
            co.conflicts > 0,
            "map {}: clustered co-run measured no conflicts",
            spec
        );
        checked += 1;
    }
    assert!(checked > 0, "no clustered pairs exercised");
}

#[test]
fn score_ordering_tracks_measured_conflicts() {
    let registry = Registry::builtin();
    let mut ordered = 0usize;
    for spec in registry.all_specs() {
        let map = registry.build(&spec).expect("coverage specs build");
        let used = map.address_bits_used();
        if used > 45 {
            // Region's per-region override saturates `used`; a 2^64
            // stride is unrepresentable. Covered by the unit tests.
            continue;
        }
        let planner = registry.planner(&spec).expect("coverage specs plan");
        let cfg = MemConfig::from_spec(&spec).expect("coverage specs simulate");
        // CF spread streams (pairwise score near the uniform 1.0 or
        // below) plus clustered single-module streams (score near M
        // against each other) so the extremes genuinely differ.
        let mut candidates = cf_candidates(&planner, cfg);
        let clustered = Stride::from_parts(1, used).expect("used <= 45");
        for base in [0u64, 1] {
            let Ok(vec) = VectorSpec::with_stride(base.into(), clustered, 32) else {
                continue;
            };
            if let Ok(plan) = planner.plan(&vec, Strategy::Auto) {
                candidates.push((vec, plan));
            }
        }
        // Score every pair, co-run the extremes.
        let mut best: Option<(f64, usize, usize)> = None;
        let mut worst: Option<(f64, usize, usize)> = None;
        for (i, (va, _)) in candidates.iter().enumerate() {
            for (j, (vb, _)) in candidates.iter().enumerate().skip(i + 1) {
                let score = conflict_score(map.as_ref(), va, vb);
                if best.is_none_or(|(s, _, _)| score > s) {
                    best = Some((score, i, j));
                }
                if worst.is_none_or(|(s, _, _)| score < s) {
                    worst = Some((score, i, j));
                }
            }
        }
        let (Some((hi, hi_i, hi_j)), Some((lo, lo_i, lo_j))) = (best, worst) else {
            continue;
        };
        // Only meaningful when the predictor actually separates the
        // pairs for this map.
        if hi < lo + 0.5 {
            continue;
        }
        // Cross-stream conflicts: the co-run total in excess of what
        // each stream suffers alone (clustered streams self-conflict
        // even solo; the predictor only speaks to the interaction).
        let measure = |i: usize, j: usize| {
            let co = run_multi(
                cfg,
                &[&candidates[i].1, &candidates[j].1],
                IssuePolicy::RoundRobin,
            )
            .expect("two validated streams")
            .conflicts;
            let mut system = MemorySystem::new(cfg);
            let alone = system.run_plan(&candidates[i].1).conflicts
                + system.run_plan(&candidates[j].1).conflicts;
            co.saturating_sub(alone)
        };
        let hi_measured = measure(hi_i, hi_j);
        let lo_measured = measure(lo_i, lo_j);
        assert!(
            hi_measured >= lo_measured,
            "map {}: score ordering inverted (score {hi:.2} -> {hi_measured} conflicts, \
             score {lo:.2} -> {lo_measured} conflicts)",
            spec
        );
        ordered += 1;
    }
    assert!(ordered > 0, "predictor never separated any pair");
}
