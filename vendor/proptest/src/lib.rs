//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface this workspace's
//! property tests use: the [`proptest!`] macro over zero-argument test
//! functions with `name in strategy` bindings, integer range strategies,
//! `prop::sample::select`, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`], and `ProptestConfig::with_cases`.
//!
//! Cases are drawn from a deterministic RNG seeded by the test's name,
//! so failures reproduce exactly on re-run. There is no shrinking: the
//! failing case's index and values are reported instead.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo == hi { lo } else { rng.gen_range(lo..hi + 1) }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform choice among a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T> Select<T> {
        /// Creates a selection strategy over `choices`.
        ///
        /// # Panics
        ///
        /// Panics if `choices` is empty.
        pub fn new(choices: Vec<T>) -> Self {
            assert!(!choices.is_empty(), "cannot select from nothing");
            Select { choices }
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.choices[rng.gen_range(0..self.choices.len())].clone()
        }
    }
}

pub mod prop {
    //! The `prop` namespace mirrored from proptest.

    pub mod sample {
        //! Sampling strategies.

        /// Uniform choice among a fixed set of values.
        pub fn select<T: Clone>(choices: Vec<T>) -> crate::strategy::Select<T> {
            crate::strategy::Select::new(choices)
        }
    }
}

pub mod test_runner {
    //! The case-execution engine behind [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is not counted.
        Reject,
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives the cases of one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        rng: StdRng,
        case: u32,
    }

    impl TestRunner {
        /// Creates a runner; the RNG seed is derived from `name`, so
        /// each test's stream is stable across runs.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                name,
                rng: StdRng::seed_from_u64(seed),
                case: 0,
            }
        }

        /// The RNG strategies draw from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        /// Runs `body` until `cases` accepted cases pass (rejections via
        /// `prop_assume!` are retried, with a global retry cap).
        ///
        /// # Panics
        ///
        /// Panics on the first failing case, reporting its index.
        pub fn run<F>(&mut self, mut body: F)
        where
            F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
        {
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = self.config.cases.saturating_mul(20).max(1000);
            while accepted < self.config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest '{}': too many prop_assume! rejections ({} attempts)",
                    self.name,
                    attempts
                );
                self.case = accepted;
                match body(&mut self.rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject) => {}
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed at case {} (attempt {}): {}",
                        self.name, accepted, attempts, msg
                    ),
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `use proptest::prelude::*`.

    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running many sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                runner.run(|rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case unless `cond` holds; rejected cases are
/// retried with fresh inputs and not counted.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u32..=9, y in 0u64..100) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 100, "y = {} out of range", y);
        }

        #[test]
        fn select_draws_members(v in prop::sample::select(vec![2i64, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn assume_retries(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4), "failing_case_panics");
        runner.run(|_rng| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        let draw = |name: &'static str| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(1), name);
            (0u64..1 << 40).sample(runner.rng())
        };
        assert_eq!(draw("a"), draw("a"));
        assert_ne!(draw("a"), draw("b"));
    }
}
