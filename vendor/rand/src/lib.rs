//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API used by this workspace:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`] / [`rngs::SmallRng`]. The generator behind both
//! named RNGs is xoshiro256++ seeded through SplitMix64: deterministic
//! for a given seed across runs and platforms, which is the property the
//! workspace's reproducibility tests rely on. Streams are **not**
//! bit-identical to the crates.io `StdRng`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Multiply-shift bounded sampling (Lemire): uniform in `[0, span)` with
/// negligible bias removed by rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        // Reject the partial final block to keep the draw exactly uniform.
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return hi;
    }
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high - low) as u64;
                low + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + unit_f64(rng) * (high - low)
    }
}

/// A range understood by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        if low == 0 && high == u64::MAX {
            return rng.next_u64();
        }
        low + bounded_u64(rng, high - low + 1)
    }
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanded via SplitMix64 — the
    /// convenient constructor used throughout this workspace.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the stand-in for the
    /// crates.io `StdRng` (same API, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(s: [u64; 4]) -> Self {
            // An all-zero state is the one fixed point; nudge it.
            if s == [0; 4] {
                StdRng {
                    s: [0x9E3779B97F4A7C15, 1, 2, 3],
                }
            } else {
                StdRng { s }
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            StdRng::from_state(s)
        }
    }

    /// Small fast generator — alias of [`StdRng`] in this stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 50), b.gen_range(0u64..1 << 50));
        }
    }

    #[test]
    fn different_seeds_differ() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_statistically_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let heads = (0..n).filter(|_| rng.gen_bool(0.5)).count();
        let freq = heads as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn uniformity_over_small_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 / 10_000.0 - 1.0).abs() < 0.05,
                "counts {counts:?}"
            );
        }
    }
}
