//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset of the `criterion` 0.5 API the workspace's
//! `benches/` targets use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: one warm-up pass, then timed batches until a fixed
//! wall-clock budget is spent; reports the best batch mean in ns/iter
//! (min-of-batches is robust to scheduler noise) plus element throughput
//! when [`Throughput::Elements`] is configured. Set `CRITERION_QUICK=1`
//! to shrink the budget for CI smoke runs. Honors the standard
//! libtest-style trailing `--bench` argument cargo passes to bench
//! binaries, and an optional substring filter argument.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many "items" one iteration processes; enables rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as benchmark identifiers (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    /// Best observed mean ns/iter, populated by [`Bencher::iter`].
    best_ns_per_iter: f64,
    total_iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its mean execution time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until it
        // takes at least ~1/50 of the budget (or a floor of 1 iter).
        let mut batch: u64 = 1;
        let calibration_floor = self.budget.as_nanos() as u64 / 50;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= calibration_floor.max(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }

        let deadline = Instant::now() + self.budget;
        let mut best = f64::INFINITY;
        let mut iters: u64 = 0;
        // At least two measured batches even if the budget is exhausted.
        for _ in 0..2 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
            iters += batch;
        }
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
            iters += batch;
        }
        self.best_ns_per_iter = best;
        self.total_iters = iters;
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1" || v == "true")
}

fn budget() -> Duration {
    if quick_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

/// Benchmark registry and runner.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`;
        // accept an optional substring filter and ignore harness flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            budget: budget(),
        }
    }
}

impl Criterion {
    /// Overrides the per-benchmark time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Configures the default Criterion (API-compatibility shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            budget: self.budget,
            best_ns_per_iter: f64::NAN,
            total_iters: 0,
        };
        f(&mut bencher);
        let ns = bencher.best_ns_per_iter;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.1} Melem/s", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{id:<44} {:>14}/iter{rate}   ({} iters)",
            format_ns(ns),
            bencher.total_iters
        );
    }

    /// Benchmarks a single function.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run_one(&id, None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs final reporting (API-compatibility shim).
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing throughput configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the group's per-benchmark time budget (shim: applies to
    /// the parent `Criterion`).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.budget = d;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, &mut f);
        self
    }

    /// Benchmarks one function with an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        self.criterion
            .run_one(&id, throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-binary `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| black_box(1u64 + 1)));
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(64));
        g.bench_function(BenchmarkId::new("f", 64), |b| {
            b.iter(|| black_box((0..64u64).sum::<u64>()))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 12).into_id(), "f/12");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }
}
