//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset of the `criterion` 0.5 API the workspace's
//! `benches/` targets use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: one warm-up pass, then timed batches until a fixed
//! wall-clock budget is spent; reports the best batch mean in ns/iter
//! (min-of-batches is robust to scheduler noise) plus element throughput
//! when [`Throughput::Elements`] is configured. Set `CRITERION_QUICK=1`
//! to shrink the budget for CI smoke runs. Honors the standard
//! libtest-style trailing `--bench` argument cargo passes to bench
//! binaries, and an optional substring filter argument.
//!
//! # Baseline mode (save / compare)
//!
//! A minimal stand-in for criterion's `--save-baseline` /
//! `--baseline`, driven by environment variables so the bench binaries
//! need no flag plumbing:
//!
//! * `CRITERION_SAVE_BASELINE=1` — after the run, dump every measured
//!   benchmark's best ns/iter as JSON under
//!   `target/criterion-baselines/<bench-binary>.json` (override the
//!   directory with `CRITERION_BASELINE_DIR`).
//! * `CRITERION_BASELINE=<path.json>` — compare each measured
//!   benchmark against the named baseline file (e.g. the committed
//!   `BENCH_baseline.json`); a benchmark regresses when its time
//!   exceeds `baseline · (1 + tolerance)`, with the fractional
//!   tolerance from `CRITERION_BASELINE_TOLERANCE` (default `0.5`).
//!   Regressions **warn** by default (wall-clock baselines are
//!   machine-specific); set `CRITERION_BASELINE_STRICT=1` to exit
//!   nonzero instead.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// All `(benchmark id, best ns/iter)` results of this process, across
/// every `Criterion` instance the `criterion_group!` macros create —
/// `final_summary` reads them for the baseline save/compare modes.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many "items" one iteration processes; enables rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as benchmark identifiers (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    /// Best observed mean ns/iter, populated by [`Bencher::iter`].
    best_ns_per_iter: f64,
    total_iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its mean execution time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until it
        // takes at least ~1/50 of the budget (or a floor of 1 iter).
        let mut batch: u64 = 1;
        let calibration_floor = self.budget.as_nanos() as u64 / 50;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= calibration_floor.max(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }

        let deadline = Instant::now() + self.budget;
        let mut best = f64::INFINITY;
        let mut iters: u64 = 0;
        // At least two measured batches even if the budget is exhausted.
        for _ in 0..2 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
            iters += batch;
        }
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
            iters += batch;
        }
        self.best_ns_per_iter = best;
        self.total_iters = iters;
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1" || v == "true")
}

fn budget() -> Duration {
    if quick_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

/// Benchmark registry and runner.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`;
        // accept an optional substring filter and ignore harness flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            budget: budget(),
        }
    }
}

impl Criterion {
    /// Overrides the per-benchmark time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Configures the default Criterion (API-compatibility shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            budget: self.budget,
            best_ns_per_iter: f64::NAN,
            total_iters: 0,
        };
        f(&mut bencher);
        let ns = bencher.best_ns_per_iter;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.1} Melem/s", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{id:<44} {:>14}/iter{rate}   ({} iters)",
            format_ns(ns),
            bencher.total_iters
        );
        RESULTS
            .lock()
            .expect("results registry poisoned")
            .push((id.to_string(), ns));
    }

    /// Benchmarks a single function.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run_one(&id, None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs final reporting: the baseline save and/or compare passes,
    /// when the corresponding environment variables are set (see the
    /// crate docs). A no-op otherwise, like upstream criterion's.
    pub fn final_summary(&mut self) {
        let results = RESULTS.lock().expect("results registry poisoned").clone();
        if results.is_empty() {
            return;
        }
        if std::env::var("CRITERION_SAVE_BASELINE").is_ok_and(|v| v == "1" || v == "true") {
            let path = baseline_save_path();
            match save_baseline(&path, &results) {
                Ok(()) => println!("\nbaseline saved to {}", path.display()),
                Err(e) => eprintln!("\nwarning: could not save baseline {}: {e}", path.display()),
            }
        }
        if let Ok(baseline_path) = std::env::var("CRITERION_BASELINE") {
            let tolerance = std::env::var("CRITERION_BASELINE_TOLERANCE")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.5);
            let strict =
                std::env::var("CRITERION_BASELINE_STRICT").is_ok_and(|v| v == "1" || v == "true");
            match compare_with_baseline(Path::new(&baseline_path), &results, tolerance) {
                Ok((0, 0)) => {}
                // A measured benchmark with no baseline entry is a
                // failure in strict mode too: a silently renamed id
                // (or a narrowed filter) must not turn the regression
                // gate into a green no-op.
                Ok((regressions, unmatched)) if strict => {
                    eprintln!(
                        "error: {regressions} benchmark(s) regressed beyond ±{tolerance}, \
                         {unmatched} without a baseline entry"
                    );
                    std::process::exit(1);
                }
                Ok((regressions, unmatched)) => {
                    println!(
                        "warning: {regressions} benchmark(s) regressed beyond ±{tolerance}, \
                         {unmatched} without a baseline entry \
                         (non-blocking; set CRITERION_BASELINE_STRICT=1 to fail)"
                    );
                }
                Err(e) => eprintln!("warning: could not read baseline {baseline_path}: {e}"),
            }
        }
    }
}

/// Where `CRITERION_SAVE_BASELINE` writes: `CRITERION_BASELINE_DIR`
/// when set, else `target/criterion-baselines` resolved against the
/// workspace (cargo runs bench binaries with the package as CWD, so
/// fall back to walking up to the shared `target/`).
fn baseline_save_path() -> PathBuf {
    let dir = std::env::var("CRITERION_BASELINE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            for up in ["target", "../target", "../../target"] {
                if Path::new(up).is_dir() {
                    return Path::new(up).join("criterion-baselines");
                }
            }
            PathBuf::from("target/criterion-baselines")
        });
    dir.join(format!("{}.json", bench_binary_name()))
}

/// The bench target's name: the executable's file stem with cargo's
/// trailing `-<16 hex>` disambiguator stripped.
fn bench_binary_name() -> String {
    let stem = std::env::args()
        .next()
        .map(PathBuf::from)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem,
    }
}

/// Serialises results as a flat `{"id": ns, ...}` JSON object. Ids are
/// benchmark names (no control characters); quotes and backslashes are
/// escaped for safety.
fn to_json(results: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (id, ns)) in results.iter().enumerate() {
        let escaped: String = id
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!("  \"{escaped}\": {ns:.1}"));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out
}

/// Parses the flat `{"id": ns, ...}` JSON this crate writes (and the
/// hand-maintained `BENCH_baseline.json`): a minimal scanner, not a
/// general JSON parser.
fn parse_json(text: &str) -> Vec<(String, f64)> {
    let mut entries = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let mut id = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        id.push(esc);
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => id.push(c),
            }
        }
        let Some(end) = end else { break };
        rest = &rest[end + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let value_end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        if let Ok(ns) = rest[..value_end].trim().parse::<f64>() {
            entries.push((id, ns));
        }
        rest = &rest[value_end..];
    }
    entries
}

fn save_baseline(path: &Path, results: &[(String, f64)]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(results) + "\n")
}

/// Prints the per-benchmark comparison and returns `(regressions,
/// unmatched)`: measurements beyond `baseline · (1 + tolerance)`, and
/// measurements with no baseline entry at all (renamed ids — counted
/// separately so strict mode can refuse to pass vacuously). Baseline
/// entries that were not measured are *not* counted: running a
/// filtered subset of the benches against a fuller baseline is
/// routine.
fn compare_with_baseline(
    path: &Path,
    results: &[(String, f64)],
    tolerance: f64,
) -> std::io::Result<(usize, usize)> {
    let text = std::fs::read_to_string(path)?;
    let baseline = parse_json(&text);
    let mut regressions = 0usize;
    let mut unmatched = 0usize;
    println!("\nbaseline comparison against {}:", path.display());
    for (id, ns) in results {
        let Some((_, base_ns)) = baseline.iter().find(|(b, _)| b == id) else {
            unmatched += 1;
            println!("  {id:<44} (no baseline entry)");
            continue;
        };
        let ratio = ns / base_ns;
        let verdict = if *ns > base_ns * (1.0 + tolerance) {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {id:<44} {:>12}/iter vs {:>12} baseline ({ratio:.2}x) {verdict}",
            format_ns(*ns),
            format_ns(*base_ns),
        );
    }
    Ok((regressions, unmatched))
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing throughput configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the group's per-benchmark time budget (shim: applies to
    /// the parent `Criterion`).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.budget = d;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, &mut f);
        self
    }

    /// Benchmarks one function with an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        self.criterion
            .run_one(&id, throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-binary `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| black_box(1u64 + 1)));
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(64));
        g.bench_function(BenchmarkId::new("f", 64), |b| {
            b.iter(|| black_box((0..64u64).sum::<u64>()))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 12).into_id(), "f/12");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }

    #[test]
    fn baseline_json_round_trips() {
        let results = vec![
            (
                "efficiency_sweep_400/batch_session/400".to_string(),
                123456.5,
            ),
            ("group/with \"quote\"".to_string(), 7.0),
        ];
        let json = to_json(&results);
        let parsed = parse_json(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, results[0].0);
        assert!((parsed[0].1 - results[0].1).abs() < 0.1);
        assert_eq!(parsed[1].0, "group/with \"quote\"");
        assert!((parsed[1].1 - 7.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_compare_counts_regressions() {
        let dir = std::env::temp_dir().join("cfva-criterion-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let baseline = vec![("a".to_string(), 100.0), ("b".to_string(), 100.0)];
        save_baseline(&path, &baseline).unwrap();

        // Within tolerance, beyond tolerance, and an unmatched id —
        // the latter is reported separately so strict mode can fail a
        // comparison that silently stopped guarding anything.
        let measured = vec![
            ("a".to_string(), 140.0),
            ("b".to_string(), 160.0),
            ("c".to_string(), 1.0),
        ];
        assert_eq!(
            compare_with_baseline(&path, &measured, 0.5).unwrap(),
            (1, 1)
        );
        assert_eq!(
            compare_with_baseline(&path, &measured, 0.1).unwrap(),
            (2, 1)
        );
        assert_eq!(
            compare_with_baseline(&path, &measured, 1.0).unwrap(),
            (0, 1)
        );
        // Baseline entries that were not measured are fine (filtered
        // runs), and matched ids count cleanly.
        let subset = vec![("a".to_string(), 100.0)];
        assert_eq!(compare_with_baseline(&path, &subset, 0.5).unwrap(), (0, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_binary_name_strips_cargo_hash() {
        // Indirect check through the helper's rsplit logic: ids that
        // look like cargo's `<name>-<16 hex>` lose the hash, anything
        // else is kept whole. (The current process name is a test
        // binary, which also carries a hash suffix.)
        let name = bench_binary_name();
        assert!(!name.is_empty());
        assert!(
            !name
                .rsplit_once('-')
                .is_some_and(|(_, h)| h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit())),
            "hash suffix should have been stripped from {name:?}"
        );
    }
}
