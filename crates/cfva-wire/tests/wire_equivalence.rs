//! The wire transparency contract: a response fetched through a
//! loopback [`WireClient`] is **bit-identical** to the same request
//! submitted directly to the [`Service`] — the socket adds transport,
//! never semantics. Backpressure stays typed across the wire: both
//! the service queue bound and the per-connection admission cap
//! surface as [`ServeError::Overloaded`] with their own capacities,
//! and the `wire_*` counters in [`ServiceStats`] account for every
//! connection, rejection and in-flight ticket.

use std::sync::Arc;
use std::time::Duration;

use cfva_core::mapping::Registry;
use cfva_core::plan::Strategy;
use cfva_core::{Stride, VectorSpec};
use cfva_memsim::IssuePolicy;
use cfva_serve::api::{Estimator, Request, Response, SchedulePlan, ServeError};
use cfva_serve::service::{Service, ServiceConfig};
use cfva_wire::client::WireClient;
use cfva_wire::frame::{self, PROTOCOL_VERSION};
use cfva_wire::json::{self, ClientFrame, ServerFrame};
use cfva_wire::server::{WireServer, WireServerConfig};
use proptest::prelude::*;

/// Every registered coverage spec, as owned strings.
fn all_specs() -> Vec<String> {
    Registry::builtin()
        .all_specs()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn serve_pair(config: ServiceConfig, wire: WireServerConfig) -> (Arc<Service>, WireServer) {
    let service = Arc::new(Service::new(config));
    let server =
        WireServer::bind(Arc::clone(&service), "127.0.0.1:0", wire).expect("loopback bind");
    (service, server)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Loopback `Measure` through the wire == the same submit against
    /// the same service directly, for random registered specs, strides
    /// and lengths — bit for bit, including the full per-element
    /// arrival vector inside `AccessStats`.
    #[test]
    fn wire_measure_bit_identical_to_direct_submit(
        kind in 0usize..64,
        sigma_idx in 0i64..8,
        x in 0u32..7,
        base in 0u64..1_000_000,
        len_pow in 3u32..8,
    ) {
        let specs = all_specs();
        let spec = specs[kind % specs.len()].clone();
        let sigma = 2 * sigma_idx + 1;
        let stride = Stride::from_parts(sigma, x).expect("odd sigma");
        let vec = VectorSpec::with_stride(base.into(), stride, 1 << len_pow)
            .expect("bounded base");

        let (service, server) =
            serve_pair(ServiceConfig::with_workers(2), WireServerConfig::default());
        let mut client = WireClient::connect(server.local_addr()).expect("connect");

        let request = Request::Measure {
            spec: spec.clone(),
            vec,
            strategy: Strategy::Auto,
        };
        let ticket = client.submit(request.clone()).expect("wire submit");
        let over_wire = client.wait(ticket).expect("wire transport");
        let direct = service
            .submit(request)
            .expect("queue has room")
            .wait();
        prop_assert_eq!(over_wire, direct, "{}: {}", spec, vec);

        drop(client);
        server.shutdown();
        service.shutdown();
    }
}

#[test]
fn every_request_shape_is_wire_transparent() {
    // One connection, every Request variant, results collected out of
    // submission order: each wire response equals its direct twin.
    let spec = "xor-matched:t=3,s=4".to_string();
    let (service, server) = serve_pair(ServiceConfig::with_workers(2), WireServerConfig::default());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let requests = vec![
        Request::Measure {
            spec: spec.clone(),
            vec: VectorSpec::new(16, 12, 64).expect("valid"),
            strategy: Strategy::Auto,
        },
        Request::MeasureBatch {
            spec: spec.clone(),
            accesses: vec![
                (VectorSpec::new(0, 1, 32).expect("valid"), Strategy::Auto),
                (
                    VectorSpec::new(64, 96, 32).expect("valid"),
                    Strategy::Canonical,
                ),
            ],
        },
        Request::FamilySweep {
            spec: spec.clone(),
            len: 64,
            max_x: 4,
            sigma: 3,
        },
        Request::Efficiency {
            spec: spec.clone(),
            strategy: Strategy::Auto,
            len: 64,
            estimator: Estimator::Stratified {
                max_x: 5,
                per_family: 3,
            },
            seed: 7,
        },
        Request::MultiStream {
            spec: spec.clone(),
            streams: vec![
                VectorSpec::new(0, 2, 64).expect("valid"),
                VectorSpec::new(2, 2, 64).expect("valid"),
                VectorSpec::new(1, 2, 64).expect("valid"),
            ],
            strategy: Strategy::Auto,
            policy: IssuePolicy::RoundRobin,
            schedule: SchedulePlan::ConflictAware {
                width: 2,
                max_score_milli: 1000,
            },
        },
    ];

    // Pipeline all submissions first, then redeem the tickets in
    // reverse — exercising the out-of-order correlation path.
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| client.submit(r.clone()).expect("wire submit"))
        .collect();
    let mut wire_results: Vec<_> = tickets
        .into_iter()
        .rev()
        .map(|t| client.wait(t).expect("wire transport"))
        .collect();
    wire_results.reverse();

    for (request, over_wire) in requests.into_iter().zip(wire_results) {
        let direct = service
            .submit(request.clone())
            .expect("queue has room")
            .wait();
        assert_eq!(over_wire, direct, "{request:?}");
    }

    drop(client);
    server.shutdown();
    service.shutdown();
}

#[test]
fn per_connection_cap_rejects_typed_overloaded_through_the_socket() {
    // One worker wedged by a heavy estimate, a per-connection cap of 4:
    // a burst must surface typed Overloaded frames naming *that* cap,
    // every admitted ticket must still resolve, and the wire counters
    // must account for all of it.
    let (service, server) = serve_pair(
        ServiceConfig::with_workers(1).queue_capacity(256),
        WireServerConfig {
            max_in_flight_per_conn: 4,
        },
    );
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    assert_eq!(client.max_in_flight(), 4, "the hello announces the cap");

    let wedge = client
        .submit(Request::Efficiency {
            spec: "xor-matched:t=3,s=4".to_string(),
            strategy: Strategy::Auto,
            len: 512,
            estimator: Estimator::MonteCarlo {
                samples: 4_000,
                max_x: 10,
                max_sigma: 15,
            },
            seed: 3,
        })
        .expect("wire submit");

    let tickets: Vec<_> = (0..50u64)
        .map(|i| {
            client
                .submit(Request::Measure {
                    spec: "xor-matched:t=3,s=4".to_string(),
                    vec: VectorSpec::new(i, 12, 64).expect("valid"),
                    strategy: Strategy::Auto,
                })
                .expect("wire submit never fails on transport here")
        })
        .collect();

    let mut rejected = 0u64;
    let mut served = 0u64;
    for ticket in tickets {
        match client.wait(ticket).expect("wire transport") {
            Ok(Response::Measured(Some(_))) => served += 1,
            Err(ServeError::Overloaded {
                queue_depth,
                capacity,
            }) => {
                assert_eq!(capacity, 4, "the per-connection cap, not the queue's");
                assert!(queue_depth >= capacity, "refused below the cap");
                rejected += 1;
            }
            other => panic!("unexpected wire result {other:?}"),
        }
    }
    assert!(rejected > 0, "a 50-burst against a cap of 4 must reject");
    assert!(served > 0, "admitted requests must still serve");
    assert_eq!(rejected + served, 50, "zero lost tickets");
    assert!(matches!(
        client.wait(wedge).expect("wire transport"),
        Ok(Response::Efficiency(_))
    ));

    // Live wire counters, fetched through the socket itself.
    let stats = client.stats().expect("stats probe");
    assert_eq!(stats.wire_connections, 1);
    assert!(
        stats.wire_rejections >= rejected,
        "every cap rejection is counted"
    );
    assert_eq!(
        stats.wire_in_flight, 0,
        "all tickets reaped once their results were read"
    );
    // The server-side snapshot agrees.
    let direct = server.stats();
    assert_eq!(direct.wire_connections, 1);
    assert_eq!(direct.wire_rejections, stats.wire_rejections);
    assert_eq!(direct.wire_in_flight, 0);

    drop(client);
    server.shutdown();
    service.shutdown();
}

#[test]
fn service_shutdown_surfaces_shutting_down_through_the_socket() {
    let (service, server) = serve_pair(ServiceConfig::with_workers(1), WireServerConfig::default());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    service.shutdown();
    let ticket = client
        .submit(Request::Measure {
            spec: "interleaved:m=3".to_string(),
            vec: VectorSpec::new(0, 1, 16).expect("valid"),
            strategy: Strategy::Auto,
        })
        .expect("transport still up");
    assert!(matches!(
        client.wait(ticket).expect("wire transport"),
        Err(ServeError::ShuttingDown)
    ));
    drop(client);
    server.shutdown();
}

#[test]
fn deadline_budgets_are_forwarded_across_the_wire() {
    // A zero budget against a wedged single worker must come back as
    // the typed DeadlineExceeded carrying the submitted budget —
    // proving the budget rode the Submit frame to `submit_with_budget`.
    let (service, server) = serve_pair(
        ServiceConfig::with_workers(1)
            .queue_capacity(8)
            .cache_capacity(0),
        WireServerConfig::default(),
    );
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let wedge = client
        .submit(Request::FamilySweep {
            spec: "xor-matched:t=3,s=4".to_string(),
            len: 65536,
            max_x: 8,
            sigma: 7,
        })
        .expect("wire submit");
    let budgeted = client
        .submit_with_budget(
            Request::Measure {
                spec: "xor-matched:t=3,s=4".to_string(),
                vec: VectorSpec::new(0, 5, 64).expect("valid"),
                strategy: Strategy::Auto,
            },
            Duration::ZERO,
        )
        .expect("wire submit");
    match client.wait(budgeted).expect("wire transport") {
        Err(ServeError::DeadlineExceeded { budget }) => {
            assert_eq!(budget, Duration::ZERO, "the submitted budget, echoed");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    client.wait(wedge).expect("wire transport").expect("serves");
    drop(client);
    server.shutdown();
    service.shutdown();
}

#[test]
fn graceful_drain_flushes_every_accepted_ticket() {
    // Submit a pile, then shut the server down *before* reading any
    // result: the drain must flush every accepted ticket's response to
    // the socket, and the client must be able to redeem all of them
    // afterwards.
    let (service, server) = serve_pair(
        ServiceConfig::with_workers(2).queue_capacity(256),
        WireServerConfig::default(),
    );
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let tickets: Vec<_> = (0..16u64)
        .map(|i| {
            client
                .submit(Request::Measure {
                    spec: "skewed:m=3,d=1".to_string(),
                    vec: VectorSpec::new(i, 8, 128).expect("valid"),
                    strategy: Strategy::Auto,
                })
                .expect("wire submit")
        })
        .collect();

    // The socket is FIFO, so a stats round trip is a sync barrier: its
    // reply proves the server consumed (and admitted) every submit
    // frame written before it. Without it, the drain below could close
    // the read half while submits still sit in the kernel buffer —
    // those would be unaccepted, not lost.
    let before = client.stats().expect("sync barrier");
    assert!(before.wire_in_flight <= 16);

    server.shutdown(); // blocks until every writer flushed its pending tickets

    for ticket in tickets {
        let result = client.wait(ticket).expect("drained results are readable");
        assert!(
            matches!(result, Ok(Response::Measured(Some(_)))),
            "every accepted ticket resolves across a drain"
        );
    }
    service.shutdown();
}

#[test]
fn multiple_connections_are_counted_and_isolated() {
    let (service, server) = serve_pair(
        ServiceConfig::with_workers(2),
        WireServerConfig {
            max_in_flight_per_conn: 8,
        },
    );
    let mut clients: Vec<_> = (0..3)
        .map(|_| WireClient::connect(server.local_addr()).expect("connect"))
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let base = u64::try_from(i).expect("small") * 64;
        let ticket = client
            .submit(Request::Measure {
                spec: "interleaved:m=3".to_string(),
                vec: VectorSpec::new(base, 2, 64).expect("valid"),
                strategy: Strategy::Auto,
            })
            .expect("wire submit");
        assert!(matches!(
            client.wait(ticket).expect("wire transport"),
            Ok(Response::Measured(Some(_)))
        ));
    }
    let stats = server.stats();
    assert_eq!(
        stats.wire_connections, 3,
        "every accepted connection counts"
    );
    assert_eq!(stats.wire_in_flight, 0);
    drop(clients);
    server.shutdown();
    service.shutdown();
}

#[test]
fn version_mismatch_is_refused_with_a_typed_fatal() {
    use std::io::Write;
    use std::net::TcpStream;

    let (service, server) = serve_pair(ServiceConfig::with_workers(1), WireServerConfig::default());

    // A hello from the future: the server must answer Fatal, not
    // mis-decode the rest of the stream.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let hello = json::encode_client_frame(&ClientFrame::Hello {
        proto: PROTOCOL_VERSION + 1,
    });
    frame::write_frame(&mut raw, &hello).expect("write");
    raw.flush().expect("flush");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    let text = frame::read_frame(&mut reader).expect("server answers");
    match json::decode_server_frame(&text).expect("decodes") {
        ServerFrame::Fatal { reason } => {
            assert!(reason.contains("version"), "names the problem: {reason}");
        }
        other => panic!("expected Fatal, got {other:?}"),
    }
    drop(reader);

    // A first frame that is not a hello at all: same refusal.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let premature = json::encode_client_frame(&ClientFrame::Stats { id: 1 });
    frame::write_frame(&mut raw, &premature).expect("write");
    raw.flush().expect("flush");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    let text = frame::read_frame(&mut reader).expect("server answers");
    assert!(matches!(
        json::decode_server_frame(&text).expect("decodes"),
        ServerFrame::Fatal { .. }
    ));

    // A well-versioned client still connects fine afterwards.
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let ticket = client
        .submit(Request::Measure {
            spec: "interleaved:m=3".to_string(),
            vec: VectorSpec::new(0, 1, 16).expect("valid"),
            strategy: Strategy::Auto,
        })
        .expect("wire submit");
    assert!(client.wait(ticket).expect("transport").is_ok());

    drop(client);
    server.shutdown();
    service.shutdown();
}
