//! Round-trip and adversarial tests for the wire codec.
//!
//! Every `Request` / `Response` / `ServeError` variant must round
//! trip bit-identically through `encode_* → decode_*` — cfva-lint's
//! L004 refuses any variant this suite does not name. The adversarial
//! half feeds the frame layer and the parser truncated, oversize,
//! non-UTF-8 and malformed inputs and requires typed errors, never a
//! panic.

use std::io::Cursor;
use std::time::Duration;

use cfva_core::plan::Strategy;
use cfva_core::{ConfigError, VectorSpec};
use cfva_memsim::{AccessStats, IssuePolicy};
use cfva_serve::api::{
    Estimator, FamilyPoint, MultiStreamOutcome, Request, Response, SchedulePlan, ServeError,
    ServeResult, StreamSummary,
};
use cfva_serve::service::ServiceStats;
use cfva_serve::CacheStats;
use cfva_wire::frame::{self, FrameError, MAX_FRAME_LEN};
use cfva_wire::json::{self, ClientFrame, DecodeError, ServerFrame};
use proptest::prelude::*;

// ---------------------------------------------------------------
// Round-trip helpers
// ---------------------------------------------------------------

fn rt_request(r: &Request) {
    let text = json::encode_request(r);
    let back = json::decode_request(&text).expect("request should decode");
    assert_eq!(*r, back, "request round trip changed the value: {text}");
}

fn rt_response(r: &Response) {
    let text = json::encode_response(r);
    let back = json::decode_response(&text).expect("response should decode");
    assert_eq!(*r, back, "response round trip changed the value: {text}");
}

fn rt_serve_error(e: &ServeError) {
    let text = json::encode_serve_error(e);
    let back = json::decode_serve_error(&text).expect("serve error should decode");
    assert_eq!(*e, back, "serve error round trip changed the value: {text}");
}

fn vec_spec(base: u64, stride: i64, len: u64) -> VectorSpec {
    VectorSpec::new(base, stride, len).expect("test vector spec must be valid")
}

fn access_stats(k: u64) -> AccessStats {
    AccessStats {
        latency: 100 + k,
        elements: 64,
        stall_cycles: k % 7,
        conflicts: k % 5,
        arrival: vec![k, k + 1, k + 3, k + 9],
        module_busy: vec![8, 9, 10, k % 11],
        max_in_q: usize::try_from(k % 4).unwrap(),
    }
}

fn all_config_errors() -> Vec<ConfigError> {
    vec![
        ConfigError::NotPowerOfTwo {
            what: "modules",
            value: 12,
        },
        ConfigError::OutOfRange {
            what: "s",
            value: 3,
            constraint: "s >= t",
        },
        ConfigError::ZeroStride,
        ConfigError::SingularMatrix,
        ConfigError::AddressOverflow,
        ConfigError::SpecSyntax {
            spec: "xor:".to_string(),
            reason: "empty key".to_string(),
        },
        ConfigError::UnknownMap {
            name: "warp".to_string(),
            registered: vec!["xor".to_string(), "interleave".to_string()],
        },
        ConfigError::MissingKey {
            map: "xor".to_string(),
            key: "t",
        },
        ConfigError::UnknownKey {
            map: "xor".to_string(),
            key: "q".to_string(),
            accepted: &["t", "s"],
        },
        ConfigError::DuplicateKey {
            key: "t".to_string(),
        },
        ConfigError::InvalidValue {
            key: "t".to_string(),
            value: "x9".to_string(),
            expected: "an unsigned integer",
        },
        ConfigError::MatrixFile {
            path: "m.txt".to_string(),
            reason: "no such file".to_string(),
        },
        ConfigError::DuplicateMap {
            name: "xor".to_string(),
        },
    ]
}

// ---------------------------------------------------------------
// Request variants
// ---------------------------------------------------------------

#[test]
fn request_measure_round_trips() {
    rt_request(&Request::Measure {
        spec: "xor-matched:t=3,s=4".to_string(),
        vec: vec_spec(16, 12, 64),
        strategy: Strategy::Auto,
    });
    rt_request(&Request::Measure {
        spec: "interleave:t=2".to_string(),
        vec: vec_spec(0, -7, 1),
        strategy: Strategy::ConflictFree,
    });
}

#[test]
fn request_measure_batch_round_trips() {
    rt_request(&Request::MeasureBatch {
        spec: "xor-matched:t=3,s=3".to_string(),
        accesses: vec![
            (vec_spec(0, 1, 8), Strategy::Canonical),
            (vec_spec(64, -3, 16), Strategy::Subsequence),
            (vec_spec(128, 32, 4), Strategy::ConflictFree),
            (vec_spec(4096, 5, 33), Strategy::Auto),
        ],
    });
    rt_request(&Request::MeasureBatch {
        spec: "interleave:t=4".to_string(),
        accesses: Vec::new(),
    });
}

#[test]
fn request_family_sweep_round_trips() {
    rt_request(&Request::FamilySweep {
        spec: "xor-matched:t=3,s=4".to_string(),
        len: 256,
        max_x: 6,
        sigma: 3,
    });
    rt_request(&Request::FamilySweep {
        spec: "interleave:t=3".to_string(),
        len: 1,
        max_x: 0,
        sigma: -5,
    });
}

#[test]
fn request_efficiency_round_trips() {
    rt_request(&Request::Efficiency {
        spec: "xor-matched:t=3,s=3".to_string(),
        strategy: Strategy::Auto,
        len: 64,
        estimator: Estimator::MonteCarlo {
            samples: 500,
            max_x: 8,
            max_sigma: 63,
        },
        seed: 0xDEAD_BEEF,
    });
    rt_request(&Request::Efficiency {
        spec: "interleave:t=2".to_string(),
        strategy: Strategy::Canonical,
        len: 128,
        estimator: Estimator::Stratified {
            max_x: 10,
            per_family: 40,
        },
        seed: u64::MAX,
    });
}

#[test]
fn request_multi_stream_round_trips() {
    let streams = vec![
        vec_spec(0, 1, 64),
        vec_spec(8192, 12, 64),
        vec_spec(64, -2, 32),
    ];
    for policy in [
        IssuePolicy::RoundRobin,
        IssuePolicy::Priority,
        IssuePolicy::WorkConserving,
    ] {
        for schedule in [
            SchedulePlan::Together,
            SchedulePlan::FifoWaves { width: 2 },
            SchedulePlan::ConflictAware {
                width: 3,
                max_score_milli: 1500,
            },
        ] {
            rt_request(&Request::MultiStream {
                spec: "xor-matched:t=3,s=4".to_string(),
                streams: streams.clone(),
                strategy: Strategy::Auto,
                policy,
                schedule,
            });
        }
    }
}

// ---------------------------------------------------------------
// Response variants
// ---------------------------------------------------------------

#[test]
fn response_measured_round_trips() {
    rt_response(&Response::Measured(Some(access_stats(17))));
    rt_response(&Response::Measured(None));
}

#[test]
fn response_batch_round_trips() {
    rt_response(&Response::Batch(vec![
        Some(access_stats(1)),
        None,
        Some(access_stats(2)),
    ]));
    rt_response(&Response::Batch(Vec::new()));
}

#[test]
fn response_family_sweep_round_trips() {
    rt_response(&Response::FamilySweep(vec![
        FamilyPoint {
            x: 0,
            stride: 3,
            latency: 73,
            conflicts: 0,
            stall_cycles: 0,
            cycles_per_element: 1.0,
        },
        FamilyPoint {
            x: 5,
            stride: -96,
            latency: 901,
            conflicts: 320,
            stall_cycles: 512,
            cycles_per_element: 0.1 + 0.2, // deliberately not representable as 0.3
        },
    ]));
}

#[test]
fn response_efficiency_round_trips() {
    for eta in [1.0, 0.5, 0.1 + 0.2, 1e-300, f64::MIN_POSITIVE, -0.0, 5e-324] {
        rt_response(&Response::Efficiency(eta));
    }
}

#[test]
fn response_efficiency_nonfinite_floats_survive() {
    // NaN breaks PartialEq, so check the lanes by hand.
    let text = json::encode_response(&Response::Efficiency(f64::NAN));
    match json::decode_response(&text).expect("nan should decode") {
        Response::Efficiency(eta) => assert!(eta.is_nan()),
        other => panic!("wrong shape back: {other:?}"),
    }
    for inf in [f64::INFINITY, f64::NEG_INFINITY] {
        rt_response(&Response::Efficiency(inf));
    }
}

#[test]
fn response_multi_stream_round_trips() {
    rt_response(&Response::MultiStream(MultiStreamOutcome {
        per_stream: vec![
            StreamSummary {
                wave: 0,
                elements: 64,
                first_issue: 0,
                latency: 73,
                spread: 63,
                conflicts: 0,
                stall_cycles: 0,
            },
            StreamSummary {
                wave: 1,
                elements: 32,
                first_issue: 2,
                latency: 120,
                spread: 80,
                conflicts: 17,
                stall_cycles: 9,
            },
        ],
        wave_makespans: vec![73, 130],
        makespan: 203,
        sequential_baseline: 193,
        predicted_conflicts_milli: 2125,
        actual_conflicts: 17,
    }));
}

#[test]
fn response_degraded_round_trips() {
    rt_response(&Response::Degraded {
        response: Box::new(Response::Measured(Some(access_stats(3)))),
        exact: true,
    });
    rt_response(&Response::Degraded {
        response: Box::new(Response::FamilySweep(vec![FamilyPoint {
            x: 2,
            stride: 12,
            latency: 200,
            conflicts: 40,
            stall_cycles: 30,
            cycles_per_element: 2.75,
        }])),
        exact: false,
    });
    // Nested degradation is not produced by the service today, but the
    // codec must not be the layer that forbids it.
    rt_response(&Response::Degraded {
        response: Box::new(Response::Degraded {
            response: Box::new(Response::Measured(None)),
            exact: false,
        }),
        exact: true,
    });
}

// ---------------------------------------------------------------
// ServeError variants
// ---------------------------------------------------------------

#[test]
fn serve_error_overloaded_round_trips() {
    rt_serve_error(&ServeError::Overloaded {
        queue_depth: 129,
        capacity: 128,
    });
}

#[test]
fn serve_error_shutting_down_round_trips() {
    rt_serve_error(&ServeError::ShuttingDown);
}

#[test]
fn serve_error_spec_round_trips() {
    for e in all_config_errors() {
        rt_serve_error(&ServeError::Spec(e));
    }
}

#[test]
fn serve_error_request_round_trips() {
    for e in all_config_errors() {
        rt_serve_error(&ServeError::Request(e));
    }
}

#[test]
fn serve_error_deadline_exceeded_round_trips() {
    rt_serve_error(&ServeError::DeadlineExceeded {
        budget: Duration::new(3, 141_592_653),
    });
    rt_serve_error(&ServeError::DeadlineExceeded {
        budget: Duration::ZERO,
    });
}

#[test]
fn serve_error_worker_panicked_round_trips() {
    rt_serve_error(&ServeError::WorkerPanicked {
        attempts: 4,
        message: "index out of bounds: the len is 0 but the index is 0".to_string(),
    });
    rt_serve_error(&ServeError::WorkerPanicked {
        attempts: 1,
        message: String::new(),
    });
}

#[test]
fn serve_result_round_trips() {
    let ok: ServeResult = Ok(Response::Efficiency(0.875));
    let text = json::encode_serve_result(&ok);
    assert_eq!(json::decode_serve_result(&text).expect("ok decodes"), ok);

    let err: ServeResult = Err(ServeError::ShuttingDown);
    let text = json::encode_serve_result(&err);
    assert_eq!(json::decode_serve_result(&text).expect("err decodes"), err);
}

// ---------------------------------------------------------------
// ServiceStats and frame envelopes
// ---------------------------------------------------------------

#[test]
fn service_stats_round_trips() {
    let stats = ServiceStats {
        queue_depth: 3,
        in_flight: 2,
        cache: Some(CacheStats {
            hits: 10,
            misses: 20,
            evictions: 3,
            bypasses: 4,
            invalidations: 5,
            entries: 17,
            capacity: 64,
        }),
        retries: 6,
        restarts: 7,
        deadline_exceeded: 8,
        degraded: 9,
        faults_injected: 10,
        scheduler_batches: 11,
        scheduler_batched: 12,
        scheduler_fifo_fallbacks: 13,
        scheduler_window_occupancy: 14,
        scheduler_predicted_conflicts_milli: 15,
        scheduler_actual_conflicts: 16,
        wire_connections: 17,
        wire_rejections: 18,
        wire_in_flight: 19,
    };
    let text = json::encode_service_stats(&stats);
    assert_eq!(
        json::decode_service_stats(&text).expect("stats decode"),
        stats
    );

    let no_cache = ServiceStats {
        cache: None,
        ..stats
    };
    let text = json::encode_service_stats(&no_cache);
    assert_eq!(
        json::decode_service_stats(&text).expect("stats decode"),
        no_cache
    );
}

#[test]
fn client_frames_round_trip() {
    let frames = vec![
        ClientFrame::Hello {
            proto: frame::PROTOCOL_VERSION,
        },
        ClientFrame::Submit {
            id: 42,
            request: Request::Measure {
                spec: "xor-matched:t=3,s=3".to_string(),
                vec: vec_spec(16, 12, 64),
                strategy: Strategy::Auto,
            },
            budget: Some(Duration::from_millis(250)),
        },
        ClientFrame::Submit {
            id: u64::MAX,
            request: Request::FamilySweep {
                spec: "interleave:t=3".to_string(),
                len: 64,
                max_x: 4,
                sigma: 1,
            },
            budget: None,
        },
        ClientFrame::Stats { id: 7 },
    ];
    for f in &frames {
        let text = json::encode_client_frame(f);
        let back = json::decode_client_frame(&text).expect("client frame decodes");
        assert_eq!(*f, back, "client frame changed: {text}");
    }
}

#[test]
fn server_frames_round_trip() {
    // ServerFrame carries ServeTicket-free results only, but is not
    // PartialEq (ServiceStats inside is, Response is; keep it simple):
    // bit-identity is asserted on the re-encoded text instead.
    let frames = vec![
        ServerFrame::Hello {
            proto: frame::PROTOCOL_VERSION,
            max_in_flight: 64,
        },
        ServerFrame::Result {
            id: 3,
            result: Ok(Response::Measured(Some(access_stats(5)))),
        },
        ServerFrame::Result {
            id: 4,
            result: Err(ServeError::Overloaded {
                queue_depth: 9,
                capacity: 8,
            }),
        },
        ServerFrame::Stats {
            id: 5,
            stats: ServiceStats {
                queue_depth: 0,
                in_flight: 0,
                cache: None,
                retries: 0,
                restarts: 0,
                deadline_exceeded: 0,
                degraded: 0,
                faults_injected: 0,
                scheduler_batches: 0,
                scheduler_batched: 0,
                scheduler_fifo_fallbacks: 0,
                scheduler_window_occupancy: 0,
                scheduler_predicted_conflicts_milli: 0,
                scheduler_actual_conflicts: 0,
                wire_connections: 1,
                wire_rejections: 2,
                wire_in_flight: 3,
            },
        },
        ServerFrame::Fatal {
            reason: "first frame must be a hello".to_string(),
        },
    ];
    for f in &frames {
        let text = json::encode_server_frame(f);
        let back = json::decode_server_frame(&text).expect("server frame decodes");
        assert_eq!(
            json::encode_server_frame(&back),
            text,
            "server frame changed across the round trip"
        );
    }
}

// ---------------------------------------------------------------
// Frame layer: truncation, oversize, UTF-8
// ---------------------------------------------------------------

#[test]
fn frame_round_trips_through_a_buffer() {
    let payload = json::encode_request(&Request::FamilySweep {
        spec: "xor-matched:t=3,s=4".to_string(),
        len: 256,
        max_x: 6,
        sigma: 3,
    });
    let mut buf = Vec::new();
    frame::write_frame(&mut buf, &payload).expect("write");
    let back = frame::read_frame(&mut Cursor::new(&buf)).expect("read");
    assert_eq!(back, payload);
}

#[test]
fn empty_stream_reads_as_closed() {
    match frame::read_frame(&mut Cursor::new(Vec::<u8>::new())) {
        Err(FrameError::Closed) => {}
        other => panic!("expected Closed, got {other:?}"),
    }
}

#[test]
fn truncated_frames_are_io_errors_not_panics() {
    let mut buf = Vec::new();
    frame::write_frame(&mut buf, "{\"x\":1}").expect("write");
    // Cut the frame at every possible byte boundary except 0 and the end.
    for cut in 1..buf.len() {
        let head = &buf[..cut];
        match frame::read_frame(&mut Cursor::new(head)) {
            Err(FrameError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
            }
            other => panic!("cut at {cut}: expected UnexpectedEof, got {other:?}"),
        }
    }
}

#[test]
fn oversize_length_words_are_rejected() {
    let hostile = (MAX_FRAME_LEN + 1).to_be_bytes();
    match frame::read_frame(&mut Cursor::new(hostile)) {
        Err(FrameError::Oversize { len, max }) => {
            assert_eq!(len, MAX_FRAME_LEN + 1);
            assert_eq!(max, MAX_FRAME_LEN);
        }
        other => panic!("expected Oversize, got {other:?}"),
    }
    // u32::MAX: the classic length-word attack; must not allocate 4 GiB.
    let hostile = u32::MAX.to_be_bytes();
    assert!(matches!(
        frame::read_frame(&mut Cursor::new(hostile)),
        Err(FrameError::Oversize { .. })
    ));
}

#[test]
fn non_utf8_payloads_are_rejected() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&4u32.to_be_bytes());
    buf.extend_from_slice(&[b'o', b'k', 0xFF, 0xFE]);
    match frame::read_frame(&mut Cursor::new(buf)) {
        Err(FrameError::InvalidUtf8 { valid_up_to }) => assert_eq!(valid_up_to, 2),
        other => panic!("expected InvalidUtf8, got {other:?}"),
    }
}

#[test]
fn oversize_writes_are_refused_before_touching_the_stream() {
    let huge = "x".repeat(MAX_FRAME_LEN as usize + 1);
    let mut buf = Vec::new();
    assert!(matches!(
        frame::write_frame(&mut buf, &huge),
        Err(FrameError::Oversize { .. })
    ));
    assert!(buf.is_empty(), "a refused frame must write nothing");
}

// ---------------------------------------------------------------
// Parser: malformed JSON, wrong schema, deep nesting
// ---------------------------------------------------------------

#[test]
fn malformed_json_is_a_typed_syntax_error() {
    for bad in [
        "",
        "   ",
        "{",
        "}",
        "[1,",
        "{\"a\":}",
        "{\"a\" 1}",
        "tru",
        "nul",
        "+5",
        "1e",
        "0x10",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"half surrogate \\ud800\"",
        "{\"a\":1} trailing",
        "[1,2,]",
        "{\"a\":1,}",
    ] {
        match json::parse(bad) {
            Err(DecodeError::Syntax { .. }) => {}
            other => panic!("{bad:?}: expected Syntax error, got {other:?}"),
        }
    }
}

#[test]
fn deep_nesting_hits_the_recursion_cap_not_the_stack() {
    let deep = "[".repeat(10_000);
    assert!(matches!(
        json::parse(&deep),
        Err(DecodeError::Syntax { .. })
    ));
    let deep_objs = "{\"a\":".repeat(10_000);
    assert!(matches!(
        json::parse(&deep_objs),
        Err(DecodeError::Syntax { .. })
    ));
}

#[test]
fn wrong_shapes_are_schema_errors() {
    // Valid JSON, wrong schema: typed Schema errors, not panics.
    for bad in [
        "42",
        "\"no_such_variant\"",
        "{\"no_such_variant\":{}}",
        "{\"measure\":{}}",
        "{\"measure\":{\"spec\":1,\"vec\":{\"base\":0,\"stride\":1,\"len\":1},\"strategy\":\"auto\"}}",
    ] {
        match json::decode_request(bad) {
            Err(DecodeError::Schema { .. }) => {}
            other => panic!("{bad:?}: expected Schema error, got {other:?}"),
        }
    }
}

#[test]
fn invalid_vector_specs_surface_the_registry_error() {
    // Well-formed JSON whose VectorSpec violates its own invariants:
    // the decoder must route through `VectorSpec::new` and surface the
    // typed ConfigError, not construct an illegal spec.
    let zero_stride = "{\"measure\":{\"spec\":\"m\",\"vec\":{\"base\":0,\"stride\":0,\"len\":4},\"strategy\":\"auto\"}}";
    match json::decode_request(zero_stride) {
        Err(DecodeError::Invalid(ConfigError::ZeroStride)) => {}
        other => panic!("expected Invalid(ZeroStride), got {other:?}"),
    }
}

// ---------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prop_measure_requests_round_trip(
        // Base far enough from zero that a negative stride cannot walk
        // the stream below address 0 (VectorSpec rejects that).
        base in 3_000_000u64..10_000_000,
        stride in -4096i64..4096,
        len in 1u64..512,
        strat in prop::sample::select(vec![
            Strategy::Canonical,
            Strategy::Subsequence,
            Strategy::ConflictFree,
            Strategy::Auto,
        ]),
    ) {
        prop_assume!(stride != 0);
        let r = Request::Measure {
            spec: format!("xor-matched:t=3,s={}", 3 + (base % 4)),
            vec: VectorSpec::new(base, stride, len).expect("valid by construction"),
            strategy: strat,
        };
        let text = json::encode_request(&r);
        prop_assert_eq!(json::decode_request(&text).expect("decodes"), r);
    }

    #[test]
    fn prop_multi_stream_requests_round_trip(
        n in 0usize..6,
        seed in 0u64..1_000_000,
        width in 1u32..5,
        policy in prop::sample::select(vec![
            IssuePolicy::RoundRobin,
            IssuePolicy::Priority,
            IssuePolicy::WorkConserving,
        ]),
    ) {
        let streams: Vec<VectorSpec> = (0..n)
            .map(|i| {
                let i = u64::try_from(i).expect("small");
                let stride = 1 + i64::try_from((seed + i) % 97).expect("small");
                VectorSpec::new(seed + i * 64, stride, 1 + (seed + i) % 128)
                    .expect("valid by construction")
            })
            .collect();
        let r = Request::MultiStream {
            spec: "xor-matched:t=3,s=4".to_string(),
            streams,
            strategy: Strategy::Auto,
            policy,
            schedule: SchedulePlan::ConflictAware {
                width,
                max_score_milli: u32::try_from(seed % 3000).expect("small"),
            },
        };
        let text = json::encode_request(&r);
        prop_assert_eq!(json::decode_request(&text).expect("decodes"), r);
    }

    #[test]
    fn prop_floats_round_trip_bit_exact(bits in 0u64..u64::MAX) {
        let eta = f64::from_bits(bits);
        prop_assume!(!eta.is_nan());
        let text = json::encode_response(&Response::Efficiency(eta));
        match json::decode_response(&text).expect("decodes") {
            Response::Efficiency(back) => {
                prop_assert_eq!(back.to_bits(), eta.to_bits(), "text was {}", text);
            }
            other => return Err(TestCaseError::fail(format!("wrong shape {other:?}"))),
        }
    }

    #[test]
    fn prop_service_stats_round_trip(a in 0u64..u64::MAX, b in 0usize..100_000) {
        let stats = ServiceStats {
            queue_depth: b,
            in_flight: b / 2,
            cache: if a % 2 == 0 {
                Some(CacheStats {
                    hits: a,
                    misses: a / 3,
                    evictions: a % 101,
                    bypasses: a % 7,
                    invalidations: a % 11,
                    entries: b % 257,
                    capacity: 1 + b % 1024,
                })
            } else {
                None
            },
            retries: a % 13,
            restarts: a % 17,
            deadline_exceeded: a % 19,
            degraded: a % 23,
            faults_injected: a % 29,
            scheduler_batches: a % 31,
            scheduler_batched: a % 37,
            scheduler_fifo_fallbacks: a % 41,
            scheduler_window_occupancy: b % 43,
            scheduler_predicted_conflicts_milli: a % 47,
            scheduler_actual_conflicts: a % 53,
            wire_connections: a % 59,
            wire_rejections: a % 61,
            wire_in_flight: b % 67,
        };
        let text = json::encode_service_stats(&stats);
        prop_assert_eq!(json::decode_service_stats(&text).expect("decodes"), stats);
    }

    #[test]
    fn prop_parser_never_panics_on_mutated_input(
        seed in 0u64..u64::MAX,
        cut in 0usize..200,
        flip in 0usize..200,
    ) {
        // Take a valid encoding, truncate it and flip a byte: decode
        // must return (Ok or typed Err), never panic.
        let r = Request::Efficiency {
            spec: "xor-matched:t=3,s=3".to_string(),
            strategy: Strategy::Auto,
            len: 1 + seed % 256,
            estimator: Estimator::MonteCarlo {
                samples: 100,
                max_x: 8,
                max_sigma: 63,
            },
            seed,
        };
        let text = json::encode_request(&r);
        let cut = cut.min(text.len());
        let mut bytes = text.as_bytes()[..cut].to_vec();
        if !bytes.is_empty() {
            let at = flip % bytes.len();
            bytes[at] = bytes[at].wrapping_add(1 + (seed % 255) as u8);
        }
        if let Ok(mutated) = String::from_utf8(bytes) {
            let _ = json::decode_request(&mutated);
        }
        // Same property through the frame layer, with a hostile frame.
        let mut framed = Vec::new();
        frame::write_frame(&mut framed, &text).expect("write");
        let keep = cut.min(framed.len());
        let _ = frame::read_frame(&mut Cursor::new(&framed[..keep]));
    }
}
