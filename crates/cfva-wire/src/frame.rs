//! The transport framing: a big-endian `u32` payload length followed
//! by that many bytes of UTF-8 JSON.
//!
//! The framing layer knows nothing about the schema — it moves
//! strings. Three properties matter:
//!
//! * **Typed failure, never panic.** Truncated length words,
//!   truncated payloads, lengths beyond [`MAX_FRAME_LEN`] and
//!   non-UTF-8 payloads all come back as [`FrameError`] variants;
//!   adversarial bytes cannot take the process down (proven in
//!   `tests/codec_roundtrip.rs`).
//! * **Clean EOF is distinguishable.** A peer closing between frames
//!   yields [`FrameError::Closed`]; closing mid-frame yields an IO
//!   error. Readers use the distinction to tell graceful drain from a
//!   lost peer.
//! * **Bounded memory.** A frame length is attacker-controlled input;
//!   [`MAX_FRAME_LEN`] caps what a single frame may ask the reader to
//!   allocate.

use std::io::{self, Read, Write};

/// The protocol version exchanged in the hello frames. Bump on any
/// incompatible schema change; the server refuses mismatched hellos
/// with a typed `Fatal` frame instead of mis-decoding.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame's payload length, in bytes (64 MiB). A
/// `Response::FamilySweep` over a large family fits with orders of
/// magnitude to spare; anything bigger is a corrupt or hostile length
/// word.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including mid-frame EOF, which
    /// surfaces as [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
    /// The peer closed cleanly between frames.
    Closed,
    /// The length word exceeds [`MAX_FRAME_LEN`].
    Oversize {
        /// The length the peer claimed.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The payload is not valid UTF-8.
    InvalidUtf8 {
        /// How many bytes decoded before the first bad sequence.
        valid_up_to: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::Closed => write!(f, "peer closed the connection"),
            FrameError::Oversize { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            FrameError::InvalidUtf8 { valid_up_to } => {
                write!(
                    f,
                    "frame payload is not UTF-8 (valid up to byte {valid_up_to})"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: length word, payload, no flush (callers batch
/// writes and flush once per burst).
///
/// Payloads over [`MAX_FRAME_LEN`] are refused with
/// [`FrameError::Oversize`] before anything is written, so the stream
/// stays frame-aligned.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME_LEN)
        .ok_or(FrameError::Oversize {
            len: u32::try_from(payload.len()).unwrap_or(u32::MAX),
            max: MAX_FRAME_LEN,
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    Ok(())
}

/// Reads one frame's payload.
///
/// EOF before the first length byte is [`FrameError::Closed`] (the
/// peer finished cleanly); EOF anywhere after is an IO error with
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<String, FrameError> {
    let mut len_word = [0u8; 4];
    read_exact_or_closed(r, &mut len_word)?;
    let len = u32::from_be_bytes(len_word);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversize {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload).map_err(|e| FrameError::InvalidUtf8 {
        valid_up_to: e.utf8_error().valid_up_to(),
    })
}

/// `read_exact`, except EOF at byte 0 is the typed
/// [`FrameError::Closed`] rather than an IO error.
fn read_exact_or_closed<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let Some(slot) = buf.get_mut(filled..) else {
            break; // unreachable: filled < buf.len()
        };
        match r.read(slot) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length word",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}
