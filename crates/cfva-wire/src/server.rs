//! The serving side of the wire: accept connections, feed
//! [`Service::submit`], reap tickets back onto the socket.
//!
//! # Thread anatomy
//!
//! One **acceptor** thread owns the listener. Each connection gets a
//! **reader** and a **writer** thread:
//!
//! * the reader parses frames, enforces the per-connection admission
//!   cap, checks the shutdown flag and submits to the service — every
//!   outcome (a live ticket, or an immediate typed rejection) is
//!   handed to the writer over a channel;
//! * the writer owns the socket's write half and the connection's
//!   pending-ticket list. It reaps whichever ticket resolves first —
//!   responses return **out of submission order**, correlated by
//!   `request_id` — and keeps reaping even if the socket dies, so no
//!   accepted ticket is ever abandoned.
//!
//! # Admission control is per-client
//!
//! The service's global queue bound backpressures the process; the
//! per-connection in-flight cap ([`WireServerConfig`]) backpressures
//! each client before it can monopolize that queue (the
//! OLTP-scheduling argument: admission decisions belong at the
//! boundary where the client is identifiable). Both rejections travel
//! as typed [`ServeError::Overloaded`] — queue depth and capacity
//! tell the client which limit it hit — and a draining server answers
//! [`ServeError::ShuttingDown`].
//!
//! # Graceful drain
//!
//! [`WireServer::shutdown`] stops accepting, closes every
//! connection's read half (no new submissions), lets each writer
//! flush every accepted ticket's result to its client, then joins all
//! threads. Zero lost tickets, verified by the CI wire smoke.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cfva_serve::api::{ServeError, ServeResult};
use cfva_serve::locks::{ClassedMutex, LockClass};
use cfva_serve::service::{ServeTicket, Service, ServiceStats};

use crate::frame::{self, FrameError, PROTOCOL_VERSION};
use crate::json::{self, ClientFrame, ServerFrame};

/// Tuning knobs for a [`WireServer`].
#[derive(Debug, Clone, Copy)]
pub struct WireServerConfig {
    /// Requests one connection may have in flight before further
    /// submissions are rejected with a typed
    /// [`ServeError::Overloaded`] naming this cap. Minimum 1.
    pub max_in_flight_per_conn: usize,
}

impl Default for WireServerConfig {
    fn default() -> Self {
        WireServerConfig {
            max_in_flight_per_conn: 64,
        }
    }
}

/// Wire-boundary admission counters, surfaced as the `wire_*` fields
/// of [`ServiceStats`] by [`WireServer::stats`].
#[derive(Debug, Default)]
struct WireCounters {
    connections: AtomicU64,
    rejections: AtomicU64,
    in_flight: AtomicUsize,
}

/// Everything the acceptor and `shutdown` hand off to each other,
/// behind one `WireConns` lock: the acceptor's join handle and the
/// live-connection registry. Threads are joined strictly *outside*
/// the lock (a joined thread may be blocked on a serve lock).
#[derive(Debug, Default)]
struct ServerState {
    acceptor: Option<JoinHandle<()>>,
    conns: Vec<ConnHandle>,
}

#[derive(Debug)]
struct ConnHandle {
    /// A clone of the connection socket, kept so drain can close the
    /// read half and unblock the reader.
    stream: TcpStream,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

/// What a reader hands its connection's writer.
enum Outgoing {
    /// The client's hello checked out: answer it.
    Hello,
    /// An immediate outcome with no ticket (rejection or decode-level
    /// service error).
    Ready(u64, ServeResult),
    /// An admitted ticket to reap.
    Ticket(u64, ServeTicket),
    /// A stats snapshot to send.
    Stats(u64, ServiceStats),
    /// A protocol violation: report it, then stop writing.
    Fatal(String),
}

/// A TCP front door for one [`Service`].
///
/// Dropping the server shuts it down gracefully (idempotent with an
/// explicit [`shutdown`](WireServer::shutdown)). The service itself
/// is shared and stays up — callers own its lifecycle.
#[derive(Debug)]
pub struct WireServer {
    service: Arc<Service>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<WireCounters>,
    state: Arc<ClassedMutex<ServerState>>,
}

impl WireServer {
    /// Binds a listener and starts the acceptor thread.
    ///
    /// Bind to port 0 for an ephemeral port and recover it with
    /// [`local_addr`](WireServer::local_addr).
    pub fn bind<A: ToSocketAddrs>(
        service: Arc<Service>,
        addr: A,
        config: WireServerConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(WireCounters::default());
        let state = Arc::new(ClassedMutex::new(
            LockClass::WireConns,
            ServerState::default(),
        ));
        let config = WireServerConfig {
            max_in_flight_per_conn: config.max_in_flight_per_conn.max(1),
        };

        let acceptor = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                accept_loop(&listener, &service, &shutdown, &counters, &state, config);
            })
        };
        state.lock().acceptor = Some(acceptor);

        Ok(WireServer {
            service,
            addr,
            shutdown,
            counters,
            state,
        })
    }

    /// The bound address — the ephemeral port when bound to port 0.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service snapshot with the `wire_*` admission counters
    /// filled in — the same snapshot a [`ClientFrame::Stats`] probe
    /// receives.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        wire_stats(&self.service, &self.counters)
    }

    /// Graceful drain: stop accepting, close every connection's read
    /// half, flush every accepted ticket's result to its client, join
    /// all threads. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept with a dummy
        // connection, then join it before draining the registry, so
        // no connection can be registered afterwards.
        let _ = TcpStream::connect(self.addr);
        let acceptor = self.state.lock().acceptor.take();
        if let Some(handle) = acceptor {
            let _ = handle.join();
        }
        let conns = std::mem::take(&mut self.state.lock().conns);
        for conn in &conns {
            // No new frames: the reader unblocks and exits, the
            // writer drains what was admitted.
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        for conn in conns {
            let _ = conn.reader.join();
            let _ = conn.writer.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn wire_stats(service: &Service, counters: &WireCounters) -> ServiceStats {
    let mut stats = service.stats();
    stats.wire_connections = counters.connections.load(Ordering::Relaxed);
    stats.wire_rejections = counters.rejections.load(Ordering::Relaxed);
    stats.wire_in_flight = counters.in_flight.load(Ordering::Relaxed);
    stats
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    shutdown: &Arc<AtomicBool>,
    counters: &Arc<WireCounters>,
    state: &Arc<ClassedMutex<ServerState>>,
    config: WireServerConfig,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            // The drain's dummy connection, or a client racing it:
            // either way, admission is closed.
            return;
        }
        // The frame layer writes a 4-byte length word and then the
        // payload: without TCP_NODELAY that write-write-read pattern
        // trips Nagle against the peer's delayed ACK (~40 ms per round
        // trip on loopback). Best effort — a socket that can't set the
        // option still works, just slower.
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let Ok(registry_clone) = stream.try_clone() else {
            continue;
        };
        counters.connections.fetch_add(1, Ordering::Relaxed);

        let (tx, rx) = std::sync::mpsc::channel::<Outgoing>();
        let conn_in_flight = Arc::new(AtomicUsize::new(0));

        let reader = {
            let service = Arc::clone(service);
            let shutdown = Arc::clone(shutdown);
            let counters = Arc::clone(counters);
            let conn_in_flight = Arc::clone(&conn_in_flight);
            std::thread::spawn(move || {
                reader_loop(
                    read_half,
                    &tx,
                    &service,
                    &shutdown,
                    &counters,
                    &conn_in_flight,
                    config.max_in_flight_per_conn,
                );
            })
        };
        let writer = {
            let counters = Arc::clone(counters);
            let conn_in_flight = Arc::clone(&conn_in_flight);
            let max = config.max_in_flight_per_conn;
            std::thread::spawn(move || {
                writer_loop(stream, &rx, &counters, &conn_in_flight, max);
            })
        };
        state.lock().conns.push(ConnHandle {
            stream: registry_clone,
            reader,
            writer,
        });
    }
}

/// Parses and admits one connection's frames. Every submission gets
/// exactly one eventual `Result` frame: a live ticket handed to the
/// writer, or an immediate typed rejection.
fn reader_loop(
    stream: TcpStream,
    tx: &Sender<Outgoing>,
    service: &Service,
    shutdown: &AtomicBool,
    counters: &WireCounters,
    conn_in_flight: &AtomicUsize,
    max_in_flight: usize,
) {
    let mut reader = BufReader::new(stream);

    // The handshake: exactly one hello, version-checked, before
    // anything else.
    match frame::read_frame(&mut reader) {
        Ok(text) => match json::decode_client_frame(&text) {
            Ok(ClientFrame::Hello { proto }) if proto == PROTOCOL_VERSION => {
                let _ = tx.send(Outgoing::Hello);
            }
            Ok(ClientFrame::Hello { proto }) => {
                let _ = tx.send(Outgoing::Fatal(format!(
                    "unsupported protocol version {proto} (server speaks {PROTOCOL_VERSION})"
                )));
                return;
            }
            Ok(_) => {
                let _ = tx.send(Outgoing::Fatal("first frame must be a hello".to_string()));
                return;
            }
            Err(e) => {
                let _ = tx.send(Outgoing::Fatal(e.to_string()));
                return;
            }
        },
        Err(FrameError::Closed) | Err(FrameError::Io(_)) => return,
        Err(e) => {
            let _ = tx.send(Outgoing::Fatal(e.to_string()));
            return;
        }
    }

    loop {
        let text = match frame::read_frame(&mut reader) {
            Ok(text) => text,
            // Clean goodbye or a lost/drained peer: stop reading; the
            // writer drains whatever was admitted.
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => return,
            // Oversize length or bad UTF-8: the stream may be
            // misaligned, so report and close rather than mis-parse.
            Err(e) => {
                let _ = tx.send(Outgoing::Fatal(e.to_string()));
                return;
            }
        };
        match json::decode_client_frame(&text) {
            Ok(ClientFrame::Submit {
                id,
                request,
                budget,
            }) => {
                if shutdown.load(Ordering::SeqCst) {
                    counters.rejections.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Outgoing::Ready(id, Err(ServeError::ShuttingDown)));
                    continue;
                }
                let held = conn_in_flight.load(Ordering::Relaxed);
                if held >= max_in_flight {
                    counters.rejections.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Outgoing::Ready(
                        id,
                        Err(ServeError::Overloaded {
                            queue_depth: held,
                            capacity: max_in_flight,
                        }),
                    ));
                    continue;
                }
                let submitted = match budget {
                    Some(budget) => service.submit_with_budget(request, budget),
                    None => service.submit(request),
                };
                match submitted {
                    Ok(ticket) => {
                        conn_in_flight.fetch_add(1, Ordering::Relaxed);
                        counters.in_flight.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Outgoing::Ticket(id, ticket));
                    }
                    Err(e) => {
                        counters.rejections.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Outgoing::Ready(id, Err(e)));
                    }
                }
            }
            Ok(ClientFrame::Stats { id }) => {
                let _ = tx.send(Outgoing::Stats(id, wire_stats(service, counters)));
            }
            Ok(ClientFrame::Hello { .. }) => {
                let _ = tx.send(Outgoing::Fatal("duplicate hello".to_string()));
                return;
            }
            Err(e) => {
                let _ = tx.send(Outgoing::Fatal(e.to_string()));
                return;
            }
        }
    }
}

/// Owns the write half and the pending-ticket list. Writes whichever
/// ticket resolves first; never abandons a ticket, even when the
/// socket dies mid-connection.
fn writer_loop(
    stream: TcpStream,
    rx: &Receiver<Outgoing>,
    counters: &WireCounters,
    conn_in_flight: &AtomicUsize,
    max_in_flight: usize,
) {
    let mut w = BufWriter::new(stream);
    let mut pending: Vec<(u64, ServeTicket)> = Vec::new();
    // `false` once the reader is gone (channel closed): no new work.
    let mut alive = true;
    // `true` once the socket failed or a fatal was sent: keep reaping
    // tickets (their results are simply discarded), stop writing.
    let mut broken = false;

    loop {
        // Idle and nothing pending: block for the next instruction.
        if alive && pending.is_empty() {
            match rx.recv() {
                Ok(msg) => {
                    handle_outgoing(msg, &mut w, &mut pending, &mut broken, max_in_flight);
                }
                Err(_) => alive = false,
            }
        }
        // Drain whatever else queued up without blocking.
        while alive {
            match rx.try_recv() {
                Ok(msg) => {
                    handle_outgoing(msg, &mut w, &mut pending, &mut broken, max_in_flight);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => alive = false,
            }
        }
        if !alive && pending.is_empty() {
            break;
        }

        // Reap every ready ticket, in whatever order they resolved.
        let mut wrote = false;
        let mut i = 0;
        while i < pending.len() {
            let ready = pending.get_mut(i).is_some_and(|(_, t)| t.is_ready());
            if !ready {
                i += 1;
                continue;
            }
            let (id, mut ticket) = pending.swap_remove(i);
            match ticket.poll() {
                Some(result) => {
                    finish(id, result, &mut w, &mut broken, counters, conn_in_flight);
                    wrote = true;
                }
                None => pending.push((id, ticket)),
            }
        }
        // Nothing was ready: park briefly on the oldest ticket so the
        // loop neither spins nor misses a newly resolved one.
        if !wrote && !pending.is_empty() {
            let (id, ticket) = pending.remove(0);
            match ticket.wait_timeout(Duration::from_millis(1)) {
                Ok(result) => {
                    finish(id, result, &mut w, &mut broken, counters, conn_in_flight);
                }
                Err(ticket) => pending.insert(0, (id, ticket)),
            }
        }
        let _ = w.flush();
    }
    let _ = w.flush();
}

fn handle_outgoing(
    msg: Outgoing,
    w: &mut BufWriter<TcpStream>,
    pending: &mut Vec<(u64, ServeTicket)>,
    broken: &mut bool,
    max_in_flight: usize,
) {
    match msg {
        Outgoing::Hello => {
            let max = u32::try_from(max_in_flight).unwrap_or(u32::MAX);
            send_frame(
                w,
                broken,
                &ServerFrame::Hello {
                    proto: PROTOCOL_VERSION,
                    max_in_flight: max,
                },
            );
        }
        Outgoing::Ready(id, result) => {
            send_frame(w, broken, &ServerFrame::Result { id, result });
        }
        Outgoing::Ticket(id, ticket) => pending.push((id, ticket)),
        Outgoing::Stats(id, stats) => {
            send_frame(w, broken, &ServerFrame::Stats { id, stats });
        }
        Outgoing::Fatal(reason) => {
            send_frame(w, broken, &ServerFrame::Fatal { reason });
            let _ = w.flush();
            *broken = true;
        }
    }
}

fn finish(
    id: u64,
    result: ServeResult,
    w: &mut BufWriter<TcpStream>,
    broken: &mut bool,
    counters: &WireCounters,
    conn_in_flight: &AtomicUsize,
) {
    conn_in_flight.fetch_sub(1, Ordering::Relaxed);
    counters.in_flight.fetch_sub(1, Ordering::Relaxed);
    send_frame(w, broken, &ServerFrame::Result { id, result });
}

fn send_frame(w: &mut BufWriter<TcpStream>, broken: &mut bool, frame_msg: &ServerFrame) {
    if *broken {
        return;
    }
    let payload = json::encode_server_frame(frame_msg);
    if frame::write_frame(w, &payload).is_err() {
        *broken = true;
    }
}
