//! # cfva-wire — a TCP front door for the serve substrate
//!
//! Everything `cfva-serve` can do in-process, over a socket: the
//! typed [`Request`](cfva_serve::api::Request) /
//! [`Response`](cfva_serve::api::Response) schema travels as
//! length-prefixed JSON frames between a [`client::WireClient`] and a
//! [`server::WireServer`] that feeds
//! [`Service::submit`](cfva_serve::service::Service::submit).
//!
//! The crate is dependency-free by policy (no external serde — the
//! workspace vendors its dependencies), so the codec is hand-rolled:
//!
//! * [`json`] — a small JSON document model ([`json::Value`]), an
//!   allocating encoder, a recursion-capped parser, and a typed
//!   encoder/decoder pair for every API type that crosses the wire
//!   (`Request`, `Response`, `ServeError`, `ServiceStats`, and the
//!   frame envelopes). Round-trips are bit-identical — proven by
//!   proptest in `tests/codec_roundtrip.rs`, and cfva-lint's L004
//!   refuses any API variant the round-trip suite does not reach.
//! * [`frame`] — the transport framing: a big-endian `u32` payload
//!   length followed by that many bytes of UTF-8 JSON, with an
//!   oversize cap and typed errors for truncation, bad lengths and
//!   invalid UTF-8. A versioned hello opens every connection.
//! * [`server`] — [`server::WireServer`]: one acceptor thread,
//!   per-connection reader/writer threads reaping tickets (responses
//!   are correlated by `request_id` and may return out of submission
//!   order), per-connection admission caps surfacing typed
//!   [`ServeError::Overloaded`](cfva_serve::api::ServeError) and
//!   [`ServeError::ShuttingDown`](cfva_serve::api::ServeError) on the
//!   wire, and a graceful drain: shutdown stops accepting, flushes
//!   every accepted ticket to its client, then closes.
//! * [`client`] — [`client::WireClient`]: a blocking
//!   connect/submit/wait API mirroring `Service`, so callers can swap
//!   transports without restructuring.
//!
//! Locking reuses `cfva-serve`'s [`ClassedMutex`] leaf discipline
//! (classes `WireConns` and `WireIntern`) — no new lock hierarchy,
//! and the same static (L001) and debug-build dynamic checkers apply.
//!
//! ```no_run
//! use cfva_serve::api::{Request, Response};
//! use cfva_serve::service::{Service, ServiceConfig};
//! use cfva_core::plan::Strategy;
//! use cfva_core::VectorSpec;
//! use cfva_wire::client::WireClient;
//! use cfva_wire::server::{WireServer, WireServerConfig};
//! use std::sync::Arc;
//!
//! let service = Arc::new(Service::new(ServiceConfig::default()));
//! let server = WireServer::bind(
//!     Arc::clone(&service),
//!     "127.0.0.1:0",
//!     WireServerConfig::default(),
//! )?;
//!
//! let mut client = WireClient::connect(server.local_addr())?;
//! let ticket = client.submit(Request::Measure {
//!     spec: "xor-matched:t=3,s=3".into(),
//!     vec: VectorSpec::new(16, 12, 64)?,
//!     strategy: Strategy::Auto,
//! })?;
//! match client.wait(ticket)?? {
//!     Response::Measured(Some(stats)) => assert_eq!(stats.latency, 8 + 64 + 1),
//!     other => panic!("unexpected response {other:?}"),
//! }
//!
//! drop(client);
//! server.shutdown();
//! service.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod client;
pub mod frame;
pub mod json;
pub mod server;

/// Errors a wire endpoint can surface to its caller: transport
/// (framing/IO), codec (malformed or mis-shaped JSON), or protocol
/// (well-formed frames in an order or shape the handshake forbids).
///
/// Service-level failures ([`cfva_serve::api::ServeError`]) are *not*
/// wire errors — they travel inside a successful
/// [`frame`]d response, exactly as `Service::submit` returns them
/// in-process.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed: IO error, truncated or oversize frame,
    /// or a payload that was not UTF-8.
    Frame(frame::FrameError),
    /// A frame's JSON payload did not decode to the expected type.
    Decode(json::DecodeError),
    /// Frames arrived in an order or shape the protocol forbids
    /// (missing hello, unsupported version, unknown envelope).
    Protocol {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "frame error: {e}"),
            WireError::Decode(e) => write!(f, "decode error: {e}"),
            WireError::Protocol { reason } => write!(f, "protocol error: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<frame::FrameError> for WireError {
    fn from(e: frame::FrameError) -> Self {
        WireError::Frame(e)
    }
}

impl From<json::DecodeError> for WireError {
    fn from(e: json::DecodeError) -> Self {
        WireError::Decode(e)
    }
}
