//! The wire schema: a hand-rolled JSON codec for every API type that
//! crosses the socket.
//!
//! The workspace vendors its dependencies, so there is no external
//! serde; this module is the serde layer. It has three floors:
//!
//! 1. [`Value`] — a small JSON document model, with [`parse`] (a
//!    recursion-capped, never-panicking parser returning typed
//!    [`DecodeError`]s) and [`encode`] (an allocating writer).
//! 2. Typed codecs — `encode_*` / `decode_*` pairs for
//!    [`Request`], [`Response`], [`ServeError`], `ServeResult` and
//!    [`ServiceStats`]. Enums travel as one-key tagged objects
//!    (`{"measure": {...}}`) or bare strings for unit variants
//!    (`"shutting_down"`); every round-trip is bit-identical, proven
//!    by proptest in `tests/codec_roundtrip.rs` and enforced
//!    per-variant by cfva-lint's L004.
//! 3. Frame envelopes — [`ClientFrame`] / [`ServerFrame`], the
//!    payloads of the length-prefixed frames in [`crate::frame`]:
//!    a versioned hello, `request_id`-correlated submissions and
//!    results (responses may return out of submission order), and a
//!    stats probe.
//!
//! Numbers are kept in three lanes (`u64` / `i64` / `f64`) so a
//! 64-bit counter survives without a float detour; floats encode via
//! Rust's shortest round-trip formatting (`{:?}`), so `f64` fields are
//! bit-identical after a round trip too. Non-finite floats encode as
//! the strings `"nan"` / `"inf"` / `"-inf"` (JSON has no spelling for
//! them); NaN canonicalizes to `f64::NAN`.
//!
//! Decoding [`ConfigError`] needs `&'static str` fields; those are
//! re-materialized through an append-only, deduplicating intern pool
//! (class `WireIntern` — see `cfva_serve::locks`). The pool leaks by
//! design, bounded by the number of *distinct* strings decoded.

use std::time::Duration;

use cfva_core::ConfigError;
use cfva_core::VectorSpec;
use cfva_memsim::{AccessStats, IssuePolicy};
use cfva_serve::api::{
    Estimator, FamilyPoint, MultiStreamOutcome, Request, Response, SchedulePlan, ServeError,
    ServeResult, StreamSummary,
};
use cfva_serve::locks::{ClassedMutex, LockClass};
use cfva_serve::service::ServiceStats;
use cfva_serve::CacheStats;
use std::sync::OnceLock;

use cfva_core::plan::Strategy;

/// Maximum nesting depth [`parse`] accepts before returning a typed
/// error instead of risking the stack. The deepest legitimate wire
/// document is a `Response::Degraded` chain; the service produces
/// depth ≤ 2 of those, so 96 is generous.
pub const MAX_DEPTH: u32 = 96;

// ---------------------------------------------------------------------
// Document model
// ---------------------------------------------------------------------

/// A parsed JSON document.
///
/// Object fields keep their order (a `Vec`, not a map): encoding is
/// deterministic and round-trips preserve field order, which keeps
/// the codec's output canonical for byte-level comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no sign, no fraction, no
    /// exponent).
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A literal with a fraction or exponent.
    Float(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in source/encode order.
    Obj(Vec<(String, Value)>),
}

/// Why a wire payload failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The text is not well-formed JSON (or exceeds [`MAX_DEPTH`]).
    Syntax {
        /// Byte offset of the failure.
        offset: usize,
        /// What the parser expected or rejected.
        reason: &'static str,
    },
    /// Well-formed JSON that does not match the expected shape.
    Schema {
        /// The type or field being decoded.
        what: &'static str,
        /// What was wrong with the value.
        reason: String,
    },
    /// A decoded value failed domain validation (for example a
    /// `VectorSpec` whose stride is zero) — the same typed error the
    /// in-process constructor returns.
    Invalid(ConfigError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Syntax { offset, reason } => {
                write!(f, "malformed JSON at byte {offset}: {reason}")
            }
            DecodeError::Schema { what, reason } => {
                write!(f, "unexpected shape for {what}: {reason}")
            }
            DecodeError::Invalid(e) => write!(f, "decoded value rejected: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn schema(what: &'static str, reason: impl Into<String>) -> DecodeError {
    DecodeError::Schema {
        what,
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

/// Encodes a [`Value`] as compact JSON (no whitespace).
///
/// Non-finite floats encode as the strings `"nan"` / `"inf"` /
/// `"-inf"`; finite floats use Rust's shortest round-trip formatting.
#[must_use]
pub fn encode(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same bits — "2.0" stays a float lane,
                // "1e300" stays compact.
                out.push_str(&format!("{x:?}"));
            } else if x.is_nan() {
                out.push_str("\"nan\"");
            } else if *x > 0.0 {
                out.push_str("\"inf\"");
            } else {
                out.push_str("\"-inf\"");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses a JSON document.
///
/// Never panics on any input: malformed text, truncation, deep
/// nesting (capped at [`MAX_DEPTH`]) and out-of-range numbers all
/// return a typed [`DecodeError::Syntax`]. Trailing non-whitespace
/// after the top-level value is rejected.
pub fn parse(text: &str) -> Result<Value, DecodeError> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> DecodeError {
        DecodeError::Syntax {
            offset: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, reason: &'static str) -> Result<(), DecodeError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    /// `self.text[a..b]`, as a typed error instead of a panic if the
    /// range is somehow out of bounds.
    fn slice(&self, a: usize, b: usize) -> Result<&str, DecodeError> {
        self.text.get(a..b).ok_or(DecodeError::Syntax {
            offset: a,
            reason: "internal: slice out of range",
        })
    }

    fn literal(&mut self, lit: &'static str, value: Value) -> Result<Value, DecodeError> {
        let end = self.pos + lit.len();
        if self.text.get(self.pos..end) == Some(lit) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), DecodeError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, DecodeError> {
        self.expect_byte(b'[', "expected '['")?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DecodeError> {
        self.expect_byte(b'{', "expected '{'")?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.slice(run_start, self.pos)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.slice(run_start, self.pos)?);
                    self.pos += 1;
                    self.escape(&mut out)?;
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), DecodeError> {
        let Some(b) = self.peek() else {
            return Err(self.err("truncated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&high) {
                    // High surrogate: a `\uXXXX` low surrogate must
                    // follow; combine into one scalar value.
                    self.expect_byte(b'\\', "high surrogate not followed by \\u escape")?;
                    self.expect_byte(b'u', "high surrogate not followed by \\u escape")?;
                    let low = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&low) {
                        return Err(self.err("high surrogate not followed by low surrogate"));
                    }
                    0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                } else {
                    high
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(self.err("escape is not a unicode scalar value")),
                }
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, DecodeError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = (code << 4) | digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, DecodeError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("digit expected in number"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let lit = self.slice(start, self.pos)?;
        if float {
            lit.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("malformed float"))
        } else if negative {
            lit.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer does not fit in i64"))
        } else {
            lit.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("integer does not fit in u64"))
        }
    }
}

// ---------------------------------------------------------------------
// Scalar codec helpers
// ---------------------------------------------------------------------

fn obj(fields: Vec<(&'static str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One-key tagged object: the enum-variant encoding.
fn tag(name: &'static str, inner: Value) -> Value {
    Value::Obj(vec![(name.to_string(), inner)])
}

fn as_obj<'v>(value: &'v Value, what: &'static str) -> Result<&'v [(String, Value)], DecodeError> {
    match value {
        Value::Obj(fields) => Ok(fields),
        other => Err(schema(what, format!("expected an object, got {other:?}"))),
    }
}

fn as_arr<'v>(value: &'v Value, what: &'static str) -> Result<&'v [Value], DecodeError> {
    match value {
        Value::Arr(items) => Ok(items),
        other => Err(schema(what, format!("expected an array, got {other:?}"))),
    }
}

/// The value of a one-key tagged object, or the bare string of a unit
/// variant (returned as `(tag, None)`).
fn as_tagged<'v>(
    value: &'v Value,
    what: &'static str,
) -> Result<(&'v str, Option<&'v Value>), DecodeError> {
    match value {
        Value::Str(name) => Ok((name, None)),
        Value::Obj(fields) => match fields.first() {
            Some((name, inner)) if fields.len() == 1 => Ok((name, Some(inner))),
            _ => Err(schema(what, "expected exactly one variant tag")),
        },
        other => Err(schema(
            what,
            format!("expected a variant tag, got {other:?}"),
        )),
    }
}

fn field<'v>(
    fields: &'v [(String, Value)],
    key: &'static str,
    what: &'static str,
) -> Result<&'v Value, DecodeError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| schema(what, format!("missing field `{key}`")))
}

fn opt_field<'v>(fields: &'v [(String, Value)], key: &'static str) -> Option<&'v Value> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .filter(|v| !matches!(v, Value::Null))
}

fn dec_u64(value: &Value, what: &'static str) -> Result<u64, DecodeError> {
    match value {
        Value::UInt(n) => Ok(*n),
        other => Err(schema(
            what,
            format!("expected a non-negative integer, got {other:?}"),
        )),
    }
}

fn dec_u32(value: &Value, what: &'static str) -> Result<u32, DecodeError> {
    u32::try_from(dec_u64(value, what)?)
        .map_err(|_| schema(what, "integer does not fit in u32".to_string()))
}

fn dec_usize(value: &Value, what: &'static str) -> Result<usize, DecodeError> {
    usize::try_from(dec_u64(value, what)?)
        .map_err(|_| schema(what, "integer does not fit in usize".to_string()))
}

fn enc_i64(n: i64) -> Value {
    if n < 0 {
        Value::Int(n)
    } else {
        Value::UInt(n as u64)
    }
}

fn dec_i64(value: &Value, what: &'static str) -> Result<i64, DecodeError> {
    match value {
        Value::Int(n) => Ok(*n),
        Value::UInt(n) => {
            i64::try_from(*n).map_err(|_| schema(what, "integer does not fit in i64".to_string()))
        }
        other => Err(schema(what, format!("expected an integer, got {other:?}"))),
    }
}

fn enc_f64(x: f64) -> Value {
    Value::Float(x)
}

fn dec_f64(value: &Value, what: &'static str) -> Result<f64, DecodeError> {
    match value {
        Value::Float(x) => Ok(*x),
        Value::UInt(n) => Ok(*n as f64),
        Value::Int(n) => Ok(*n as f64),
        Value::Str(s) if s == "nan" => Ok(f64::NAN),
        Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
        Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
        other => Err(schema(what, format!("expected a number, got {other:?}"))),
    }
}

fn dec_bool(value: &Value, what: &'static str) -> Result<bool, DecodeError> {
    match value {
        Value::Bool(b) => Ok(*b),
        other => Err(schema(what, format!("expected a boolean, got {other:?}"))),
    }
}

fn dec_string(value: &Value, what: &'static str) -> Result<String, DecodeError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        other => Err(schema(what, format!("expected a string, got {other:?}"))),
    }
}

fn enc_u64_arr(items: &[u64]) -> Value {
    Value::Arr(items.iter().map(|n| Value::UInt(*n)).collect())
}

fn dec_u64_arr(value: &Value, what: &'static str) -> Result<Vec<u64>, DecodeError> {
    as_arr(value, what)?
        .iter()
        .map(|v| dec_u64(v, what))
        .collect()
}

fn enc_duration(d: Duration) -> Value {
    obj(vec![
        ("secs", Value::UInt(d.as_secs())),
        ("nanos", Value::UInt(u64::from(d.subsec_nanos()))),
    ])
}

fn dec_duration(value: &Value, what: &'static str) -> Result<Duration, DecodeError> {
    let fields = as_obj(value, what)?;
    let secs = dec_u64(field(fields, "secs", what)?, what)?;
    let nanos = dec_u32(field(fields, "nanos", what)?, what)?;
    if nanos >= 1_000_000_000 {
        return Err(schema(what, "nanos must be below 1e9".to_string()));
    }
    Ok(Duration::new(secs, nanos))
}

// ---------------------------------------------------------------------
// &'static str interning (ConfigError round trips)
// ---------------------------------------------------------------------

/// Re-materializes a `&'static str`: dedups against every string this
/// process has interned, leaking only the first occurrence. Equality
/// is by content — exactly what `ConfigError`'s derived `PartialEq`
/// compares, so round-tripped errors compare equal to the originals.
fn intern_str(s: &str) -> &'static str {
    static POOL: OnceLock<ClassedMutex<Vec<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| ClassedMutex::new(LockClass::WireIntern, Vec::new()));
    let mut guard = pool.lock();
    if let Some(hit) = guard.iter().find(|e| **e == s).copied() {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.push(leaked);
    leaked
}

/// Re-materializes a `&'static [&'static str]`, deduplicating whole
/// slices by content.
fn intern_slice(items: Vec<&'static str>) -> &'static [&'static str] {
    static POOL: OnceLock<ClassedMutex<Vec<&'static [&'static str]>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| ClassedMutex::new(LockClass::WireIntern, Vec::new()));
    let mut guard = pool.lock();
    if let Some(hit) = guard.iter().find(|e| **e == items.as_slice()).copied() {
        return hit;
    }
    let leaked: &'static [&'static str] = Box::leak(items.into_boxed_slice());
    guard.push(leaked);
    leaked
}

// ---------------------------------------------------------------------
// Domain types
// ---------------------------------------------------------------------

fn enc_strategy(s: Strategy) -> Value {
    // The registry's spec-string vocabulary, same as `Display`.
    Value::Str(s.to_string())
}

fn dec_strategy(value: &Value, what: &'static str) -> Result<Strategy, DecodeError> {
    match value {
        Value::Str(name) => match name.as_str() {
            "canonical" => Ok(Strategy::Canonical),
            "subsequence" => Ok(Strategy::Subsequence),
            "conflict-free" => Ok(Strategy::ConflictFree),
            "auto" => Ok(Strategy::Auto),
            other => Err(schema(what, format!("unknown strategy `{other}`"))),
        },
        other => Err(schema(what, format!("expected a strategy, got {other:?}"))),
    }
}

fn enc_policy(p: IssuePolicy) -> Value {
    Value::Str(p.to_string())
}

fn dec_policy(value: &Value, what: &'static str) -> Result<IssuePolicy, DecodeError> {
    match value {
        Value::Str(name) => match name.as_str() {
            "round-robin" => Ok(IssuePolicy::RoundRobin),
            "priority" => Ok(IssuePolicy::Priority),
            "work-conserving" => Ok(IssuePolicy::WorkConserving),
            other => Err(schema(what, format!("unknown issue policy `{other}`"))),
        },
        other => Err(schema(
            what,
            format!("expected an issue policy, got {other:?}"),
        )),
    }
}

fn enc_estimator(e: Estimator) -> Value {
    match e {
        Estimator::MonteCarlo {
            samples,
            max_x,
            max_sigma,
        } => tag(
            "monte_carlo",
            obj(vec![
                ("samples", Value::UInt(u64::from(samples))),
                ("max_x", Value::UInt(u64::from(max_x))),
                ("max_sigma", Value::UInt(max_sigma)),
            ]),
        ),
        Estimator::Stratified { max_x, per_family } => tag(
            "stratified",
            obj(vec![
                ("max_x", Value::UInt(u64::from(max_x))),
                ("per_family", Value::UInt(u64::from(per_family))),
            ]),
        ),
    }
}

fn dec_estimator(value: &Value, what: &'static str) -> Result<Estimator, DecodeError> {
    match as_tagged(value, what)? {
        ("monte_carlo", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(Estimator::MonteCarlo {
                samples: dec_u32(field(fields, "samples", what)?, what)?,
                max_x: dec_u32(field(fields, "max_x", what)?, what)?,
                max_sigma: dec_u64(field(fields, "max_sigma", what)?, what)?,
            })
        }
        ("stratified", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(Estimator::Stratified {
                max_x: dec_u32(field(fields, "max_x", what)?, what)?,
                per_family: dec_u32(field(fields, "per_family", what)?, what)?,
            })
        }
        (other, _) => Err(schema(what, format!("unknown estimator `{other}`"))),
    }
}

fn enc_schedule(s: SchedulePlan) -> Value {
    match s {
        SchedulePlan::Together => Value::Str("together".to_string()),
        SchedulePlan::FifoWaves { width } => tag(
            "fifo_waves",
            obj(vec![("width", Value::UInt(u64::from(width)))]),
        ),
        SchedulePlan::ConflictAware {
            width,
            max_score_milli,
        } => tag(
            "conflict_aware",
            obj(vec![
                ("width", Value::UInt(u64::from(width))),
                ("max_score_milli", Value::UInt(u64::from(max_score_milli))),
            ]),
        ),
    }
}

fn dec_schedule(value: &Value, what: &'static str) -> Result<SchedulePlan, DecodeError> {
    match as_tagged(value, what)? {
        ("together", None) => Ok(SchedulePlan::Together),
        ("fifo_waves", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(SchedulePlan::FifoWaves {
                width: dec_u32(field(fields, "width", what)?, what)?,
            })
        }
        ("conflict_aware", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(SchedulePlan::ConflictAware {
                width: dec_u32(field(fields, "width", what)?, what)?,
                max_score_milli: dec_u32(field(fields, "max_score_milli", what)?, what)?,
            })
        }
        (other, _) => Err(schema(what, format!("unknown schedule plan `{other}`"))),
    }
}

fn enc_vector_spec(v: &VectorSpec) -> Value {
    obj(vec![
        ("base", Value::UInt(v.base().get())),
        ("stride", enc_i64(v.stride().get())),
        ("len", Value::UInt(v.len())),
    ])
}

/// Decodes through [`VectorSpec::new`], so a hostile peer cannot smuggle
/// in a spec the in-process constructor would reject (zero stride,
/// address overflow): the wire re-validates and returns the same typed
/// [`ConfigError`].
fn dec_vector_spec(value: &Value, what: &'static str) -> Result<VectorSpec, DecodeError> {
    let fields = as_obj(value, what)?;
    let base = dec_u64(field(fields, "base", what)?, what)?;
    let stride = dec_i64(field(fields, "stride", what)?, what)?;
    let len = dec_u64(field(fields, "len", what)?, what)?;
    VectorSpec::new(base, stride, len).map_err(DecodeError::Invalid)
}

fn enc_access_stats(s: &AccessStats) -> Value {
    obj(vec![
        ("latency", Value::UInt(s.latency)),
        ("elements", Value::UInt(s.elements)),
        ("stall_cycles", Value::UInt(s.stall_cycles)),
        ("conflicts", Value::UInt(s.conflicts)),
        ("arrival", enc_u64_arr(&s.arrival)),
        ("module_busy", enc_u64_arr(&s.module_busy)),
        ("max_in_q", Value::UInt(s.max_in_q as u64)),
    ])
}

fn dec_access_stats(value: &Value, what: &'static str) -> Result<AccessStats, DecodeError> {
    let fields = as_obj(value, what)?;
    Ok(AccessStats {
        latency: dec_u64(field(fields, "latency", what)?, what)?,
        elements: dec_u64(field(fields, "elements", what)?, what)?,
        stall_cycles: dec_u64(field(fields, "stall_cycles", what)?, what)?,
        conflicts: dec_u64(field(fields, "conflicts", what)?, what)?,
        arrival: dec_u64_arr(field(fields, "arrival", what)?, what)?,
        module_busy: dec_u64_arr(field(fields, "module_busy", what)?, what)?,
        max_in_q: dec_usize(field(fields, "max_in_q", what)?, what)?,
    })
}

fn enc_opt_access_stats(s: &Option<AccessStats>) -> Value {
    match s {
        Some(stats) => enc_access_stats(stats),
        None => Value::Null,
    }
}

fn dec_opt_access_stats(
    value: &Value,
    what: &'static str,
) -> Result<Option<AccessStats>, DecodeError> {
    match value {
        Value::Null => Ok(None),
        other => dec_access_stats(other, what).map(Some),
    }
}

fn enc_family_point(p: &FamilyPoint) -> Value {
    obj(vec![
        ("x", Value::UInt(u64::from(p.x))),
        ("stride", enc_i64(p.stride)),
        ("latency", Value::UInt(p.latency)),
        ("conflicts", Value::UInt(p.conflicts)),
        ("stall_cycles", Value::UInt(p.stall_cycles)),
        ("cycles_per_element", enc_f64(p.cycles_per_element)),
    ])
}

fn dec_family_point(value: &Value, what: &'static str) -> Result<FamilyPoint, DecodeError> {
    let fields = as_obj(value, what)?;
    Ok(FamilyPoint {
        x: dec_u32(field(fields, "x", what)?, what)?,
        stride: dec_i64(field(fields, "stride", what)?, what)?,
        latency: dec_u64(field(fields, "latency", what)?, what)?,
        conflicts: dec_u64(field(fields, "conflicts", what)?, what)?,
        stall_cycles: dec_u64(field(fields, "stall_cycles", what)?, what)?,
        cycles_per_element: dec_f64(field(fields, "cycles_per_element", what)?, what)?,
    })
}

fn enc_stream_summary(s: &StreamSummary) -> Value {
    obj(vec![
        ("wave", Value::UInt(u64::from(s.wave))),
        ("elements", Value::UInt(s.elements)),
        ("first_issue", Value::UInt(s.first_issue)),
        ("latency", Value::UInt(s.latency)),
        ("spread", Value::UInt(s.spread)),
        ("conflicts", Value::UInt(s.conflicts)),
        ("stall_cycles", Value::UInt(s.stall_cycles)),
    ])
}

fn dec_stream_summary(value: &Value, what: &'static str) -> Result<StreamSummary, DecodeError> {
    let fields = as_obj(value, what)?;
    Ok(StreamSummary {
        wave: dec_u32(field(fields, "wave", what)?, what)?,
        elements: dec_u64(field(fields, "elements", what)?, what)?,
        first_issue: dec_u64(field(fields, "first_issue", what)?, what)?,
        latency: dec_u64(field(fields, "latency", what)?, what)?,
        spread: dec_u64(field(fields, "spread", what)?, what)?,
        conflicts: dec_u64(field(fields, "conflicts", what)?, what)?,
        stall_cycles: dec_u64(field(fields, "stall_cycles", what)?, what)?,
    })
}

fn enc_multi_stream_outcome(o: &MultiStreamOutcome) -> Value {
    obj(vec![
        (
            "per_stream",
            Value::Arr(o.per_stream.iter().map(enc_stream_summary).collect()),
        ),
        ("wave_makespans", enc_u64_arr(&o.wave_makespans)),
        ("makespan", Value::UInt(o.makespan)),
        ("sequential_baseline", Value::UInt(o.sequential_baseline)),
        (
            "predicted_conflicts_milli",
            Value::UInt(o.predicted_conflicts_milli),
        ),
        ("actual_conflicts", Value::UInt(o.actual_conflicts)),
    ])
}

fn dec_multi_stream_outcome(
    value: &Value,
    what: &'static str,
) -> Result<MultiStreamOutcome, DecodeError> {
    let fields = as_obj(value, what)?;
    Ok(MultiStreamOutcome {
        per_stream: as_arr(field(fields, "per_stream", what)?, what)?
            .iter()
            .map(|v| dec_stream_summary(v, what))
            .collect::<Result<_, _>>()?,
        wave_makespans: dec_u64_arr(field(fields, "wave_makespans", what)?, what)?,
        makespan: dec_u64(field(fields, "makespan", what)?, what)?,
        sequential_baseline: dec_u64(field(fields, "sequential_baseline", what)?, what)?,
        predicted_conflicts_milli: dec_u64(
            field(fields, "predicted_conflicts_milli", what)?,
            what,
        )?,
        actual_conflicts: dec_u64(field(fields, "actual_conflicts", what)?, what)?,
    })
}

// ---------------------------------------------------------------------
// ConfigError
// ---------------------------------------------------------------------

fn enc_config_error(e: &ConfigError) -> Value {
    match e {
        ConfigError::NotPowerOfTwo { what, value } => tag(
            "not_power_of_two",
            obj(vec![
                ("what", Value::Str((*what).to_string())),
                ("value", Value::UInt(*value)),
            ]),
        ),
        ConfigError::OutOfRange {
            what,
            value,
            constraint,
        } => tag(
            "out_of_range",
            obj(vec![
                ("what", Value::Str((*what).to_string())),
                ("value", Value::UInt(*value)),
                ("constraint", Value::Str((*constraint).to_string())),
            ]),
        ),
        ConfigError::ZeroStride => Value::Str("zero_stride".to_string()),
        ConfigError::SingularMatrix => Value::Str("singular_matrix".to_string()),
        ConfigError::AddressOverflow => Value::Str("address_overflow".to_string()),
        ConfigError::SpecSyntax { spec, reason } => tag(
            "spec_syntax",
            obj(vec![
                ("spec", Value::Str(spec.clone())),
                ("reason", Value::Str(reason.clone())),
            ]),
        ),
        ConfigError::UnknownMap { name, registered } => tag(
            "unknown_map",
            obj(vec![
                ("name", Value::Str(name.clone())),
                (
                    "registered",
                    Value::Arr(registered.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
            ]),
        ),
        ConfigError::MissingKey { map, key } => tag(
            "missing_key",
            obj(vec![
                ("map", Value::Str(map.clone())),
                ("key", Value::Str((*key).to_string())),
            ]),
        ),
        ConfigError::UnknownKey { map, key, accepted } => tag(
            "unknown_key",
            obj(vec![
                ("map", Value::Str(map.clone())),
                ("key", Value::Str(key.clone())),
                (
                    "accepted",
                    Value::Arr(
                        accepted
                            .iter()
                            .map(|s| Value::Str((*s).to_string()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ConfigError::DuplicateKey { key } => {
            tag("duplicate_key", obj(vec![("key", Value::Str(key.clone()))]))
        }
        ConfigError::InvalidValue {
            key,
            value,
            expected,
        } => tag(
            "invalid_value",
            obj(vec![
                ("key", Value::Str(key.clone())),
                ("value", Value::Str(value.clone())),
                ("expected", Value::Str((*expected).to_string())),
            ]),
        ),
        ConfigError::MatrixFile { path, reason } => tag(
            "matrix_file",
            obj(vec![
                ("path", Value::Str(path.clone())),
                ("reason", Value::Str(reason.clone())),
            ]),
        ),
        ConfigError::DuplicateMap { name } => tag(
            "duplicate_map",
            obj(vec![("name", Value::Str(name.clone()))]),
        ),
    }
}

fn dec_config_error(value: &Value, what: &'static str) -> Result<ConfigError, DecodeError> {
    match as_tagged(value, what)? {
        ("zero_stride", None) => Ok(ConfigError::ZeroStride),
        ("singular_matrix", None) => Ok(ConfigError::SingularMatrix),
        ("address_overflow", None) => Ok(ConfigError::AddressOverflow),
        ("not_power_of_two", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::NotPowerOfTwo {
                what: intern_str(&dec_string(field(fields, "what", what)?, what)?),
                value: dec_u64(field(fields, "value", what)?, what)?,
            })
        }
        ("out_of_range", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::OutOfRange {
                what: intern_str(&dec_string(field(fields, "what", what)?, what)?),
                value: dec_u64(field(fields, "value", what)?, what)?,
                constraint: intern_str(&dec_string(field(fields, "constraint", what)?, what)?),
            })
        }
        ("spec_syntax", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::SpecSyntax {
                spec: dec_string(field(fields, "spec", what)?, what)?,
                reason: dec_string(field(fields, "reason", what)?, what)?,
            })
        }
        ("unknown_map", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::UnknownMap {
                name: dec_string(field(fields, "name", what)?, what)?,
                registered: as_arr(field(fields, "registered", what)?, what)?
                    .iter()
                    .map(|v| dec_string(v, what))
                    .collect::<Result<_, _>>()?,
            })
        }
        ("missing_key", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::MissingKey {
                map: dec_string(field(fields, "map", what)?, what)?,
                key: intern_str(&dec_string(field(fields, "key", what)?, what)?),
            })
        }
        ("unknown_key", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            let accepted: Vec<&'static str> = as_arr(field(fields, "accepted", what)?, what)?
                .iter()
                .map(|v| dec_string(v, what).map(|s| intern_str(&s)))
                .collect::<Result<_, _>>()?;
            Ok(ConfigError::UnknownKey {
                map: dec_string(field(fields, "map", what)?, what)?,
                key: dec_string(field(fields, "key", what)?, what)?,
                accepted: intern_slice(accepted),
            })
        }
        ("duplicate_key", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::DuplicateKey {
                key: dec_string(field(fields, "key", what)?, what)?,
            })
        }
        ("invalid_value", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::InvalidValue {
                key: dec_string(field(fields, "key", what)?, what)?,
                value: dec_string(field(fields, "value", what)?, what)?,
                expected: intern_str(&dec_string(field(fields, "expected", what)?, what)?),
            })
        }
        ("matrix_file", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::MatrixFile {
                path: dec_string(field(fields, "path", what)?, what)?,
                reason: dec_string(field(fields, "reason", what)?, what)?,
            })
        }
        ("duplicate_map", Some(inner)) => {
            let fields = as_obj(inner, what)?;
            Ok(ConfigError::DuplicateMap {
                name: dec_string(field(fields, "name", what)?, what)?,
            })
        }
        (other, _) => Err(schema(what, format!("unknown config error `{other}`"))),
    }
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

fn enc_cache_stats(c: &CacheStats) -> Value {
    obj(vec![
        ("hits", Value::UInt(c.hits)),
        ("misses", Value::UInt(c.misses)),
        ("evictions", Value::UInt(c.evictions)),
        ("bypasses", Value::UInt(c.bypasses)),
        ("invalidations", Value::UInt(c.invalidations)),
        ("entries", Value::UInt(c.entries as u64)),
        ("capacity", Value::UInt(c.capacity as u64)),
    ])
}

fn dec_cache_stats(value: &Value, what: &'static str) -> Result<CacheStats, DecodeError> {
    let fields = as_obj(value, what)?;
    Ok(CacheStats {
        hits: dec_u64(field(fields, "hits", what)?, what)?,
        misses: dec_u64(field(fields, "misses", what)?, what)?,
        evictions: dec_u64(field(fields, "evictions", what)?, what)?,
        bypasses: dec_u64(field(fields, "bypasses", what)?, what)?,
        invalidations: dec_u64(field(fields, "invalidations", what)?, what)?,
        entries: dec_usize(field(fields, "entries", what)?, what)?,
        capacity: dec_usize(field(fields, "capacity", what)?, what)?,
    })
}

fn service_stats_to_value(s: &ServiceStats) -> Value {
    obj(vec![
        ("queue_depth", Value::UInt(s.queue_depth as u64)),
        ("in_flight", Value::UInt(s.in_flight as u64)),
        (
            "cache",
            match &s.cache {
                Some(c) => enc_cache_stats(c),
                None => Value::Null,
            },
        ),
        ("retries", Value::UInt(s.retries)),
        ("restarts", Value::UInt(s.restarts)),
        ("deadline_exceeded", Value::UInt(s.deadline_exceeded)),
        ("degraded", Value::UInt(s.degraded)),
        ("faults_injected", Value::UInt(s.faults_injected)),
        ("scheduler_batches", Value::UInt(s.scheduler_batches)),
        ("scheduler_batched", Value::UInt(s.scheduler_batched)),
        (
            "scheduler_fifo_fallbacks",
            Value::UInt(s.scheduler_fifo_fallbacks),
        ),
        (
            "scheduler_window_occupancy",
            Value::UInt(s.scheduler_window_occupancy as u64),
        ),
        (
            "scheduler_predicted_conflicts_milli",
            Value::UInt(s.scheduler_predicted_conflicts_milli),
        ),
        (
            "scheduler_actual_conflicts",
            Value::UInt(s.scheduler_actual_conflicts),
        ),
        ("wire_connections", Value::UInt(s.wire_connections)),
        ("wire_rejections", Value::UInt(s.wire_rejections)),
        ("wire_in_flight", Value::UInt(s.wire_in_flight as u64)),
    ])
}

fn service_stats_from_value(value: &Value) -> Result<ServiceStats, DecodeError> {
    const WHAT: &str = "ServiceStats";
    let fields = as_obj(value, WHAT)?;
    Ok(ServiceStats {
        queue_depth: dec_usize(field(fields, "queue_depth", WHAT)?, WHAT)?,
        in_flight: dec_usize(field(fields, "in_flight", WHAT)?, WHAT)?,
        cache: match opt_field(fields, "cache") {
            Some(v) => Some(dec_cache_stats(v, WHAT)?),
            None => None,
        },
        retries: dec_u64(field(fields, "retries", WHAT)?, WHAT)?,
        restarts: dec_u64(field(fields, "restarts", WHAT)?, WHAT)?,
        deadline_exceeded: dec_u64(field(fields, "deadline_exceeded", WHAT)?, WHAT)?,
        degraded: dec_u64(field(fields, "degraded", WHAT)?, WHAT)?,
        faults_injected: dec_u64(field(fields, "faults_injected", WHAT)?, WHAT)?,
        scheduler_batches: dec_u64(field(fields, "scheduler_batches", WHAT)?, WHAT)?,
        scheduler_batched: dec_u64(field(fields, "scheduler_batched", WHAT)?, WHAT)?,
        scheduler_fifo_fallbacks: dec_u64(field(fields, "scheduler_fifo_fallbacks", WHAT)?, WHAT)?,
        scheduler_window_occupancy: dec_usize(
            field(fields, "scheduler_window_occupancy", WHAT)?,
            WHAT,
        )?,
        scheduler_predicted_conflicts_milli: dec_u64(
            field(fields, "scheduler_predicted_conflicts_milli", WHAT)?,
            WHAT,
        )?,
        scheduler_actual_conflicts: dec_u64(
            field(fields, "scheduler_actual_conflicts", WHAT)?,
            WHAT,
        )?,
        wire_connections: dec_u64(field(fields, "wire_connections", WHAT)?, WHAT)?,
        wire_rejections: dec_u64(field(fields, "wire_rejections", WHAT)?, WHAT)?,
        wire_in_flight: dec_usize(field(fields, "wire_in_flight", WHAT)?, WHAT)?,
    })
}

// ---------------------------------------------------------------------
// Request / Response / ServeError
// ---------------------------------------------------------------------

fn request_to_value(r: &Request) -> Value {
    match r {
        Request::Measure {
            spec,
            vec,
            strategy,
        } => tag(
            "measure",
            obj(vec![
                ("spec", Value::Str(spec.clone())),
                ("vec", enc_vector_spec(vec)),
                ("strategy", enc_strategy(*strategy)),
            ]),
        ),
        Request::MeasureBatch { spec, accesses } => tag(
            "measure_batch",
            obj(vec![
                ("spec", Value::Str(spec.clone())),
                (
                    "accesses",
                    Value::Arr(
                        accesses
                            .iter()
                            .map(|(v, s)| {
                                obj(vec![
                                    ("vec", enc_vector_spec(v)),
                                    ("strategy", enc_strategy(*s)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        Request::FamilySweep {
            spec,
            len,
            max_x,
            sigma,
        } => tag(
            "family_sweep",
            obj(vec![
                ("spec", Value::Str(spec.clone())),
                ("len", Value::UInt(*len)),
                ("max_x", Value::UInt(u64::from(*max_x))),
                ("sigma", enc_i64(*sigma)),
            ]),
        ),
        Request::Efficiency {
            spec,
            strategy,
            len,
            estimator,
            seed,
        } => tag(
            "efficiency",
            obj(vec![
                ("spec", Value::Str(spec.clone())),
                ("strategy", enc_strategy(*strategy)),
                ("len", Value::UInt(*len)),
                ("estimator", enc_estimator(*estimator)),
                ("seed", Value::UInt(*seed)),
            ]),
        ),
        Request::MultiStream {
            spec,
            streams,
            strategy,
            policy,
            schedule,
        } => tag(
            "multi_stream",
            obj(vec![
                ("spec", Value::Str(spec.clone())),
                (
                    "streams",
                    Value::Arr(streams.iter().map(enc_vector_spec).collect()),
                ),
                ("strategy", enc_strategy(*strategy)),
                ("policy", enc_policy(*policy)),
                ("schedule", enc_schedule(*schedule)),
            ]),
        ),
    }
}

fn request_from_value(value: &Value) -> Result<Request, DecodeError> {
    const WHAT: &str = "Request";
    match as_tagged(value, WHAT)? {
        ("measure", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(Request::Measure {
                spec: dec_string(field(fields, "spec", WHAT)?, WHAT)?,
                vec: dec_vector_spec(field(fields, "vec", WHAT)?, WHAT)?,
                strategy: dec_strategy(field(fields, "strategy", WHAT)?, WHAT)?,
            })
        }
        ("measure_batch", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            let accesses = as_arr(field(fields, "accesses", WHAT)?, WHAT)?
                .iter()
                .map(|v| {
                    let pair = as_obj(v, WHAT)?;
                    Ok((
                        dec_vector_spec(field(pair, "vec", WHAT)?, WHAT)?,
                        dec_strategy(field(pair, "strategy", WHAT)?, WHAT)?,
                    ))
                })
                .collect::<Result<_, DecodeError>>()?;
            Ok(Request::MeasureBatch {
                spec: dec_string(field(fields, "spec", WHAT)?, WHAT)?,
                accesses,
            })
        }
        ("family_sweep", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(Request::FamilySweep {
                spec: dec_string(field(fields, "spec", WHAT)?, WHAT)?,
                len: dec_u64(field(fields, "len", WHAT)?, WHAT)?,
                max_x: dec_u32(field(fields, "max_x", WHAT)?, WHAT)?,
                sigma: dec_i64(field(fields, "sigma", WHAT)?, WHAT)?,
            })
        }
        ("efficiency", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(Request::Efficiency {
                spec: dec_string(field(fields, "spec", WHAT)?, WHAT)?,
                strategy: dec_strategy(field(fields, "strategy", WHAT)?, WHAT)?,
                len: dec_u64(field(fields, "len", WHAT)?, WHAT)?,
                estimator: dec_estimator(field(fields, "estimator", WHAT)?, WHAT)?,
                seed: dec_u64(field(fields, "seed", WHAT)?, WHAT)?,
            })
        }
        ("multi_stream", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(Request::MultiStream {
                spec: dec_string(field(fields, "spec", WHAT)?, WHAT)?,
                streams: as_arr(field(fields, "streams", WHAT)?, WHAT)?
                    .iter()
                    .map(|v| dec_vector_spec(v, WHAT))
                    .collect::<Result<_, _>>()?,
                strategy: dec_strategy(field(fields, "strategy", WHAT)?, WHAT)?,
                policy: dec_policy(field(fields, "policy", WHAT)?, WHAT)?,
                schedule: dec_schedule(field(fields, "schedule", WHAT)?, WHAT)?,
            })
        }
        (other, _) => Err(schema(WHAT, format!("unknown request `{other}`"))),
    }
}

fn response_to_value(r: &Response) -> Value {
    match r {
        Response::Measured(stats) => tag("measured", enc_opt_access_stats(stats)),
        Response::Batch(items) => tag(
            "batch",
            Value::Arr(items.iter().map(enc_opt_access_stats).collect()),
        ),
        Response::FamilySweep(points) => tag(
            "family_sweep",
            Value::Arr(points.iter().map(enc_family_point).collect()),
        ),
        Response::Efficiency(x) => tag("efficiency", enc_f64(*x)),
        Response::MultiStream(outcome) => tag("multi_stream", enc_multi_stream_outcome(outcome)),
        Response::Degraded { response, exact } => tag(
            "degraded",
            obj(vec![
                ("response", response_to_value(response)),
                ("exact", Value::Bool(*exact)),
            ]),
        ),
    }
}

fn response_from_value(value: &Value) -> Result<Response, DecodeError> {
    const WHAT: &str = "Response";
    match as_tagged(value, WHAT)? {
        ("measured", Some(inner)) => Ok(Response::Measured(dec_opt_access_stats(inner, WHAT)?)),
        ("batch", Some(inner)) => Ok(Response::Batch(
            as_arr(inner, WHAT)?
                .iter()
                .map(|v| dec_opt_access_stats(v, WHAT))
                .collect::<Result<_, _>>()?,
        )),
        ("family_sweep", Some(inner)) => Ok(Response::FamilySweep(
            as_arr(inner, WHAT)?
                .iter()
                .map(|v| dec_family_point(v, WHAT))
                .collect::<Result<_, _>>()?,
        )),
        ("efficiency", Some(inner)) => Ok(Response::Efficiency(dec_f64(inner, WHAT)?)),
        ("multi_stream", Some(inner)) => Ok(Response::MultiStream(dec_multi_stream_outcome(
            inner, WHAT,
        )?)),
        ("degraded", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(Response::Degraded {
                response: Box::new(response_from_value(field(fields, "response", WHAT)?)?),
                exact: dec_bool(field(fields, "exact", WHAT)?, WHAT)?,
            })
        }
        (other, _) => Err(schema(WHAT, format!("unknown response `{other}`"))),
    }
}

fn serve_error_to_value(e: &ServeError) -> Value {
    match e {
        ServeError::Overloaded {
            queue_depth,
            capacity,
        } => tag(
            "overloaded",
            obj(vec![
                ("queue_depth", Value::UInt(*queue_depth as u64)),
                ("capacity", Value::UInt(*capacity as u64)),
            ]),
        ),
        ServeError::ShuttingDown => Value::Str("shutting_down".to_string()),
        ServeError::Spec(e) => tag("spec", enc_config_error(e)),
        ServeError::Request(e) => tag("request", enc_config_error(e)),
        ServeError::DeadlineExceeded { budget } => tag("deadline_exceeded", enc_duration(*budget)),
        ServeError::WorkerPanicked { attempts, message } => tag(
            "worker_panicked",
            obj(vec![
                ("attempts", Value::UInt(u64::from(*attempts))),
                ("message", Value::Str(message.clone())),
            ]),
        ),
    }
}

fn serve_error_from_value(value: &Value) -> Result<ServeError, DecodeError> {
    const WHAT: &str = "ServeError";
    match as_tagged(value, WHAT)? {
        ("shutting_down", None) => Ok(ServeError::ShuttingDown),
        ("overloaded", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ServeError::Overloaded {
                queue_depth: dec_usize(field(fields, "queue_depth", WHAT)?, WHAT)?,
                capacity: dec_usize(field(fields, "capacity", WHAT)?, WHAT)?,
            })
        }
        ("spec", Some(inner)) => Ok(ServeError::Spec(dec_config_error(inner, WHAT)?)),
        ("request", Some(inner)) => Ok(ServeError::Request(dec_config_error(inner, WHAT)?)),
        ("deadline_exceeded", Some(inner)) => Ok(ServeError::DeadlineExceeded {
            budget: dec_duration(inner, WHAT)?,
        }),
        ("worker_panicked", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ServeError::WorkerPanicked {
                attempts: dec_u32(field(fields, "attempts", WHAT)?, WHAT)?,
                message: dec_string(field(fields, "message", WHAT)?, WHAT)?,
            })
        }
        (other, _) => Err(schema(WHAT, format!("unknown serve error `{other}`"))),
    }
}

fn serve_result_to_value(r: &ServeResult) -> Value {
    match r {
        Ok(response) => tag("ok", response_to_value(response)),
        Err(e) => tag("err", serve_error_to_value(e)),
    }
}

fn serve_result_from_value(value: &Value) -> Result<ServeResult, DecodeError> {
    const WHAT: &str = "ServeResult";
    match as_tagged(value, WHAT)? {
        ("ok", Some(inner)) => Ok(Ok(response_from_value(inner)?)),
        ("err", Some(inner)) => Ok(Err(serve_error_from_value(inner)?)),
        (other, _) => Err(schema(WHAT, format!("expected ok/err, got `{other}`"))),
    }
}

// ---------------------------------------------------------------------
// Public string-level codecs
// ---------------------------------------------------------------------

/// Encodes a [`Request`] as a JSON string.
#[must_use]
pub fn encode_request(r: &Request) -> String {
    encode(&request_to_value(r))
}

/// Decodes a [`Request`] from a JSON string.
pub fn decode_request(text: &str) -> Result<Request, DecodeError> {
    request_from_value(&parse(text)?)
}

/// Encodes a [`Response`] as a JSON string.
#[must_use]
pub fn encode_response(r: &Response) -> String {
    encode(&response_to_value(r))
}

/// Decodes a [`Response`] from a JSON string.
pub fn decode_response(text: &str) -> Result<Response, DecodeError> {
    response_from_value(&parse(text)?)
}

/// Encodes a [`ServeError`] as a JSON string.
#[must_use]
pub fn encode_serve_error(e: &ServeError) -> String {
    encode(&serve_error_to_value(e))
}

/// Decodes a [`ServeError`] from a JSON string.
pub fn decode_serve_error(text: &str) -> Result<ServeError, DecodeError> {
    serve_error_from_value(&parse(text)?)
}

/// Encodes a `ServeResult` (`{"ok": …}` / `{"err": …}`) as a JSON
/// string.
#[must_use]
pub fn encode_serve_result(r: &ServeResult) -> String {
    encode(&serve_result_to_value(r))
}

/// Decodes a `ServeResult` from a JSON string.
pub fn decode_serve_result(text: &str) -> Result<ServeResult, DecodeError> {
    serve_result_from_value(&parse(text)?)
}

/// Encodes a [`ServiceStats`] snapshot as a JSON string.
#[must_use]
pub fn encode_service_stats(s: &ServiceStats) -> String {
    encode(&service_stats_to_value(s))
}

/// Decodes a [`ServiceStats`] snapshot from a JSON string.
pub fn decode_service_stats(text: &str) -> Result<ServiceStats, DecodeError> {
    service_stats_from_value(&parse(text)?)
}

// ---------------------------------------------------------------------
// Frame envelopes
// ---------------------------------------------------------------------

/// A client → server frame payload.
///
/// The first frame on a connection must be [`ClientFrame::Hello`];
/// afterwards the client may pipeline any number of submissions and
/// stats probes. `id` values correlate responses — the server may
/// answer out of submission order, so ids must be unique per
/// connection while in flight.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Opens the connection: the protocol version the client speaks.
    Hello {
        /// Must equal [`crate::frame::PROTOCOL_VERSION`].
        proto: u32,
    },
    /// Submit one request.
    Submit {
        /// Correlation id, echoed in the matching [`ServerFrame::Result`].
        id: u64,
        /// The request, exactly as `Service::submit` takes it.
        request: Request,
        /// Optional deadline budget, forwarded to
        /// `Service::submit_with_budget`.
        budget: Option<Duration>,
    },
    /// Ask for a [`ServiceStats`] snapshot (wire counters filled in).
    Stats {
        /// Correlation id, echoed in the matching [`ServerFrame::Stats`].
        id: u64,
    },
}

/// A server → client frame payload.
#[derive(Debug)]
pub enum ServerFrame {
    /// Answers the client hello.
    Hello {
        /// The protocol version the server speaks.
        proto: u32,
        /// Per-connection in-flight cap the server will enforce.
        max_in_flight: u32,
    },
    /// One request's outcome — service errors (`Overloaded`,
    /// `ShuttingDown`, …) travel inside, exactly as the in-process
    /// API returns them.
    Result {
        /// The id of the [`ClientFrame::Submit`] this answers.
        id: u64,
        /// The outcome, bit-identical to `Service::submit(...).wait()`.
        result: ServeResult,
    },
    /// A [`ServiceStats`] snapshot.
    Stats {
        /// The id of the [`ClientFrame::Stats`] this answers.
        id: u64,
        /// The snapshot, wire counters filled in by the server.
        stats: ServiceStats,
    },
    /// A protocol violation the server cannot recover from (bad hello,
    /// malformed frame): sent once, then the connection closes.
    Fatal {
        /// What the server rejected.
        reason: String,
    },
}

/// Encodes a [`ClientFrame`] as a JSON string.
#[must_use]
pub fn encode_client_frame(f: &ClientFrame) -> String {
    let value = match f {
        ClientFrame::Hello { proto } => tag(
            "hello",
            obj(vec![("proto", Value::UInt(u64::from(*proto)))]),
        ),
        ClientFrame::Submit {
            id,
            request,
            budget,
        } => {
            let mut fields = vec![
                ("id", Value::UInt(*id)),
                ("request", request_to_value(request)),
            ];
            if let Some(budget) = budget {
                fields.push(("budget", enc_duration(*budget)));
            }
            tag("submit", obj(fields))
        }
        ClientFrame::Stats { id } => tag("stats", obj(vec![("id", Value::UInt(*id))])),
    };
    encode(&value)
}

/// Decodes a [`ClientFrame`] from a JSON string.
pub fn decode_client_frame(text: &str) -> Result<ClientFrame, DecodeError> {
    const WHAT: &str = "ClientFrame";
    let value = parse(text)?;
    match as_tagged(&value, WHAT)? {
        ("hello", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ClientFrame::Hello {
                proto: dec_u32(field(fields, "proto", WHAT)?, WHAT)?,
            })
        }
        ("submit", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ClientFrame::Submit {
                id: dec_u64(field(fields, "id", WHAT)?, WHAT)?,
                request: request_from_value(field(fields, "request", WHAT)?)?,
                budget: match opt_field(fields, "budget") {
                    Some(v) => Some(dec_duration(v, WHAT)?),
                    None => None,
                },
            })
        }
        ("stats", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ClientFrame::Stats {
                id: dec_u64(field(fields, "id", WHAT)?, WHAT)?,
            })
        }
        (other, _) => Err(schema(WHAT, format!("unknown client frame `{other}`"))),
    }
}

/// Encodes a [`ServerFrame`] as a JSON string.
#[must_use]
pub fn encode_server_frame(f: &ServerFrame) -> String {
    let value = match f {
        ServerFrame::Hello {
            proto,
            max_in_flight,
        } => tag(
            "hello",
            obj(vec![
                ("proto", Value::UInt(u64::from(*proto))),
                ("max_in_flight", Value::UInt(u64::from(*max_in_flight))),
            ]),
        ),
        ServerFrame::Result { id, result } => tag(
            "result",
            obj(vec![
                ("id", Value::UInt(*id)),
                ("result", serve_result_to_value(result)),
            ]),
        ),
        ServerFrame::Stats { id, stats } => tag(
            "stats",
            obj(vec![
                ("id", Value::UInt(*id)),
                ("stats", service_stats_to_value(stats)),
            ]),
        ),
        ServerFrame::Fatal { reason } => {
            tag("fatal", obj(vec![("reason", Value::Str(reason.clone()))]))
        }
    };
    encode(&value)
}

/// Decodes a [`ServerFrame`] from a JSON string.
pub fn decode_server_frame(text: &str) -> Result<ServerFrame, DecodeError> {
    const WHAT: &str = "ServerFrame";
    let value = parse(text)?;
    match as_tagged(&value, WHAT)? {
        ("hello", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ServerFrame::Hello {
                proto: dec_u32(field(fields, "proto", WHAT)?, WHAT)?,
                max_in_flight: dec_u32(field(fields, "max_in_flight", WHAT)?, WHAT)?,
            })
        }
        ("result", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ServerFrame::Result {
                id: dec_u64(field(fields, "id", WHAT)?, WHAT)?,
                result: serve_result_from_value(field(fields, "result", WHAT)?)?,
            })
        }
        ("stats", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ServerFrame::Stats {
                id: dec_u64(field(fields, "id", WHAT)?, WHAT)?,
                stats: service_stats_from_value(field(fields, "stats", WHAT)?)?,
            })
        }
        ("fatal", Some(inner)) => {
            let fields = as_obj(inner, WHAT)?;
            Ok(ServerFrame::Fatal {
                reason: dec_string(field(fields, "reason", WHAT)?, WHAT)?,
            })
        }
        (other, _) => Err(schema(WHAT, format!("unknown server frame `{other}`"))),
    }
}
