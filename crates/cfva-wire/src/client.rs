//! The calling side of the wire: a blocking client mirroring the
//! in-process [`Service`](cfva_serve::service::Service) surface.
//!
//! [`WireClient::submit`] returns a [`WireTicket`] the way
//! `Service::submit` returns a `ServeTicket`; [`WireClient::wait`]
//! blocks until *that* ticket's result arrives. Because the server
//! reaps tickets in completion order, results may arrive out of
//! submission order — the client stashes early arrivals by
//! `request_id` and hands each one to whichever `wait` asked for it,
//! so callers can pipeline submissions and collect results in any
//! order over one connection.
//!
//! The client is deliberately single-threaded (`&mut self`
//! everywhere, no locks): one connection, one caller. Fan-out across
//! threads wants one client per thread — connections are cheap and
//! the server's admission caps are per-connection anyway.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cfva_serve::api::{Request, ServeResult};
use cfva_serve::service::ServiceStats;

use crate::frame::{self, PROTOCOL_VERSION};
use crate::json::{self, ClientFrame, ServerFrame};
use crate::WireError;

/// A handle for one in-flight wire request, redeemed with
/// [`WireClient::wait`]. Dropping it without waiting abandons the
/// response (the client discards it when it arrives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireTicket {
    id: u64,
}

impl WireTicket {
    /// The `request_id` correlating this ticket with its response
    /// frame.
    #[must_use]
    pub fn request_id(&self) -> u64 {
        self.id
    }
}

/// A blocking TCP client for a [`server::WireServer`](crate::server::WireServer).
#[derive(Debug)]
pub struct WireClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    /// The per-connection in-flight cap the server announced in its
    /// hello.
    max_in_flight: u32,
    /// Results that arrived while `wait` was looking for a different
    /// id, keyed by `request_id`.
    stash: HashMap<u64, ServeResult>,
}

impl WireClient {
    /// Connects and performs the versioned hello exchange.
    ///
    /// Fails with [`WireError::Protocol`] if the server's first frame
    /// is not a hello (e.g. a `Fatal` refusing our protocol version).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<WireClient, WireError> {
        let writer = TcpStream::connect(addr).map_err(frame::FrameError::Io)?;
        // Frames go out as a length word then a payload; TCP_NODELAY
        // keeps that write-write-read pattern from tripping Nagle
        // against the server's delayed ACK. Best effort.
        let _ = writer.set_nodelay(true);
        let read_half = writer.try_clone().map_err(frame::FrameError::Io)?;
        let mut client = WireClient {
            writer,
            reader: BufReader::new(read_half),
            next_id: 0,
            max_in_flight: 0,
            stash: HashMap::new(),
        };
        client.send(&ClientFrame::Hello {
            proto: PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            ServerFrame::Hello {
                proto,
                max_in_flight,
            } => {
                if proto != PROTOCOL_VERSION {
                    return Err(WireError::Protocol {
                        reason: format!(
                            "server answered protocol version {proto}, expected {PROTOCOL_VERSION}"
                        ),
                    });
                }
                client.max_in_flight = max_in_flight;
                Ok(client)
            }
            ServerFrame::Fatal { reason } => Err(WireError::Protocol { reason }),
            _ => Err(WireError::Protocol {
                reason: "server's first frame was not a hello".to_string(),
            }),
        }
    }

    /// The per-connection in-flight cap the server announced.
    /// Submissions beyond it come back as typed
    /// [`ServeError::Overloaded`](cfva_serve::api::ServeError).
    #[must_use]
    pub fn max_in_flight(&self) -> u32 {
        self.max_in_flight
    }

    /// Submits a request; mirrors
    /// [`Service::submit`](cfva_serve::service::Service::submit).
    ///
    /// An `Err` here is a *transport* failure. Service-level
    /// rejections (`Overloaded`, `ShuttingDown`, …) arrive as the
    /// ticket's result from [`wait`](WireClient::wait), exactly as
    /// they would in-process.
    #[must_use = "a dropped ticket abandons its response"]
    pub fn submit(&mut self, request: Request) -> Result<WireTicket, WireError> {
        self.submit_inner(request, None)
    }

    /// Submits a request with a deadline budget; mirrors
    /// [`Service::submit_with_budget`](cfva_serve::service::Service::submit_with_budget).
    #[must_use = "a dropped ticket abandons its response"]
    pub fn submit_with_budget(
        &mut self,
        request: Request,
        budget: Duration,
    ) -> Result<WireTicket, WireError> {
        self.submit_inner(request, Some(budget))
    }

    fn submit_inner(
        &mut self,
        request: Request,
        budget: Option<Duration>,
    ) -> Result<WireTicket, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&ClientFrame::Submit {
            id,
            request,
            budget,
        })?;
        Ok(WireTicket { id })
    }

    /// Blocks until `ticket`'s result arrives; mirrors
    /// [`ServeTicket::wait`](cfva_serve::service::ServeTicket::wait).
    ///
    /// Results for *other* tickets read along the way are stashed and
    /// handed out by their own `wait` calls, so tickets may be
    /// redeemed in any order.
    pub fn wait(&mut self, ticket: WireTicket) -> Result<ServeResult, WireError> {
        loop {
            if let Some(result) = self.stash.remove(&ticket.id) {
                return Ok(result);
            }
            match self.recv()? {
                ServerFrame::Result { id, result } => {
                    self.stash.insert(id, result);
                }
                ServerFrame::Stats { .. } => {
                    // A stale stats reply nobody is waiting on.
                }
                ServerFrame::Fatal { reason } => {
                    return Err(WireError::Protocol { reason });
                }
                ServerFrame::Hello { .. } => {
                    return Err(WireError::Protocol {
                        reason: "unexpected mid-stream hello from server".to_string(),
                    });
                }
            }
        }
    }

    /// Fetches the server's [`ServiceStats`] snapshot, `wire_*`
    /// counters included; mirrors
    /// [`Service::stats`](cfva_serve::service::Service::stats).
    pub fn stats(&mut self) -> Result<ServiceStats, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&ClientFrame::Stats { id })?;
        loop {
            match self.recv()? {
                ServerFrame::Stats { id: got, stats } if got == id => return Ok(stats),
                ServerFrame::Stats { .. } => {}
                ServerFrame::Result { id, result } => {
                    self.stash.insert(id, result);
                }
                ServerFrame::Fatal { reason } => {
                    return Err(WireError::Protocol { reason });
                }
                ServerFrame::Hello { .. } => {
                    return Err(WireError::Protocol {
                        reason: "unexpected mid-stream hello from server".to_string(),
                    });
                }
            }
        }
    }

    fn send(&mut self, msg: &ClientFrame) -> Result<(), WireError> {
        let payload = json::encode_client_frame(msg);
        frame::write_frame(&mut self.writer, &payload)?;
        self.writer.flush().map_err(frame::FrameError::Io)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerFrame, WireError> {
        let text = frame::read_frame(&mut self.reader)?;
        Ok(json::decode_server_frame(&text)?)
    }
}
