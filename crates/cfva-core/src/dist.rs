//! Spatial and temporal distributions of a vector over the modules.
//!
//! Section 2 of the paper defines the analysis vocabulary reproduced
//! here:
//!
//! * the **spatial distribution** `SD` — how many elements of the vector
//!   land in each module ([`SpatialDistribution`]);
//! * **T-matched** — no module holds more than `L/T` elements, the
//!   necessary condition for a conflict-free access;
//! * the **temporal distribution** — the sequence of modules touched by
//!   the request stream ([`temporal_distribution`]);
//! * **conflict free** — every window of `T` consecutive requests
//!   touches `T` distinct modules ([`is_conflict_free`]);
//! * the **canonical temporal distribution** `CTP_x` — the module
//!   sequence of one period of the in-order access ([`ctp`]).

use crate::address::ModuleId;
use crate::mapping::ModuleMap;
use crate::vector::VectorSpec;

/// The spatial distribution `SD` of a vector: element counts per module.
///
/// # Examples
///
/// ```
/// use cfva_core::dist::SpatialDistribution;
/// use cfva_core::mapping::XorMatched;
/// use cfva_core::VectorSpec;
///
/// let map = XorMatched::new(3, 3)?;
/// let vec = VectorSpec::new(16, 12, 64)?; // stride 12, family x = 2
/// let sd = SpatialDistribution::compute(&map, &vec);
/// // 64 elements over 8 modules, 8 each: T-matched for T = 8.
/// assert!(sd.is_t_matched(8));
/// assert_eq!(sd.counts(), &[8, 8, 8, 8, 8, 8, 8, 8]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpatialDistribution {
    counts: Vec<u64>,
    len: u64,
}

impl SpatialDistribution {
    /// Computes the spatial distribution of `vec` under `map`.
    pub fn compute<M: ModuleMap + ?Sized>(map: &M, vec: &VectorSpec) -> Self {
        let mut counts = vec![0u64; map.module_count() as usize];
        for addr in vec.iter() {
            // cfva-lint: allow(L002, reason = "module_of returns an id < module_count by the ModuleMap contract, and counts is sized to module_count")
            counts[map.module_of(addr).get() as usize] += 1;
        }
        SpatialDistribution {
            counts,
            len: vec.len(),
        }
    }

    /// Element count per module, indexed by module number.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of elements (the vector length).
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the distribution is empty (zero-length vector).
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The paper's T-matched predicate: `SD(i) ≤ L/T` for every module
    /// `i`. A vector that is not T-matched cannot be accessed conflict
    /// free in any order.
    pub fn is_t_matched(&self, t_cycles: u64) -> bool {
        let bound = self.len / t_cycles;
        self.counts.iter().all(|&c| c <= bound)
    }

    /// Number of modules that hold at least one element.
    pub fn modules_visited(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The largest per-module element count.
    pub fn max_load(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Lower bound on the cycles needed to drain the busiest module:
    /// `max_load · T`. A conflict-free access achieves `L` issue cycles,
    /// which requires `max_load·T ≤ L` — T-matchedness again.
    pub fn min_busy_cycles(&self, t_cycles: u64) -> u64 {
        self.max_load() * t_cycles
    }
}

/// The temporal distribution: modules in request order, for an arbitrary
/// request order given as element indices.
///
/// `order[k]` is the element requested at step `k`; the result holds the
/// module of that element.
///
/// # Panics
///
/// Panics if any element index in `order` is out of range for `vec`.
pub fn temporal_distribution<M: ModuleMap + ?Sized>(
    map: &M,
    vec: &VectorSpec,
    order: &[u64],
) -> Vec<ModuleId> {
    order
        .iter()
        .map(|&e| map.module_of(vec.element_addr(e)))
        .collect()
}

/// The canonical temporal distribution of `vec`: modules in element
/// order.
pub fn canonical_temporal_distribution<M: ModuleMap + ?Sized>(
    map: &M,
    vec: &VectorSpec,
) -> Vec<ModuleId> {
    vec.iter().map(|a| map.module_of(a)).collect()
}

/// `CTP_x`: the canonical temporal distribution over one period of the
/// mapping (or over the whole vector if it is shorter than a period).
pub fn ctp<M: ModuleMap + ?Sized>(map: &M, vec: &VectorSpec) -> Vec<ModuleId> {
    let period = map.period(vec.family()).min(vec.len());
    (0..period)
        .map(|i| map.module_of(vec.element_addr(i)))
        .collect()
}

/// The paper's conflict-free condition on a temporal distribution: every
/// `t_cycles` consecutive requests go to `t_cycles` distinct modules.
///
/// This is exactly equivalent to "every element can be accessed the
/// cycle it is requested" for modules with an occupancy of `t_cycles`.
///
/// # Examples
///
/// ```
/// use cfva_core::dist::is_conflict_free;
/// use cfva_core::ModuleId;
///
/// let seq: Vec<ModuleId> = [0u64, 1, 2, 3, 0, 1, 2, 3].map(ModuleId::new).into();
/// assert!(is_conflict_free(&seq, 4));
/// assert!(!is_conflict_free(&seq, 5));
/// ```
pub fn is_conflict_free(temporal: &[ModuleId], t_cycles: u64) -> bool {
    first_conflict(temporal, t_cycles).is_none()
}

/// Returns the position of the first conflicting request: the first `k`
/// such that module `temporal[k]` was already requested within the
/// previous `t_cycles − 1` steps. `None` when conflict free.
pub fn first_conflict(temporal: &[ModuleId], t_cycles: u64) -> Option<usize> {
    let t = t_cycles as usize;
    for k in 0..temporal.len() {
        let lo = k.saturating_sub(t - 1);
        if temporal[lo..k].contains(&temporal[k]) {
            return Some(k);
        }
    }
    None
}

/// Counts conflicting requests in a temporal distribution: requests whose
/// module was already used within the previous `t_cycles − 1` requests.
pub fn conflict_count(temporal: &[ModuleId], t_cycles: u64) -> usize {
    let t = t_cycles as usize;
    (0..temporal.len())
        .filter(|&k| {
            let lo = k.saturating_sub(t - 1);
            temporal[lo..k].contains(&temporal[k])
        })
        .count()
}

/// The *return numbers* of a temporal distribution (Oed & Lange, the
/// paper's reference \[14\]): for each request, the distance back to the
/// previous request of the same module (`None` for first occurrences).
/// A distribution is conflict free for occupancy `T` exactly when every
/// return number is `≥ T`.
pub fn return_numbers(temporal: &[ModuleId]) -> Vec<Option<usize>> {
    let mut last_seen: std::collections::HashMap<ModuleId, usize> =
        std::collections::HashMap::new();
    temporal
        .iter()
        .enumerate()
        .map(|(k, m)| {
            let r = last_seen.get(m).map(|&prev| k - prev);
            last_seen.insert(*m, k);
            r
        })
        .collect()
}

/// The smallest return number of a temporal distribution — the
/// bottleneck metric: the access is conflict free for any occupancy
/// `T ≤ min_return_number`.
pub fn min_return_number(temporal: &[ModuleId]) -> Option<usize> {
    return_numbers(temporal).into_iter().flatten().min()
}

/// The *variability* of a temporal distribution (after Harper & Costa,
/// the paper's reference \[13\]): the ratio of distinct modules visited
/// within each window of `t_cycles` requests, averaged over all
/// windows. 1.0 ⇔ conflict free; `1/t_cycles` ⇔ fully serialised.
pub fn variability(temporal: &[ModuleId], t_cycles: u64) -> f64 {
    let t = (t_cycles as usize).min(temporal.len());
    if t == 0 || temporal.is_empty() {
        return 1.0;
    }
    let windows = temporal.windows(t);
    let mut total = 0.0;
    let mut count = 0u64;
    for w in windows {
        let distinct: std::collections::BTreeSet<&ModuleId> = w.iter().collect();
        total += distinct.len() as f64 / t as f64;
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        total / count as f64
    }
}

/// Empirically determines the period of the canonical module sequence:
/// the smallest power of two `p` such that the first `horizon` elements
/// satisfy `module[i + p] == module[i]`.
///
/// Used by tests to confirm the closed-form
/// [`ModuleMap::period`] values; `horizon` should be at least twice the
/// expected period.
pub fn empirical_period<M: ModuleMap + ?Sized>(
    map: &M,
    vec: &VectorSpec,
    horizon: u64,
) -> Option<u64> {
    let n = horizon.min(vec.len());
    let seq: Vec<ModuleId> = (0..n).map(|i| map.module_of(vec.element_addr(i))).collect();
    let mut p = 1u64;
    while p < n {
        // cfva-lint: allow(L002, reason = "i < n - p keeps both i and i + p below seq.len() == n")
        if (0..(n - p)).all(|i| seq[i as usize] == seq[(i + p) as usize]) {
            return Some(p);
        }
        p *= 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Interleaved, XorMatched, XorUnmatched};
    use crate::stride::StrideFamily;

    fn ids(v: &[u64]) -> Vec<ModuleId> {
        v.iter().copied().map(ModuleId::new).collect()
    }

    #[test]
    fn spatial_distribution_counts_elements() {
        let map = Interleaved::new(2).unwrap();
        let vec = VectorSpec::new(0, 1, 8).unwrap();
        let sd = SpatialDistribution::compute(&map, &vec);
        assert_eq!(sd.counts(), &[2, 2, 2, 2]);
        assert_eq!(sd.len(), 8);
        assert_eq!(sd.modules_visited(), 4);
        assert_eq!(sd.max_load(), 2);
    }

    #[test]
    fn spatial_distribution_of_clustered_stride() {
        // Stride 4 on 4 modules: all elements in one module.
        let map = Interleaved::new(2).unwrap();
        let vec = VectorSpec::new(0, 4, 8).unwrap();
        let sd = SpatialDistribution::compute(&map, &vec);
        assert_eq!(sd.counts(), &[8, 0, 0, 0]);
        assert!(!sd.is_t_matched(4));
        assert_eq!(sd.min_busy_cycles(4), 32);
    }

    #[test]
    fn t_matched_boundary() {
        let map = Interleaved::new(2).unwrap();
        // Stride 2 on 4 modules with T = 2: visits modules 0 and 2, each
        // L/2 elements: exactly T-matched.
        let vec = VectorSpec::new(0, 2, 8).unwrap();
        let sd = SpatialDistribution::compute(&map, &vec);
        assert!(sd.is_t_matched(2));
        assert!(!sd.is_t_matched(4));
    }

    #[test]
    fn paper_ctp_example() {
        // Section 3: m = t = 3, s = 3, stride 12, A1 = 16, L = 64.
        // Period = 16, CTP = 2,7,5,2,0,5,3,0,6,3,1,6,4,1,7,4.
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let got = ctp(&map, &vec);
        let want = ids(&[2, 7, 5, 2, 0, 5, 3, 0, 6, 3, 1, 6, 4, 1, 7, 4]);
        assert_eq!(got, want);
        // And as the paper says, in-order access is NOT conflict free...
        let full = canonical_temporal_distribution(&map, &vec);
        assert!(!is_conflict_free(&full, 8));
        // ...but the vector IS T-matched (x = 2 is in the window).
        let sd = SpatialDistribution::compute(&map, &vec);
        assert!(sd.is_t_matched(8));
    }

    #[test]
    fn ctp_repeats_over_the_vector() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let one_period = ctp(&map, &vec);
        let full = canonical_temporal_distribution(&map, &vec);
        for (i, m) in full.iter().enumerate() {
            assert_eq!(*m, one_period[i % one_period.len()], "position {i}");
        }
    }

    #[test]
    fn first_conflict_finds_earliest_violation() {
        let seq = ids(&[0, 1, 2, 0, 4, 5]);
        assert_eq!(first_conflict(&seq, 2), None);
        assert_eq!(first_conflict(&seq, 4), Some(3));
        assert_eq!(conflict_count(&seq, 4), 1);
    }

    #[test]
    fn conflict_free_window_edges() {
        // Same module twice exactly T apart is allowed (the module has
        // just become free).
        let seq = ids(&[0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(is_conflict_free(&seq, 4));
        // T+1 window catches it.
        assert!(!is_conflict_free(&seq, 5));
    }

    #[test]
    fn degenerate_t_one_never_conflicts() {
        let seq = ids(&[7, 7, 7, 7]);
        assert!(is_conflict_free(&seq, 1));
        assert_eq!(conflict_count(&seq, 1), 0);
    }

    #[test]
    fn empirical_period_matches_closed_form() {
        let map = XorMatched::new(2, 3).unwrap();
        for x in 0..6u32 {
            let stride = 3i64 << x;
            let vec = VectorSpec::new(5, stride, 256).unwrap();
            let expect = map.period(StrideFamily::new(x));
            let emp = empirical_period(&map, &vec, 128).unwrap();
            // The empirical period divides the closed form; for the XOR
            // map with generic base it equals it.
            assert_eq!(emp, expect.min(128), "x = {x}");
        }
    }

    #[test]
    fn empirical_period_unmatched() {
        let map = XorUnmatched::new(2, 2, 4).unwrap();
        // address_bits_used = 6 -> P_0 = 64.
        let vec = VectorSpec::new(3, 1, 256).unwrap();
        assert_eq!(empirical_period(&map, &vec, 256), Some(64));
    }

    #[test]
    fn temporal_distribution_follows_order() {
        let map = Interleaved::new(2).unwrap();
        let vec = VectorSpec::new(0, 1, 4).unwrap();
        let td = temporal_distribution(&map, &vec, &[3, 1, 2, 0]);
        assert_eq!(td, ids(&[3, 1, 2, 0]));
    }

    #[test]
    fn return_numbers_measure_reuse_distance() {
        let seq = ids(&[0, 1, 0, 2, 1, 0]);
        let rn = return_numbers(&seq);
        assert_eq!(rn, vec![None, None, Some(2), None, Some(3), Some(3)]);
        assert_eq!(min_return_number(&seq), Some(2));
        // Conflict free exactly for T <= 2.
        assert!(is_conflict_free(&seq, 2));
        assert!(!is_conflict_free(&seq, 3));
    }

    #[test]
    fn return_numbers_none_when_no_reuse() {
        let seq = ids(&[0, 1, 2, 3]);
        assert_eq!(min_return_number(&seq), None);
        assert!(return_numbers(&seq).iter().all(Option::is_none));
    }

    #[test]
    fn variability_bounds() {
        // Perfect rotation: variability 1.
        let good = ids(&[0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(variability(&good, 4), 1.0);
        // Single module: 1/T.
        let bad = ids(&[5, 5, 5, 5, 5, 5]);
        assert!((variability(&bad, 4) - 0.25).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(variability(&[], 4), 1.0);
        assert_eq!(variability(&good, 0), 1.0);
    }

    #[test]
    fn variability_tracks_conflict_freedom() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let canonical = canonical_temporal_distribution(&map, &vec);
        assert!(variability(&canonical, 8) < 1.0);
        let order = crate::order::replay_order(
            &map,
            &vec,
            &crate::order::SubseqStructure::for_matched(&map, vec.family()).unwrap(),
            crate::order::ReplayKey::Module,
        )
        .unwrap();
        let replayed = temporal_distribution(&map, &vec, &order);
        assert_eq!(variability(&replayed, 8), 1.0);
        assert!(min_return_number(&replayed).unwrap() >= 8);
    }
}
