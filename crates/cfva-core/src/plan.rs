//! Access plans: the fully resolved request stream of one vector access.
//!
//! An [`AccessPlan`] is what the memory-access module of the processor
//! actually executes: one entry per cycle, each naming the element
//! requested, its address, the module it lives in, and the vector
//! register slot the datum must be written to (always the element index
//! — out-of-order return is absorbed by a random-access register file,
//! paper Section 5D).
//!
//! A [`Planner`] builds plans from a mapping and a [`Strategy`].

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::dist;
use crate::error::PlanError;
use crate::mapping::{ModuleMap, XorMatched, XorUnmatched};
use crate::order::{self, ReplayKey, ReplayScratch, SubseqStructure};
use crate::vector::VectorSpec;
use crate::window::{MatchedWindow, ReplayKind, UnmatchedWindow};

/// One request of an access plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanEntry {
    element: u64,
    addr: Addr,
    module: ModuleId,
}

impl PlanEntry {
    /// Element index within the vector (also the register slot the
    /// returned datum is written to).
    pub const fn element(&self) -> u64 {
        self.element
    }

    /// Memory address of the element.
    pub const fn addr(&self) -> Addr {
        self.addr
    }

    /// Module the element lives in.
    pub const fn module(&self) -> ModuleId {
        self.module
    }

    /// Register slot the returned datum goes to (the element index).
    pub const fn register_slot(&self) -> u64 {
        self.element
    }
}

/// Reusable working storage carried inside an [`AccessPlan`]: the
/// element-order buffer, the element-indexed module table (filled by
/// one bulk [`ModuleMap::map_stride_into`] call per plan) and the
/// replay scratch, reused by [`Planner::plan_into`] so repeated
/// planning into the same plan performs no heap allocation after
/// warm-up.
#[derive(Debug, Clone, Default)]
struct PlanScratch {
    order: Vec<u64>,
    modules: Vec<ModuleId>,
    replay: ReplayScratch,
}

/// The resolved request stream of one vector access: entries in request
/// order, one per processor cycle (ignoring stalls).
///
/// A plan doubles as a reusable buffer: [`Planner::plan_into`] clears
/// and refills an existing plan in place, reusing both the entry
/// storage and internal planning scratch — the allocation-free hot path
/// of the batch execution engine. Equality and hashing consider only
/// the entries, never the scratch state.
#[derive(Default)]
pub struct AccessPlan {
    entries: Vec<PlanEntry>,
    scratch: PlanScratch,
}

impl Clone for AccessPlan {
    fn clone(&self) -> Self {
        // The scratch is working storage for the *next* plan_into call;
        // a clone starts with fresh (empty) scratch instead of paying
        // for a deep copy of buffers it will never read.
        AccessPlan {
            entries: self.entries.clone(),
            scratch: PlanScratch::default(),
        }
    }
}

impl fmt::Debug for AccessPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessPlan")
            .field("entries", &self.entries)
            .finish_non_exhaustive()
    }
}

impl PartialEq for AccessPlan {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for AccessPlan {}

impl AccessPlan {
    /// Creates an empty plan (a reusable buffer for
    /// [`Planner::plan_into`]).
    pub fn new() -> Self {
        AccessPlan::default()
    }

    /// Creates an empty plan whose entry buffer can hold `len` requests
    /// without reallocating.
    pub fn with_capacity(len: u64) -> Self {
        AccessPlan {
            entries: Vec::with_capacity(len as usize),
            scratch: PlanScratch::default(),
        }
    }

    /// Removes all requests, keeping the allocated buffers for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Resolves an element order into a plan under a mapping.
    ///
    /// `order[k]` is the element requested at step `k`; it must be a
    /// permutation of `0..vec.len()` (checked by
    /// [`debug_assert!`]; orders from [`crate::order`] always are).
    pub fn from_order<M: ModuleMap + ?Sized>(map: &M, vec: &VectorSpec, order: &[u64]) -> Self {
        let mut plan = AccessPlan::with_capacity(vec.len());
        plan.fill_from_order(map, vec, order);
        plan
    }

    /// Clears the plan and refills it from an element order — the
    /// in-place equivalent of [`from_order`](Self::from_order), reusing
    /// the entry buffer.
    pub fn fill_from_order<M: ModuleMap + ?Sized>(
        &mut self,
        map: &M,
        vec: &VectorSpec,
        order: &[u64],
    ) {
        debug_assert!(
            order::is_permutation(order, vec.len()),
            "order must be a permutation of 0..{}",
            vec.len()
        );
        map_elements(map, vec, &mut self.scratch.modules);
        fill_entries(&mut self.entries, vec, &self.scratch.modules, order);
    }

    /// Number of requests (the vector length).
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Returns `true` if the plan has no requests.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The plan entries in request order.
    pub fn entries(&self) -> &[PlanEntry] {
        &self.entries
    }

    /// Iterates the entries in request order.
    pub fn iter(&self) -> std::slice::Iter<'_, PlanEntry> {
        self.entries.iter()
    }

    /// The element indices in request order.
    pub fn element_order(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.element).collect()
    }

    /// The module sequence (temporal distribution) of the plan.
    pub fn module_sequence(&self) -> Vec<ModuleId> {
        self.entries.iter().map(|e| e.module).collect()
    }

    /// Whether every window of `t_cycles` consecutive requests touches
    /// `t_cycles` distinct modules — the paper's conflict-free
    /// condition.
    pub fn is_conflict_free(&self, t_cycles: u64) -> bool {
        dist::is_conflict_free(&self.module_sequence(), t_cycles)
    }

    /// Position of the first conflicting request, or `None`.
    pub fn first_conflict(&self, t_cycles: u64) -> Option<usize> {
        dist::first_conflict(&self.module_sequence(), t_cycles)
    }

    /// Number of conflicting requests.
    pub fn conflict_count(&self, t_cycles: u64) -> usize {
        dist::conflict_count(&self.module_sequence(), t_cycles)
    }

    /// Whether the requests are in element order.
    pub fn is_in_order(&self) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(k, e)| e.element == k as u64)
    }

    /// Minimum possible latency of this access on a conflict-free
    /// memory: `T + L + 1` cycles (Section 2).
    pub fn min_latency(&self, t_cycles: u64) -> u64 {
        t_cycles + self.len() + 1
    }

    /// Concatenates request streams for back-to-back issue — the
    /// Section 5C pattern where the out-of-order prefix of a short
    /// vector and its in-order tail are issued as one stream, paying the
    /// memory startup only once.
    ///
    /// Element indices (= register slots) of later plans are offset by
    /// the lengths of the earlier ones, so the combined plan stays a
    /// permutation of `0..total`.
    pub fn concat<'a, I>(plans: I) -> AccessPlan
    where
        I: IntoIterator<Item = &'a AccessPlan>,
    {
        let mut entries = Vec::new();
        let mut offset = 0u64;
        for plan in plans {
            entries.extend(plan.entries().iter().map(|e| PlanEntry {
                element: e.element + offset,
                addr: e.addr,
                module: e.module,
            }));
            offset += plan.len();
        }
        AccessPlan {
            entries,
            scratch: PlanScratch::default(),
        }
    }
}

/// Bulk-maps every element of `vec` into the element-indexed `modules`
/// table — the **single** [`ModuleMap`] virtual dispatch of plan
/// construction ([`ModuleMap::map_stride_into`]).
fn map_elements<M: ModuleMap + ?Sized>(map: &M, vec: &VectorSpec, modules: &mut Vec<ModuleId>) {
    modules.clear();
    modules.resize(vec.len() as usize, ModuleId::new(0));
    map.map_stride_into(vec.base(), vec.stride().get(), modules);
}

/// Clears `entries` and refills it by resolving `order` against the
/// element-indexed `modules` table (from [`map_elements`]).
fn fill_entries(
    entries: &mut Vec<PlanEntry>,
    vec: &VectorSpec,
    modules: &[ModuleId],
    order: &[u64],
) {
    entries.clear();
    entries.reserve(order.len());
    entries.extend(order.iter().map(|&element| PlanEntry {
        element,
        addr: vec.element_addr(element),
        module: modules[element as usize],
    }));
}

impl<'a> IntoIterator for &'a AccessPlan {
    type Item = &'a PlanEntry;
    type IntoIter = std::slice::Iter<'a, PlanEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// How the planner orders requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// In element order — what every pre-1992 scheme does.
    Canonical,
    /// The Section 3.1 subsequence order (Figure 4): conflict free per
    /// subsequence, whole-vector latency within `2T + L` given `q = 2`
    /// input buffers.
    Subsequence,
    /// The Section 3.2/4.2 replay order: whole-vector conflict free,
    /// latency `T + L + 1`, no memory buffers needed.
    ConflictFree,
    /// Choose the best available: `ConflictFree` when the family is in
    /// the window, then `Subsequence`, then `Canonical`.
    #[default]
    Auto,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::Canonical => "canonical",
            Strategy::Subsequence => "subsequence",
            Strategy::ConflictFree => "conflict-free",
            Strategy::Auto => "auto",
        };
        write!(f, "{name}")
    }
}

enum PlannerKind {
    Matched(XorMatched),
    Unmatched(XorUnmatched),
    Baseline {
        map: Box<dyn ModuleMap + Send + Sync>,
        t: u32,
    },
}

impl fmt::Debug for PlannerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerKind::Matched(m) => f.debug_tuple("Matched").field(m).finish(),
            PlannerKind::Unmatched(m) => f.debug_tuple("Unmatched").field(m).finish(),
            PlannerKind::Baseline { t, .. } => f
                .debug_struct("Baseline")
                .field("t", t)
                .finish_non_exhaustive(),
        }
    }
}

/// Builds [`AccessPlan`]s for vector accesses under a chosen mapping.
///
/// Three constructors select the memory organisation:
///
/// * [`Planner::matched`] — `M = T` modules with the paper's equation
///   (1) map; out-of-order strategies serve the Theorem 1 window.
/// * [`Planner::unmatched`] — `M = T²` modules with the equation (2)
///   map; out-of-order strategies serve the Theorem 3 windows using
///   supermodule or section replay automatically.
/// * [`Planner::baseline`] — any [`ModuleMap`] (interleaving,
///   skewing, …) restricted to canonical in-order access: the prior art
///   the paper compares against.
///
/// # Examples
///
/// ```
/// use cfva_core::mapping::XorMatched;
/// use cfva_core::plan::{Planner, Strategy};
/// use cfva_core::VectorSpec;
///
/// let planner = Planner::matched(XorMatched::new(3, 4)?);
/// let vec = VectorSpec::new(1000, 24, 128)?; // stride 24 = 3·2^3
/// let plan = planner.plan(&vec, Strategy::Auto)?;
/// assert!(plan.is_conflict_free(8));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Planner {
    kind: PlannerKind,
}

impl Planner {
    /// Planner for a matched memory (`M = T`) under [`XorMatched`].
    pub fn matched(map: XorMatched) -> Self {
        Planner {
            kind: PlannerKind::Matched(map),
        }
    }

    /// Planner for an unmatched memory (`M = T²`) under
    /// [`XorUnmatched`].
    pub fn unmatched(map: XorUnmatched) -> Self {
        Planner {
            kind: PlannerKind::Unmatched(map),
        }
    }

    /// Planner for an arbitrary mapping restricted to in-order access;
    /// `t` is the module latency exponent (`T = 2^t`).
    pub fn baseline<M: ModuleMap + Send + Sync + 'static>(map: M, t: u32) -> Self {
        Planner {
            kind: PlannerKind::Baseline {
                map: Box::new(map),
                t,
            },
        }
    }

    /// Planner selected at runtime by a map spec, resolved against the
    /// built-in [`Registry`](crate::mapping::Registry):
    /// `xor-matched`/`xor-unmatched` specs get their out-of-order
    /// planners, everything else plans in order with the latency
    /// exponent from the spec's `t` key (default: a matched memory).
    ///
    /// # Examples
    ///
    /// ```
    /// use cfva_core::mapping::MapSpec;
    /// use cfva_core::plan::{Planner, Strategy};
    /// use cfva_core::VectorSpec;
    ///
    /// let planner = Planner::from_spec(&"xor-matched:t=3,s=3".parse()?)?;
    /// let plan = planner.plan(&VectorSpec::new(16, 12, 64)?, Strategy::Auto)?;
    /// assert!(plan.is_conflict_free(8));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Everything [`Registry::build`](crate::mapping::Registry::build)
    /// rejects: unknown names, missing/unknown/invalid keys, map
    /// constraint violations.
    pub fn from_spec(spec: &crate::mapping::MapSpec) -> Result<Self, crate::error::ConfigError> {
        crate::mapping::Registry::builtin().planner(spec)
    }

    /// The module map in use.
    pub fn map(&self) -> &dyn ModuleMap {
        match &self.kind {
            PlannerKind::Matched(m) => m,
            PlannerKind::Unmatched(m) => m,
            PlannerKind::Baseline { map, .. } => map,
        }
    }

    /// Module latency exponent `t`.
    pub fn t(&self) -> u32 {
        match &self.kind {
            PlannerKind::Matched(m) => m.t(),
            PlannerKind::Unmatched(m) => m.t(),
            PlannerKind::Baseline { t, .. } => *t,
        }
    }

    /// Module latency `T = 2^t` in processor cycles.
    pub fn t_cycles(&self) -> u64 {
        1u64 << self.t()
    }

    /// Number of memory modules.
    pub fn module_count(&self) -> u64 {
        self.map().module_count()
    }

    /// The conflict-free window for register-length vectors `L = 2^λ`,
    /// as `(lo, hi)` family exponents, or `None` for a baseline planner
    /// (whose single in-order family depends on the map).
    pub fn window(&self, lambda: u32) -> Option<(u32, u32)> {
        match &self.kind {
            PlannerKind::Matched(m) => {
                let w = MatchedWindow::new(m.t(), m.s(), lambda);
                Some((w.lo(), w.hi()))
            }
            PlannerKind::Unmatched(m) => {
                let w = UnmatchedWindow::new(m.t(), m.s(), m.y(), lambda);
                let (lo, _) = w.lower();
                let (_, hi) = w.upper();
                Some((lo, hi))
            }
            PlannerKind::Baseline { .. } => None,
        }
    }

    /// Builds the plan for `vec` with the requested strategy.
    ///
    /// # Errors
    ///
    /// * [`PlanError::FamilyOutsideWindow`] — an out-of-order strategy
    ///   was requested for a family it cannot serve;
    /// * [`PlanError::LengthNotCompatible`] — the length is not a
    ///   multiple of the subsequence period (`L = k·P_x` violated);
    /// * [`PlanError::UnsupportedStrategy`] — out-of-order strategy on a
    ///   baseline planner.
    pub fn plan(&self, vec: &VectorSpec, strategy: Strategy) -> Result<AccessPlan, PlanError> {
        let mut plan = AccessPlan::with_capacity(vec.len());
        self.plan_into(vec, strategy, &mut plan)?;
        Ok(plan)
    }

    /// Builds the plan for `vec` into caller-owned storage.
    ///
    /// The in-place equivalent of [`plan`](Self::plan): `out` is cleared
    /// and refilled, reusing its entry buffer and internal planning
    /// scratch — no heap allocation once the buffers have grown to the
    /// working size. This is the batch execution engine's hot path.
    ///
    /// On error `out` is left cleared (empty).
    ///
    /// # Errors
    ///
    /// Same conditions as [`plan`](Self::plan).
    pub fn plan_into(
        &self,
        vec: &VectorSpec,
        strategy: Strategy,
        out: &mut AccessPlan,
    ) -> Result<(), PlanError> {
        let result = match strategy {
            Strategy::Canonical => {
                self.canonical_into(vec, out);
                Ok(())
            }
            Strategy::Subsequence => self.subsequence_into(vec, out),
            Strategy::ConflictFree => self.conflict_free_into(vec, out),
            Strategy::Auto => {
                if self.conflict_free_into(vec, out).is_err()
                    && self.subsequence_into(vec, out).is_err()
                {
                    self.canonical_into(vec, out);
                }
                Ok(())
            }
        };
        if result.is_err() {
            out.clear();
        }
        result
    }

    fn canonical_into(&self, vec: &VectorSpec, out: &mut AccessPlan) {
        order::canonical_order_into(vec.len(), &mut out.scratch.order);
        map_elements(self.map(), vec, &mut out.scratch.modules);
        fill_entries(
            &mut out.entries,
            vec,
            &out.scratch.modules,
            &out.scratch.order,
        );
    }

    fn subsequence_into(&self, vec: &VectorSpec, out: &mut AccessPlan) -> Result<(), PlanError> {
        let x = vec.family();
        match &self.kind {
            PlannerKind::Matched(m) => {
                let st = SubseqStructure::for_matched(m, x)?;
                order::subseq_order_into(&st, vec.len(), &mut out.scratch.order)?;
                map_elements(m, vec, &mut out.scratch.modules);
                fill_entries(
                    &mut out.entries,
                    vec,
                    &out.scratch.modules,
                    &out.scratch.order,
                );
                Ok(())
            }
            PlannerKind::Unmatched(m) => {
                let st = if x.exponent() <= m.s() {
                    SubseqStructure::for_unmatched_lower(m, x)?
                } else {
                    SubseqStructure::for_unmatched_upper(m, x)?
                };
                order::subseq_order_into(&st, vec.len(), &mut out.scratch.order)?;
                map_elements(m, vec, &mut out.scratch.modules);
                fill_entries(
                    &mut out.entries,
                    vec,
                    &out.scratch.modules,
                    &out.scratch.order,
                );
                Ok(())
            }
            PlannerKind::Baseline { .. } => Err(PlanError::UnsupportedStrategy {
                strategy: "subsequence",
                reason: "baseline planners access in order only",
            }),
        }
    }

    fn conflict_free_into(&self, vec: &VectorSpec, out: &mut AccessPlan) -> Result<(), PlanError> {
        let x = vec.family();
        match &self.kind {
            PlannerKind::Matched(m) => {
                if x.exponent() == m.s() {
                    // In-order access is conflict free for the map's own
                    // family, for any length and base (Harper's result).
                    self.canonical_into(vec, out);
                    return Ok(());
                }
                let st = SubseqStructure::for_matched(m, x)?;
                map_elements(m, vec, &mut out.scratch.modules);
                order::replay_order_into(
                    &out.scratch.modules,
                    &st,
                    ReplayKey::Module,
                    &mut out.scratch.replay,
                    &mut out.scratch.order,
                )?;
                fill_entries(
                    &mut out.entries,
                    vec,
                    &out.scratch.modules,
                    &out.scratch.order,
                );
                Ok(())
            }
            PlannerKind::Unmatched(m) => {
                // Choose the replay kind per Section 4.2; for
                // register-length vectors this matches Theorem 3's
                // windows, and for other lengths the divisibility check
                // inside replay_order is the arbiter.
                let kind = if x.exponent() <= m.s() {
                    ReplayKind::Supermodule
                } else if x.exponent() <= m.y() {
                    ReplayKind::Section
                } else if let Some(lambda) = vec.lambda() {
                    let w = UnmatchedWindow::new(m.t(), m.s(), m.y(), lambda);
                    let (lo, _) = w.lower();
                    return Err(PlanError::FamilyOutsideWindow {
                        family: x.exponent(),
                        lo,
                        hi: w.upper().1,
                    });
                } else {
                    return Err(PlanError::FamilyOutsideWindow {
                        family: x.exponent(),
                        lo: 0,
                        hi: m.y(),
                    });
                };
                let (st, key) = match kind {
                    ReplayKind::Supermodule => (
                        SubseqStructure::for_unmatched_lower(m, x)?,
                        ReplayKey::Supermodule { t: m.t() },
                    ),
                    ReplayKind::Section => (
                        SubseqStructure::for_unmatched_upper(m, x)?,
                        ReplayKey::Section { t: m.t() },
                    ),
                };
                map_elements(m, vec, &mut out.scratch.modules);
                order::replay_order_into(
                    &out.scratch.modules,
                    &st,
                    key,
                    &mut out.scratch.replay,
                    &mut out.scratch.order,
                )?;
                fill_entries(
                    &mut out.entries,
                    vec,
                    &out.scratch.modules,
                    &out.scratch.order,
                );
                Ok(())
            }
            PlannerKind::Baseline { .. } => Err(PlanError::UnsupportedStrategy {
                strategy: "conflict-free",
                reason: "baseline planners access in order only",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Interleaved;

    fn matched_planner() -> Planner {
        Planner::matched(XorMatched::new(3, 3).unwrap())
    }

    #[test]
    fn plan_entries_carry_addresses_and_modules() {
        let planner = matched_planner();
        let vec = VectorSpec::new(16, 12, 16).unwrap();
        let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
        assert_eq!(plan.len(), 16);
        let e = &plan.entries()[1];
        assert_eq!(e.element(), 1);
        assert_eq!(e.addr().get(), 28);
        assert_eq!(e.module().get(), 7);
        assert_eq!(e.register_slot(), 1);
    }

    #[test]
    fn canonical_plan_is_in_order() {
        let planner = matched_planner();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
        assert!(plan.is_in_order());
        assert!(!plan.is_conflict_free(8));
        assert_eq!(plan.first_conflict(8), Some(3)); // CTP 2,7,5,2 -> repeat at 3
    }

    #[test]
    fn conflict_free_plan_for_window_family() {
        let planner = matched_planner();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        assert!(plan.is_conflict_free(8));
        assert!(!plan.is_in_order());
        assert_eq!(plan.min_latency(8), 8 + 64 + 1);
    }

    #[test]
    fn family_s_uses_in_order_conflict_free() {
        let planner = matched_planner();
        let vec = VectorSpec::new(5, 8, 64).unwrap(); // x = 3 = s
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        assert!(plan.is_in_order());
        assert!(plan.is_conflict_free(8));
    }

    #[test]
    fn out_of_window_family_fails_conflict_free() {
        let planner = matched_planner();
        let vec = VectorSpec::new(0, 16, 64).unwrap(); // x = 4 > s
        assert!(matches!(
            planner.plan(&vec, Strategy::ConflictFree),
            Err(PlanError::FamilyOutsideWindow { family: 4, .. })
        ));
        // Auto falls back to canonical.
        let plan = planner.plan(&vec, Strategy::Auto).unwrap();
        assert!(plan.is_in_order());
    }

    #[test]
    fn too_short_vector_fails_but_auto_degrades() {
        // x = 0 needs P = 64 per period; L = 32 < 64.
        let planner = matched_planner();
        let vec = VectorSpec::new(3, 5, 32).unwrap();
        assert!(matches!(
            planner.plan(&vec, Strategy::ConflictFree),
            Err(PlanError::LengthNotCompatible { .. })
        ));
        let plan = planner.plan(&vec, Strategy::Auto).unwrap();
        assert!(plan.is_in_order());
    }

    #[test]
    fn unmatched_planner_picks_replay_kind() {
        let planner = Planner::unmatched(XorUnmatched::new(2, 3, 7).unwrap());
        // Lower window: x = 1.
        let vec = VectorSpec::new(6, 2, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        assert!(plan.is_conflict_free(4));
        // Upper window: x = 6 (sigma 3) — the Section 4.1 example.
        let vec = VectorSpec::new(0, 192, 32).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        assert!(plan.is_conflict_free(4));
        // Beyond the upper window: x = 8.
        let vec = VectorSpec::new(0, 256, 32).unwrap();
        assert!(planner.plan(&vec, Strategy::ConflictFree).is_err());
    }

    #[test]
    fn baseline_planner_only_canonical() {
        let planner = Planner::baseline(Interleaved::new(3).unwrap(), 3);
        let vec = VectorSpec::new(0, 1, 64).unwrap();
        assert!(planner.plan(&vec, Strategy::Canonical).is_ok());
        assert!(matches!(
            planner.plan(&vec, Strategy::ConflictFree),
            Err(PlanError::UnsupportedStrategy { .. })
        ));
        assert!(matches!(
            planner.plan(&vec, Strategy::Subsequence),
            Err(PlanError::UnsupportedStrategy { .. })
        ));
        // Auto degrades to canonical.
        let plan = planner.plan(&vec, Strategy::Auto).unwrap();
        assert!(plan.is_in_order());
        assert!(plan.is_conflict_free(8)); // odd stride on interleaving
    }

    #[test]
    fn window_accessor() {
        let planner = matched_planner();
        assert_eq!(planner.window(6), Some((0, 3)));
        assert_eq!(planner.t_cycles(), 8);
        assert_eq!(planner.module_count(), 8);
        let unmatched = Planner::unmatched(XorUnmatched::new(3, 4, 9).unwrap());
        assert_eq!(unmatched.window(7), Some((0, 9)));
        let base = Planner::baseline(Interleaved::new(3).unwrap(), 3);
        assert_eq!(base.window(7), None);
    }

    #[test]
    fn auto_prefers_conflict_free() {
        let planner = matched_planner();
        for (base, stride) in [(16u64, 12i64), (0, 1), (7, 6), (100, 4), (3, 8)] {
            let vec = VectorSpec::new(base, stride, 64).unwrap();
            let plan = planner.plan(&vec, Strategy::Auto).unwrap();
            assert!(
                plan.is_conflict_free(8),
                "base {base} stride {stride} should be conflict free"
            );
        }
    }

    #[test]
    fn plan_iteration() {
        let planner = matched_planner();
        let vec = VectorSpec::new(0, 1, 8).unwrap();
        let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
        let elements: Vec<u64> = (&plan).into_iter().map(|e| e.element()).collect();
        assert_eq!(elements, (0..8).collect::<Vec<u64>>());
        assert_eq!(plan.element_order(), elements);
        assert!(!plan.is_empty());
    }

    #[test]
    fn strategy_display_and_default() {
        assert_eq!(Strategy::default(), Strategy::Auto);
        assert_eq!(Strategy::Canonical.to_string(), "canonical");
        assert_eq!(Strategy::ConflictFree.to_string(), "conflict-free");
    }

    #[test]
    fn concat_offsets_register_slots() {
        let planner = matched_planner();
        let a = planner
            .plan(&VectorSpec::new(0, 8, 16).unwrap(), Strategy::Canonical)
            .unwrap();
        let b = planner
            .plan(&VectorSpec::new(1000, 8, 16).unwrap(), Strategy::Canonical)
            .unwrap();
        let combined = AccessPlan::concat([&a, &b]);
        assert_eq!(combined.len(), 32);
        // A permutation of 0..32: second plan's slots are offset.
        let mut order = combined.element_order();
        order.sort_unstable();
        assert_eq!(order, (0..32).collect::<Vec<u64>>());
        assert_eq!(combined.entries()[16].element(), 16);
        assert_eq!(combined.entries()[16].addr().get(), 1000);
    }

    #[test]
    fn concat_of_empty_is_empty() {
        let combined = AccessPlan::concat(std::iter::empty::<&AccessPlan>());
        assert!(combined.is_empty());
    }

    #[test]
    fn plan_into_reuses_buffer_and_matches_plan() {
        let planner = matched_planner();
        let mut buf = AccessPlan::new();
        for (base, stride) in [(16u64, 12i64), (0, 1), (7, 6), (3, 8), (100, 4)] {
            let vec = VectorSpec::new(base, stride, 64).unwrap();
            for strategy in [
                Strategy::Canonical,
                Strategy::Subsequence,
                Strategy::ConflictFree,
                Strategy::Auto,
            ] {
                let fresh = planner.plan(&vec, strategy);
                let reused = planner.plan_into(&vec, strategy, &mut buf);
                match (fresh, reused) {
                    (Ok(p), Ok(())) => {
                        assert_eq!(p, buf, "base {base} stride {stride} {strategy}")
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (f, r) => panic!("plan/plan_into disagree: {f:?} vs {r:?}"),
                }
            }
        }
    }

    #[test]
    fn plan_into_shrinks_for_shorter_vectors() {
        let planner = matched_planner();
        let mut buf = AccessPlan::new();
        planner
            .plan_into(
                &VectorSpec::new(16, 12, 64).unwrap(),
                Strategy::ConflictFree,
                &mut buf,
            )
            .unwrap();
        assert_eq!(buf.len(), 64);
        planner
            .plan_into(
                &VectorSpec::new(16, 12, 16).unwrap(),
                Strategy::ConflictFree,
                &mut buf,
            )
            .unwrap();
        assert_eq!(buf.len(), 16);
        assert!(buf.is_conflict_free(8));
    }

    #[test]
    fn plan_into_clears_on_error() {
        let planner = matched_planner();
        let mut buf = AccessPlan::new();
        planner
            .plan_into(
                &VectorSpec::new(16, 12, 64).unwrap(),
                Strategy::ConflictFree,
                &mut buf,
            )
            .unwrap();
        assert!(!buf.is_empty());
        // x = 4 > s: conflict-free planning fails; the buffer must not
        // keep stale entries.
        let err = planner.plan_into(
            &VectorSpec::new(0, 16, 64).unwrap(),
            Strategy::ConflictFree,
            &mut buf,
        );
        assert!(err.is_err());
        assert!(buf.is_empty());
    }

    #[test]
    fn plan_equality_ignores_scratch_state() {
        let planner = matched_planner();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        // One plan built fresh, one through a buffer that previously
        // held a different (larger scratch) plan.
        let fresh = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let mut reused = planner
            .plan(&VectorSpec::new(0, 1, 128).unwrap(), Strategy::Subsequence)
            .unwrap();
        planner
            .plan_into(&vec, Strategy::ConflictFree, &mut reused)
            .unwrap();
        assert_eq!(fresh, reused);
    }
}
