//! Error types for configuration and planning.

use std::error::Error;
use std::fmt;

/// An invalid memory-system or mapping configuration.
///
/// Returned by mapping constructors and by
/// [`Planner`](crate::plan::Planner) configuration when a parameter
/// violates the constraints the paper places on it (e.g. `s ≥ t` for the
/// matched XOR map, `y ≥ s + t` for the unmatched map).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter that must be a power of two is not.
    NotPowerOfTwo {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: u64,
    },
    /// A parameter is outside its documented range.
    OutOfRange {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: u64,
        /// Human-readable constraint, e.g. `"s >= t"`.
        constraint: &'static str,
    },
    /// A stride of zero was supplied.
    ZeroStride,
    /// The linear transformation matrix is not full rank, so some module
    /// never receives any address.
    SingularMatrix,
    /// A vector address stream would leave the representable address
    /// space.
    AddressOverflow,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::OutOfRange {
                what,
                value,
                constraint,
            } => {
                write!(f, "{what} = {value} violates constraint {constraint}")
            }
            ConfigError::ZeroStride => write!(f, "stride must be nonzero"),
            ConfigError::SingularMatrix => {
                write!(f, "linear transformation matrix is not full rank")
            }
            ConfigError::AddressOverflow => {
                write!(f, "vector address stream overflows the address space")
            }
        }
    }
}

impl Error for ConfigError {}

/// A failure to build an access plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The underlying configuration is invalid.
    Config(ConfigError),
    /// The requested strategy needs the vector length to be a multiple of
    /// the subsequence structure (`L = k·P_x` or `L = k·2^{w+t-x}`), and
    /// it is not. Carries the offending vector length.
    LengthNotCompatible {
        /// The vector length that was requested.
        len: u64,
        /// The granule the length must be a multiple of.
        granule: u64,
    },
    /// The stride family is outside the conflict-free window and the
    /// strategy demanded a conflict-free plan.
    FamilyOutsideWindow {
        /// The stride family exponent `x`.
        family: u32,
        /// Lower bound of the window.
        lo: u32,
        /// Upper bound of the window.
        hi: u32,
    },
    /// An out-of-order strategy was requested for a register file that
    /// only accepts in-order (FIFO) writes.
    OutOfOrderUnsupported,
    /// Two elements of one subsequence map to the same replay key
    /// (module, supermodule or section), so the subsequence cannot be
    /// conflict free and the replay ordering does not apply. Happens when
    /// the subsequence structure does not match the mapping/family.
    ReplayKeyCollision {
        /// Period index of the offending subsequence.
        period: u64,
        /// Subsequence index within the period.
        subseq: u64,
    },
    /// The planner does not support the requested strategy (e.g. an
    /// out-of-order strategy on a baseline in-order-only mapping).
    UnsupportedStrategy {
        /// Name of the strategy.
        strategy: &'static str,
        /// Why it is unsupported.
        reason: &'static str,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Config(e) => write!(f, "invalid configuration: {e}"),
            PlanError::LengthNotCompatible { len, granule } => {
                write!(
                    f,
                    "vector length {len} is not a multiple of the required granule {granule}"
                )
            }
            PlanError::FamilyOutsideWindow { family, lo, hi } => {
                write!(
                    f,
                    "stride family x = {family} is outside the conflict-free window [{lo}, {hi}]"
                )
            }
            PlanError::OutOfOrderUnsupported => {
                write!(f, "register file does not accept out-of-order writes")
            }
            PlanError::ReplayKeyCollision { period, subseq } => {
                write!(
                    f,
                    "subsequence {subseq} of period {period} maps two elements to one replay key"
                )
            }
            PlanError::UnsupportedStrategy { strategy, reason } => {
                write!(f, "strategy {strategy} unsupported: {reason}")
            }
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for PlanError {
    fn from(e: ConfigError) -> Self {
        PlanError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_complete() {
        let e = ConfigError::NotPowerOfTwo {
            what: "vector length",
            value: 12,
        };
        assert_eq!(
            e.to_string(),
            "vector length must be a power of two, got 12"
        );

        let e = ConfigError::OutOfRange {
            what: "s",
            value: 1,
            constraint: "s >= t",
        };
        assert_eq!(e.to_string(), "s = 1 violates constraint s >= t");

        assert_eq!(
            ConfigError::ZeroStride.to_string(),
            "stride must be nonzero"
        );
        assert!(ConfigError::SingularMatrix
            .to_string()
            .contains("full rank"));
    }

    #[test]
    fn plan_error_wraps_config_error() {
        let e: PlanError = ConfigError::ZeroStride.into();
        assert!(matches!(e, PlanError::Config(_)));
        assert!(e.to_string().contains("stride must be nonzero"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn plan_error_messages() {
        let e = PlanError::LengthNotCompatible {
            len: 48,
            granule: 32,
        };
        assert!(e.to_string().contains("48"));
        assert!(e.to_string().contains("32"));

        let e = PlanError::FamilyOutsideWindow {
            family: 7,
            lo: 0,
            hi: 4,
        };
        assert!(e.to_string().contains("x = 7"));
        assert!(e.to_string().contains("[0, 4]"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<PlanError>();
    }
}
