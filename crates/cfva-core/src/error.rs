//! Error types for configuration and planning.

use std::error::Error;
use std::fmt;

/// An invalid memory-system or mapping configuration.
///
/// Returned by mapping constructors and by
/// [`Planner`](crate::plan::Planner) configuration when a parameter
/// violates the constraints the paper places on it (e.g. `s ≥ t` for the
/// matched XOR map, `y ≥ s + t` for the unmatched map).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter that must be a power of two is not.
    NotPowerOfTwo {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: u64,
    },
    /// A parameter is outside its documented range.
    OutOfRange {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: u64,
        /// Human-readable constraint, e.g. `"s >= t"`.
        constraint: &'static str,
    },
    /// A stride of zero was supplied.
    ZeroStride,
    /// The linear transformation matrix is not full rank, so some module
    /// never receives any address.
    SingularMatrix,
    /// A vector address stream would leave the representable address
    /// space.
    AddressOverflow,
    /// A map-spec string violates the `name:key=value,...` grammar
    /// (see [`crate::mapping::registry::MapSpec`]).
    SpecSyntax {
        /// The offending spec text (or the offending fragment).
        spec: String,
        /// What exactly was wrong with it.
        reason: String,
    },
    /// A spec named a map that no registry entry provides. Carries the
    /// registered names so the message can list what *would* work.
    UnknownMap {
        /// The unrecognised map name.
        name: String,
        /// Every name the registry knows, in registration order.
        registered: Vec<String>,
    },
    /// A spec key the map requires was not given.
    MissingKey {
        /// Map name the spec addressed.
        map: String,
        /// The required key.
        key: &'static str,
    },
    /// A spec key is not one the map accepts.
    UnknownKey {
        /// Map name the spec addressed.
        map: String,
        /// The unrecognised key.
        key: String,
        /// The keys the map does accept.
        accepted: &'static [&'static str],
    },
    /// The same spec key was given twice.
    DuplicateKey {
        /// The repeated key.
        key: String,
    },
    /// A spec value could not be interpreted for its key.
    InvalidValue {
        /// The key whose value is bad.
        key: String,
        /// The value as written in the spec.
        value: String,
        /// What the key expects, e.g. `"an unsigned integer"`.
        expected: &'static str,
    },
    /// A GF(2) matrix file could not be read or parsed.
    MatrixFile {
        /// Path as written in the spec (after the `@`).
        path: String,
        /// Read or parse failure description.
        reason: String,
    },
    /// A registry name was registered twice.
    DuplicateMap {
        /// The doubly-registered name.
        name: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::OutOfRange {
                what,
                value,
                constraint,
            } => {
                write!(f, "{what} = {value} violates constraint {constraint}")
            }
            ConfigError::ZeroStride => write!(f, "stride must be nonzero"),
            ConfigError::SingularMatrix => {
                write!(f, "linear transformation matrix is not full rank")
            }
            ConfigError::AddressOverflow => {
                write!(f, "vector address stream overflows the address space")
            }
            ConfigError::SpecSyntax { spec, reason } => {
                write!(f, "malformed map spec {spec:?}: {reason}")
            }
            ConfigError::UnknownMap { name, registered } => {
                write!(
                    f,
                    "unknown map {name:?}; registered maps: {}",
                    registered.join(", ")
                )
            }
            ConfigError::MissingKey { map, key } => {
                write!(f, "map {map:?} requires key {key:?}")
            }
            ConfigError::UnknownKey { map, key, accepted } => {
                write!(
                    f,
                    "map {map:?} does not accept key {key:?}; accepted keys: {}",
                    accepted.join(", ")
                )
            }
            ConfigError::DuplicateKey { key } => {
                write!(f, "key {key:?} given more than once")
            }
            ConfigError::InvalidValue {
                key,
                value,
                expected,
            } => {
                write!(f, "key {key:?} = {value:?} is invalid: expected {expected}")
            }
            ConfigError::MatrixFile { path, reason } => {
                write!(f, "matrix file {path:?}: {reason}")
            }
            ConfigError::DuplicateMap { name } => {
                write!(f, "map {name:?} is already registered")
            }
        }
    }
}

impl Error for ConfigError {}

/// A failure to build an access plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The underlying configuration is invalid.
    Config(ConfigError),
    /// The requested strategy needs the vector length to be a multiple of
    /// the subsequence structure (`L = k·P_x` or `L = k·2^{w+t-x}`), and
    /// it is not. Carries the offending vector length.
    LengthNotCompatible {
        /// The vector length that was requested.
        len: u64,
        /// The granule the length must be a multiple of.
        granule: u64,
    },
    /// The stride family is outside the conflict-free window and the
    /// strategy demanded a conflict-free plan.
    FamilyOutsideWindow {
        /// The stride family exponent `x`.
        family: u32,
        /// Lower bound of the window.
        lo: u32,
        /// Upper bound of the window.
        hi: u32,
    },
    /// An out-of-order strategy was requested for a register file that
    /// only accepts in-order (FIFO) writes.
    OutOfOrderUnsupported,
    /// Two elements of one subsequence map to the same replay key
    /// (module, supermodule or section), so the subsequence cannot be
    /// conflict free and the replay ordering does not apply. Happens when
    /// the subsequence structure does not match the mapping/family.
    ReplayKeyCollision {
        /// Period index of the offending subsequence.
        period: u64,
        /// Subsequence index within the period.
        subseq: u64,
    },
    /// The planner does not support the requested strategy (e.g. an
    /// out-of-order strategy on a baseline in-order-only mapping).
    UnsupportedStrategy {
        /// Name of the strategy.
        strategy: &'static str,
        /// Why it is unsupported.
        reason: &'static str,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Config(e) => write!(f, "invalid configuration: {e}"),
            PlanError::LengthNotCompatible { len, granule } => {
                write!(
                    f,
                    "vector length {len} is not a multiple of the required granule {granule}"
                )
            }
            PlanError::FamilyOutsideWindow { family, lo, hi } => {
                write!(
                    f,
                    "stride family x = {family} is outside the conflict-free window [{lo}, {hi}]"
                )
            }
            PlanError::OutOfOrderUnsupported => {
                write!(f, "register file does not accept out-of-order writes")
            }
            PlanError::ReplayKeyCollision { period, subseq } => {
                write!(
                    f,
                    "subsequence {subseq} of period {period} maps two elements to one replay key"
                )
            }
            PlanError::UnsupportedStrategy { strategy, reason } => {
                write!(f, "strategy {strategy} unsupported: {reason}")
            }
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for PlanError {
    fn from(e: ConfigError) -> Self {
        PlanError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_complete() {
        let e = ConfigError::NotPowerOfTwo {
            what: "vector length",
            value: 12,
        };
        assert_eq!(
            e.to_string(),
            "vector length must be a power of two, got 12"
        );

        let e = ConfigError::OutOfRange {
            what: "s",
            value: 1,
            constraint: "s >= t",
        };
        assert_eq!(e.to_string(), "s = 1 violates constraint s >= t");

        assert_eq!(
            ConfigError::ZeroStride.to_string(),
            "stride must be nonzero"
        );
        assert!(ConfigError::SingularMatrix
            .to_string()
            .contains("full rank"));
    }

    #[test]
    fn plan_error_wraps_config_error() {
        let e: PlanError = ConfigError::ZeroStride.into();
        assert!(matches!(e, PlanError::Config(_)));
        assert!(e.to_string().contains("stride must be nonzero"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn plan_error_messages() {
        let e = PlanError::LengthNotCompatible {
            len: 48,
            granule: 32,
        };
        assert!(e.to_string().contains("48"));
        assert!(e.to_string().contains("32"));

        let e = PlanError::FamilyOutsideWindow {
            family: 7,
            lo: 0,
            hi: 4,
        };
        assert!(e.to_string().contains("x = 7"));
        assert!(e.to_string().contains("[0, 4]"));
    }

    /// The spec-layer variants must name the offending key/value and,
    /// for an unknown map, list every registered name — the error text
    /// is the CLI's only diagnostic.
    #[test]
    fn spec_error_messages_name_the_offender() {
        let e = ConfigError::UnknownMap {
            name: "skewd".to_string(),
            registered: vec!["interleaved".to_string(), "skewed".to_string()],
        };
        let msg = e.to_string();
        assert!(msg.contains("\"skewd\""), "{msg}");
        assert!(msg.contains("interleaved, skewed"), "{msg}");

        let e = ConfigError::MissingKey {
            map: "skewed".to_string(),
            key: "m",
        };
        assert_eq!(e.to_string(), "map \"skewed\" requires key \"m\"");

        let e = ConfigError::UnknownKey {
            map: "interleaved".to_string(),
            key: "q".to_string(),
            accepted: &["m", "t"],
        };
        let msg = e.to_string();
        assert!(msg.contains("\"q\""), "{msg}");
        assert!(msg.contains("accepted keys: m, t"), "{msg}");

        let e = ConfigError::InvalidValue {
            key: "m".to_string(),
            value: "three".to_string(),
            expected: "an unsigned integer",
        };
        let msg = e.to_string();
        assert!(msg.contains("\"m\""), "{msg}");
        assert!(msg.contains("\"three\""), "{msg}");
        assert!(msg.contains("an unsigned integer"), "{msg}");

        let e = ConfigError::SpecSyntax {
            spec: "skewed:m".to_string(),
            reason: "parameter \"m\" has no '='".to_string(),
        };
        assert!(e.to_string().contains("skewed:m"), "{e}");

        let e = ConfigError::DuplicateKey {
            key: "m".to_string(),
        };
        assert!(e.to_string().contains("\"m\""), "{e}");

        let e = ConfigError::MatrixFile {
            path: "maps/a.gf2".to_string(),
            reason: "line 3 has 5 columns, line 1 had 7".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("maps/a.gf2"), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<PlanError>();
    }
}
