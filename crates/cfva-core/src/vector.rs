//! Vector access specifications.

use std::fmt;

use crate::address::{is_pow2, Addr};
use crate::error::ConfigError;
use crate::stride::{Stride, StrideFamily};

/// A constant-stride vector access: `L` elements at addresses
/// `A1 + S·i`, `0 ≤ i < L`.
///
/// The paper's main scheme targets register-length vectors `L = 2^λ`;
/// shorter vectors (Section 5C) may have any length, so the type accepts
/// any `len ≥ 1` and the power-of-two constraint is checked where the
/// theory needs it ([`lambda`](Self::lambda),
/// [`Planner`](crate::plan::Planner)). The initial address `A1` is
/// arbitrary — the schemes must work *for any initial address*, and the
/// test-suite exercises random bases throughout.
///
/// # Examples
///
/// ```
/// use cfva_core::VectorSpec;
///
/// let v = VectorSpec::new(16, 12, 64)?; // A1 = 16, S = 12, L = 64
/// assert_eq!(v.element_addr(0).get(), 16);
/// assert_eq!(v.element_addr(3).get(), 52);
/// assert_eq!(v.lambda(), Some(6));
/// assert_eq!(v.stride().family().exponent(), 2);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorSpec {
    base: Addr,
    stride: Stride,
    len: u64,
}

impl VectorSpec {
    /// Creates a vector access specification.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::ZeroStride`] if `stride == 0`;
    /// * [`ConfigError::OutOfRange`] if `len == 0`;
    /// * [`ConfigError::AddressOverflow`] if any element address would
    ///   fall outside `[0, u64::MAX]`.
    pub fn new(base: u64, stride: i64, len: u64) -> Result<Self, ConfigError> {
        let stride = Stride::new(stride)?;
        Self::with_stride(Addr::new(base), stride, len)
    }

    /// Creates a specification from already-constructed parts.
    ///
    /// # Errors
    ///
    /// Same as [`VectorSpec::new`], minus the zero-stride case which the
    /// [`Stride`] type already rules out.
    pub fn with_stride(base: Addr, stride: Stride, len: u64) -> Result<Self, ConfigError> {
        if len == 0 {
            return Err(ConfigError::OutOfRange {
                what: "vector length",
                value: 0,
                constraint: "len >= 1",
            });
        }
        // Check both endpoints stay within the u64 address space.
        let last = (base.get() as i128) + (stride.get() as i128) * ((len - 1) as i128);
        if last < 0 || last > u64::MAX as i128 {
            return Err(ConfigError::AddressOverflow);
        }
        Ok(VectorSpec { base, stride, len })
    }

    /// Returns the initial address `A1`.
    pub const fn base(&self) -> Addr {
        self.base
    }

    /// Returns the stride `S`.
    pub const fn stride(&self) -> Stride {
        self.stride
    }

    /// Returns the vector length `L`.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the vector has no elements.
    ///
    /// Note `len ≥ 1` is validated at construction, so this is never
    /// true for a validated spec; it exists for API completeness
    /// alongside [`len`](Self::len).
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `λ = log2(L)` when the length is a power of two (the
    /// register-length case the paper's theorems address), else `None`.
    pub fn lambda(&self) -> Option<u32> {
        if is_pow2(self.len) {
            Some(self.len.trailing_zeros())
        } else {
            None
        }
    }

    /// Returns `true` if the length is a power of two.
    pub fn has_pow2_len(&self) -> bool {
        is_pow2(self.len)
    }

    /// Returns the stride family of this access.
    pub const fn family(&self) -> StrideFamily {
        self.stride.family()
    }

    /// Returns the address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn element_addr(&self, i: u64) -> Addr {
        assert!(
            i < self.len,
            "element index {i} out of range 0..{}",
            self.len
        );
        self.base.offset(self.stride.get() * i as i64)
    }

    /// Iterates the addresses of all elements, in element order.
    ///
    /// ```
    /// use cfva_core::VectorSpec;
    /// let v = VectorSpec::new(0, 3, 4)?;
    /// let addrs: Vec<u64> = v.iter().map(|a| a.get()).collect();
    /// assert_eq!(addrs, vec![0, 3, 6, 9]);
    /// # Ok::<(), cfva_core::ConfigError>(())
    /// ```
    pub fn iter(&self) -> Iter {
        Iter {
            spec: *self,
            next: 0,
        }
    }
}

impl fmt::Display for VectorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vector A1={}, S={}, L={}",
            self.base,
            self.stride.get(),
            self.len
        )
    }
}

/// Iterator over element addresses, produced by [`VectorSpec::iter`].
#[derive(Debug, Clone)]
pub struct Iter {
    spec: VectorSpec,
    next: u64,
}

impl Iterator for Iter {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        if self.next >= self.spec.len() {
            return None;
        }
        let addr = self.spec.element_addr(self.next);
        self.next += 1;
        Some(addr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.spec.len() - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for &VectorSpec {
    type Item = Addr;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_any_positive_length() {
        assert!(VectorSpec::new(0, 1, 64).is_ok());
        assert!(VectorSpec::new(0, 1, 48).is_ok()); // Section 5C vectors
        assert!(matches!(
            VectorSpec::new(0, 1, 0),
            Err(ConfigError::OutOfRange { .. })
        ));
    }

    #[test]
    fn lambda_only_for_pow2_lengths() {
        assert_eq!(VectorSpec::new(0, 1, 64).unwrap().lambda(), Some(6));
        assert_eq!(VectorSpec::new(0, 1, 48).unwrap().lambda(), None);
        assert!(VectorSpec::new(0, 1, 64).unwrap().has_pow2_len());
        assert!(!VectorSpec::new(0, 1, 48).unwrap().has_pow2_len());
    }

    #[test]
    fn rejects_zero_stride() {
        assert_eq!(VectorSpec::new(0, 0, 64), Err(ConfigError::ZeroStride));
    }

    #[test]
    fn rejects_negative_address_overflow() {
        // base 10, stride -12: element 1 would be at address -2.
        assert_eq!(
            VectorSpec::new(10, -12, 2),
            Err(ConfigError::AddressOverflow)
        );
        // but a large enough base is fine.
        assert!(VectorSpec::new(100, -12, 2).is_ok());
    }

    #[test]
    fn rejects_u64_overflow() {
        assert_eq!(
            VectorSpec::new(u64::MAX - 5, 12, 2),
            Err(ConfigError::AddressOverflow)
        );
    }

    #[test]
    fn element_addresses_follow_stride() {
        let v = VectorSpec::new(16, 12, 8).unwrap();
        for i in 0..8 {
            assert_eq!(v.element_addr(i).get(), 16 + 12 * i);
        }
    }

    #[test]
    fn negative_stride_walks_down() {
        let v = VectorSpec::new(100, -8, 4).unwrap();
        let addrs: Vec<u64> = v.iter().map(Addr::get).collect();
        assert_eq!(addrs, vec![100, 92, 84, 76]);
    }

    #[test]
    fn lambda_is_log2_len() {
        assert_eq!(VectorSpec::new(0, 1, 1).unwrap().lambda(), Some(0));
        assert_eq!(VectorSpec::new(0, 1, 128).unwrap().lambda(), Some(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn element_addr_bounds_checked() {
        let v = VectorSpec::new(0, 1, 4).unwrap();
        v.element_addr(4);
    }

    #[test]
    fn iter_is_exact_size() {
        let v = VectorSpec::new(0, 5, 16).unwrap();
        let it = v.iter();
        assert_eq!(it.len(), 16);
        assert_eq!(it.count(), 16);
        let mut it = v.iter();
        it.next();
        assert_eq!(it.len(), 15);
    }

    #[test]
    fn display_format() {
        let v = VectorSpec::new(16, 12, 64).unwrap();
        assert_eq!(v.to_string(), "vector A1=16, S=12, L=64");
    }
}
