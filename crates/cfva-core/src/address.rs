//! Memory addresses, module identifiers and bit-field helpers.
//!
//! The paper works on the binary representation of addresses
//! `a_{n-1} … a_1 a_0`; every mapping in [`crate::mapping`] is defined in
//! terms of bit fields of the address. [`Addr`] is a thin newtype over
//! `u64` that names those operations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A one-dimensional (word) memory address.
///
/// Addresses are element addresses, not byte addresses: consecutive
/// vector elements with stride `S` live at `A1`, `A1 + S`, `A1 + 2S`, …
///
/// # Examples
///
/// ```
/// use cfva_core::Addr;
///
/// let a = Addr::new(0b110_101);
/// assert_eq!(a.bits(0, 3), 0b101); // a_2..a_0
/// assert_eq!(a.bits(3, 3), 0b110); // a_5..a_3
/// assert_eq!(a.bit(2), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from its integer value.
    pub const fn new(value: u64) -> Self {
        Addr(value)
    }

    /// Returns the integer value of the address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Extracts `width` bits starting at bit position `lo`
    /// (i.e. the field `a_{lo+width-1} .. a_lo`).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub const fn bits(self, lo: u32, width: u32) -> u64 {
        assert!(width <= 64, "bit field width exceeds 64");
        if width == 64 {
            self.0 >> lo
        } else {
            (self.0 >> lo) & ((1u64 << width) - 1)
        }
    }

    /// Returns bit `i` of the address (0 or 1).
    pub const fn bit(self, i: u32) -> u64 {
        (self.0 >> i) & 1
    }

    /// Returns the address advanced by a (possibly negative) offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on wraparound below zero; vector address
    /// streams validated by [`crate::vector::VectorSpec`] never wrap.
    pub fn offset(self, delta: i64) -> Self {
        Addr(self.0.wrapping_add_signed(delta))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Binary for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Addr(value)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;

    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

/// Identifier of one memory module, in `0 .. M`.
///
/// For the two-level unmatched mapping the module number decomposes into
/// a *section* (upper `t` bits) and a position inside the section — the
/// *supermodule* number (lower `t` bits); see
/// [`crate::mapping::XorUnmatched`].
///
/// # Examples
///
/// ```
/// use cfva_core::ModuleId;
///
/// let module = ModuleId::new(0b10_01);
/// // In a memory with 16 modules arranged as 4 sections of 4:
/// assert_eq!(module.section(2), 0b10);
/// assert_eq!(module.supermodule(2), 0b01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ModuleId(u64);

impl ModuleId {
    /// Creates a module identifier from its index.
    pub const fn new(index: u64) -> Self {
        ModuleId(index)
    }

    /// Returns the module index.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the section number: bits `b_{2t-1} .. b_t` of the module
    /// number, for a memory whose modules are grouped in sections of
    /// `2^t` (paper Section 4.1).
    pub const fn section(self, t: u32) -> u64 {
        self.0 >> t
    }

    /// Returns the supermodule number: bits `b_{t-1} .. b_0` of the
    /// module number (paper Section 4.2). Supermodule `i` is the set of
    /// the `i`-th modules of every section.
    pub const fn supermodule(self, t: u32) -> u64 {
        self.0 & ((1u64 << t) - 1)
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Binary for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u64> for ModuleId {
    fn from(value: u64) -> Self {
        ModuleId(value)
    }
}

impl From<ModuleId> for u64 {
    fn from(id: ModuleId) -> Self {
        id.0
    }
}

/// Returns `true` if `v` is a power of two (and nonzero).
pub const fn is_pow2(v: u64) -> bool {
    v != 0 && v & (v - 1) == 0
}

/// Returns `log2(v)` for a power of two `v`.
///
/// # Panics
///
/// Panics if `v` is not a power of two.
pub fn log2_exact(v: u64) -> u32 {
    assert!(is_pow2(v), "{v} is not a power of two");
    v.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_extracts_fields() {
        let a = Addr::new(0b1011_0110);
        assert_eq!(a.bits(0, 4), 0b0110);
        assert_eq!(a.bits(4, 4), 0b1011);
        assert_eq!(a.bits(1, 3), 0b011);
        assert_eq!(a.bits(0, 64), 0b1011_0110);
    }

    #[test]
    fn bit_extracts_single_bits() {
        let a = Addr::new(0b100);
        assert_eq!(a.bit(0), 0);
        assert_eq!(a.bit(1), 0);
        assert_eq!(a.bit(2), 1);
        assert_eq!(a.bit(63), 0);
    }

    #[test]
    fn offset_moves_both_directions() {
        let a = Addr::new(100);
        assert_eq!(a.offset(12), Addr::new(112));
        assert_eq!(a.offset(-12), Addr::new(88));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Addr::new(10);
        assert_eq!(a + 5, Addr::new(15));
        let mut b = a;
        b += 7;
        assert_eq!(b, Addr::new(17));
        assert_eq!(b - a, 7);
    }

    #[test]
    fn module_section_and_supermodule() {
        // m = 4, t = 2: modules 0..16, 4 sections of 4 modules.
        for module in 0..16u64 {
            let id = ModuleId::new(module);
            assert_eq!(id.section(2), module / 4);
            assert_eq!(id.supermodule(2), module % 4);
        }
    }

    #[test]
    fn display_and_binary_formatting() {
        assert_eq!(format!("{}", Addr::new(42)), "42");
        assert_eq!(format!("{:b}", Addr::new(5)), "101");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{}", ModuleId::new(3)), "3");
        assert_eq!(format!("{:b}", ModuleId::new(6)), "110");
    }

    #[test]
    fn pow2_helpers() {
        assert!(is_pow2(1));
        assert!(is_pow2(64));
        assert!(!is_pow2(0));
        assert!(!is_pow2(12));
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(128), 7);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_rejects_non_pow2() {
        log2_exact(12);
    }

    #[test]
    fn conversions_round_trip() {
        let a: Addr = 9u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 9);
        let m: ModuleId = 3u64.into();
        let w: u64 = m.into();
        assert_eq!(w, 3);
    }
}
