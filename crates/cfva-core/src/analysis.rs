//! Section 5 analytics: fraction of conflict-free strides, sustained
//! efficiency, latency bounds, short-vector splitting, and the
//! module-count trade-off.
//!
//! The stride-population model is the paper's: a stride is in family `x`
//! with probability `2^-(x+1)` (half of all strides are odd, a quarter
//! are `2·odd`, …).

use crate::stride::StrideFamily;

/// Fraction of all strides that are conflict free when the window covers
/// families `0 ≤ x ≤ w`:  `f = 1 − 2^-(w+1)` (paper Section 5A).
///
/// # Examples
///
/// The paper's two examples — matched `L=128, T=8` (`w = 4`) gives
/// 31/32; unmatched `M=64` (`w = 9`) gives 1023/1024:
///
/// ```
/// use cfva_core::analysis::fraction_conflict_free;
/// assert_eq!(fraction_conflict_free(4), 31.0 / 32.0);
/// assert_eq!(fraction_conflict_free(9), 1023.0 / 1024.0);
/// ```
pub fn fraction_conflict_free(w: u32) -> f64 {
    1.0 - 0.5f64.powi(w as i32 + 1)
}

/// Exact rational version of [`fraction_conflict_free`]:
/// `(2^{w+1} − 1, 2^{w+1})`.
///
/// # Panics
///
/// Panics if `w ≥ 63`.
pub fn fraction_conflict_free_exact(w: u32) -> (u64, u64) {
    assert!(w < 63, "window boundary {w} too large for exact fraction");
    let denom = 1u64 << (w + 1);
    (denom - 1, denom)
}

/// Average service cycles per element for a vector of family `x` when
/// the conflict-free window ends at `w` (Section 5B): `1` inside the
/// window; outside, the vector's elements live in `max(2^{t−i}, 1)`
/// modules (`i = x − w`), so one element is obtained every
/// `min(2^i, 2^t)` cycles.
pub fn cycles_per_element(family: StrideFamily, w: u32, t: u32) -> u64 {
    let x = family.exponent();
    if x <= w {
        1
    } else {
        1u64 << (x - w).min(t)
    }
}

/// Average cycles per element over the whole stride population:
/// `1 + t·2^-(w+1)` — the denominator of the paper's efficiency `η`.
pub fn average_cycles_per_element(w: u32, t: u32) -> f64 {
    1.0 + (t as f64) * 0.5f64.powi(w as i32 + 1)
}

/// Sustained efficiency over the stride population,
/// `η = 1 / (1 + t·2^-(w+1))` (paper Section 5B).
///
/// # Examples
///
/// The paper's four headline numbers:
///
/// ```
/// use cfva_core::analysis::efficiency;
/// // Proposed, matched (w = λ−t = 4, t = 3):
/// assert!((efficiency(4, 3) - 0.914).abs() < 5e-4);
/// // Proposed, unmatched (w = 2(λ−t)+1 = 9):
/// assert!((efficiency(9, 3) - 0.997).abs() < 5e-4);
/// // Ordered, matched (w = 0, s = 0):
/// assert!((efficiency(0, 3) - 0.4).abs() < 1e-9);
/// // Ordered, unmatched (w = m−t = 3):
/// assert!((efficiency(3, 3) - 0.842).abs() < 5e-4);
/// ```
pub fn efficiency(w: u32, t: u32) -> f64 {
    1.0 / average_cycles_per_element(w, t)
}

/// Window boundary `w` of the proposed scheme on a **matched** memory
/// with the recommended `s = λ−t` (Section 3.3): `w = λ − t`.
pub const fn matched_window_boundary(lambda: u32, t: u32) -> u32 {
    lambda.saturating_sub(t)
}

/// Window boundary `w` of the proposed scheme on an **unmatched** memory
/// (`M = T²`) with the recommended `s = λ−t`, `y = 2(λ−t)+1`
/// (Section 4.3): `w = 2(λ−t) + 1`.
pub const fn unmatched_window_boundary(lambda: u32, t: u32) -> u32 {
    2 * lambda.saturating_sub(t) + 1
}

/// Window boundary of **ordered** access on a memory of `2^m` modules
/// with latency `2^t` and map shift `s = 0`: `w = m − t` (Harper's
/// result quoted in the paper's introduction: at most `m−t+1` families).
pub const fn ordered_window_boundary(m: u32, t: u32) -> u32 {
    m - t
}

/// Latency in processor cycles of a conflict-free access: `T + L + 1`
/// (Section 2: `T` memory cycles for the first element, one request per
/// cycle, one bus cycle).
pub const fn conflict_free_latency(t_cycles: u64, len: u64) -> u64 {
    t_cycles + len + 1
}

/// Latency upper bound for the Section 3.1 subsequence order with two
/// input buffers and one output buffer per module: `2T + L` cycles —
/// at most `T − 1` worse than conflict free.
pub const fn subsequence_latency_bound(t_cycles: u64, len: u64) -> u64 {
    2 * t_cycles + len
}

/// Section 5C short-vector split: the largest prefix of a length-`v`
/// vector that the out-of-order scheme can handle is
/// `V = k·2^{w+t−x}` (`k` whole subsequence periods); the remainder is
/// accessed in order. Returns `(out_of_order_len, in_order_tail)`.
///
/// For families outside the window (`x > w`) the whole vector goes to
/// the in-order tail.
///
/// # Examples
///
/// ```
/// use cfva_core::analysis::short_vector_split;
/// // w = s = 4, t = 3, family x = 2: granule 2^{4+3-2} = 32.
/// assert_eq!(short_vector_split(100, 2.into(), 4, 3), (96, 4));
/// assert_eq!(short_vector_split(20, 2.into(), 4, 3), (0, 20));
/// // Outside the window: everything in order.
/// assert_eq!(short_vector_split(100, 6.into(), 4, 3), (0, 100));
/// ```
pub fn short_vector_split(v: u64, family: StrideFamily, w: u32, t: u32) -> (u64, u64) {
    let x = family.exponent();
    if x > w || w + t - x >= 63 {
        return (0, v);
    }
    let granule = 1u64 << (w + t - x);
    let ooo = (v / granule) * granule;
    (ooo, v - ooo)
}

/// Section 5E trade-off: conflict-free families obtainable per module
/// budget. Doubling the window from `λ−t+1` to `2(λ−t)+2` families
/// requires squaring the modules from `T` to `T²`.
///
/// Returns `(modules, families)` pairs for the paper's three design
/// points: ordered matched, proposed matched, proposed unmatched.
pub fn module_cost_design_points(lambda: u32, t: u32) -> [(u64, u32); 3] {
    let t_modules = 1u64 << t;
    [
        // Ordered access, matched memory: one family.
        (t_modules, 1),
        // Proposed, matched: λ−t+1 families.
        (t_modules, matched_window_boundary(lambda, t) + 1),
        // Proposed, unmatched (M = T²): 2(λ−t)+2 families.
        (
            t_modules * t_modules,
            unmatched_window_boundary(lambda, t) + 1,
        ),
    ]
}

/// Section 5H comparison: conflict-free family counts by vector length.
///
/// * Ordered access on an unmatched memory (`m = 2t`): `t + 1` families,
///   for **any** vector length.
/// * The proposed scheme: 2 families for any length (`x = s` and
///   `x = y` are conflict free even in order), but `2(λ−t+1)` families
///   for register-length vectors `L = 2^λ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyCountComparison {
    /// Families served by ordered access regardless of length.
    pub ordered_any_length: u32,
    /// Families served by the proposed scheme regardless of length.
    pub proposed_any_length: u32,
    /// Families served by the proposed scheme at `L = 2^λ`.
    pub proposed_at_register_length: u32,
}

/// Computes the Section 5H comparison for an unmatched memory (`m = 2t`)
/// and register length `L = 2^λ`.
pub const fn family_count_comparison(lambda: u32, t: u32) -> FamilyCountComparison {
    FamilyCountComparison {
        ordered_any_length: t + 1,
        proposed_any_length: 2,
        proposed_at_register_length: 2 * (lambda.saturating_sub(t) + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_examples_from_paper() {
        assert_eq!(fraction_conflict_free_exact(4), (31, 32));
        assert_eq!(fraction_conflict_free_exact(9), (1023, 1024));
        assert!((fraction_conflict_free(4) - 31.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_monotone_in_window() {
        let mut prev = 0.0;
        for w in 0..20 {
            let f = fraction_conflict_free(w);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn efficiency_matches_paper_numbers() {
        // Matched proposed: η = 32/35 ≈ 0.914.
        assert!((efficiency(4, 3) - 32.0 / 35.0).abs() < 1e-12);
        // Unmatched proposed: η = 1024/1027 ≈ 0.997.
        assert!((efficiency(9, 3) - 1024.0 / 1027.0).abs() < 1e-12);
        // Ordered matched, s = 0: η = 2/5 = 0.4.
        assert!((efficiency(0, 3) - 0.4).abs() < 1e-12);
        // Ordered unmatched, m = 6: η = 16/19 ≈ 0.842.
        assert!((efficiency(3, 3) - 16.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_is_weighted_harmonic_of_cycle_counts() {
        // Cross-check: the closed form equals the weight-summed series.
        for (w, t) in [(0u32, 3u32), (3, 3), (4, 3), (9, 3), (2, 2)] {
            let series: f64 = (0..200)
                .map(|x| {
                    StrideFamily::new(x).weight()
                        * cycles_per_element(StrideFamily::new(x), w, t) as f64
                })
                .sum();
            assert!(
                (series - average_cycles_per_element(w, t)).abs() < 1e-9,
                "w={w} t={t}: {series}"
            );
        }
    }

    #[test]
    fn cycles_per_element_saturates_at_t() {
        // Far outside the window, one element per memory cycle.
        assert_eq!(cycles_per_element(20.into(), 4, 3), 8);
        assert_eq!(cycles_per_element(5.into(), 4, 3), 2);
        assert_eq!(cycles_per_element(4.into(), 4, 3), 1);
        assert_eq!(cycles_per_element(0.into(), 4, 3), 1);
    }

    #[test]
    fn window_boundaries() {
        assert_eq!(matched_window_boundary(7, 3), 4);
        assert_eq!(unmatched_window_boundary(7, 3), 9);
        assert_eq!(ordered_window_boundary(6, 3), 3);
        assert_eq!(ordered_window_boundary(3, 3), 0);
    }

    #[test]
    fn latency_formulas() {
        assert_eq!(conflict_free_latency(8, 64), 73);
        assert_eq!(subsequence_latency_bound(8, 64), 80);
        // The bound is T-1 worse than conflict free.
        assert_eq!(
            subsequence_latency_bound(8, 64) - conflict_free_latency(8, 64),
            7
        );
    }

    #[test]
    fn short_split_multiples() {
        // Exact multiple: no tail.
        assert_eq!(short_vector_split(64, 2.into(), 4, 3), (64, 0));
        // v smaller than one granule: all tail.
        assert_eq!(short_vector_split(31, 2.into(), 4, 3), (0, 31));
        // Family at the window edge: granule 2^t.
        assert_eq!(short_vector_split(100, 4.into(), 4, 3), (96, 4));
    }

    #[test]
    fn module_cost_design_points_shape() {
        let pts = module_cost_design_points(7, 3);
        assert_eq!(pts[0], (8, 1));
        assert_eq!(pts[1], (8, 5));
        assert_eq!(pts[2], (64, 10));
        // Doubling the families costs squaring the modules.
        assert_eq!(pts[2].0, pts[1].0 * pts[1].0);
        assert_eq!(pts[2].1, 2 * pts[1].1);
    }

    #[test]
    fn family_count_comparison_section_5h() {
        let c = family_count_comparison(7, 3);
        assert_eq!(c.ordered_any_length, 4);
        assert_eq!(c.proposed_any_length, 2);
        assert_eq!(c.proposed_at_register_length, 10);
    }
}
