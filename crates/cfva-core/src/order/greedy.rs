//! Greedy/backtracking conflict-free order search.
//!
//! The structured orders of Sections 3–4 cover the Theorem 1/3 windows,
//! but Section 5G notes that out-of-order access can serve even more
//! families (`t − 1` more for the unmatched memory, per the authors'
//! technical report \[15\]) at the price of irregular subsequence
//! structure. This module finds such orders *by search*: a
//! backtracking scheduler that places one element per cycle subject to
//! the module-busy constraint. It answers, for any mapping and access,
//! the question "does ANY conflict-free order exist?" — which bounds
//! what any structured hardware scheme could achieve.
//!
//! The search is exponential in the worst case but effective in
//! practice: scheduling by most-constrained module first resolves
//! T-matched accesses without backtracking almost always; a step budget
//! keeps pathological cases bounded.

use crate::mapping::ModuleMap;
use crate::vector::VectorSpec;

/// Result of a greedy conflict-free order search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// A conflict-free order was found.
    Found(Vec<u64>),
    /// No conflict-free order exists (proved by exhausting the search
    /// space — only reported when the search completed).
    Impossible,
    /// The step budget ran out before the search completed.
    BudgetExhausted,
}

impl SearchResult {
    /// The order, if one was found.
    pub fn order(&self) -> Option<&[u64]> {
        match self {
            SearchResult::Found(order) => Some(order),
            _ => None,
        }
    }
}

/// Searches for a conflict-free request order of `vec` on `map` with
/// module occupancy `t_cycles`, within `step_budget` scheduling steps.
///
/// Strategy: at each request slot, candidate elements are those whose
/// module was not used in the previous `t_cycles − 1` slots; the
/// scheduler tries modules with the most remaining elements first
/// (most-constrained-first), backtracking on dead ends.
///
/// A vector that is not T-matched is rejected immediately (the paper's
/// necessary condition), returning [`SearchResult::Impossible`].
pub fn greedy_conflict_free_order<M: ModuleMap + ?Sized>(
    map: &M,
    vec: &VectorSpec,
    t_cycles: u64,
    step_budget: u64,
) -> SearchResult {
    let len = vec.len() as usize;
    let t = t_cycles as usize;
    let module_count = map.module_count() as usize;

    // Elements grouped by module.
    let mut by_module: Vec<Vec<u64>> = vec![Vec::new(); module_count];
    for e in 0..vec.len() {
        let m = map.module_of(vec.element_addr(e));
        // cfva-lint: allow(L002, reason = "module_of returns an id < module_count by the ModuleMap contract, and by_module is sized to module_count")
        by_module[m.get() as usize].push(e);
    }

    // Necessary condition: T-matched.
    if by_module
        .iter()
        .any(|v| v.len() as u64 > vec.len() / t_cycles)
    {
        return SearchResult::Impossible;
    }

    // Backtracking over module choices; element identity within a
    // module is irrelevant for conflicts, so search on modules and
    // assign elements afterwards.
    let mut remaining: Vec<usize> = by_module.iter().map(Vec::len).collect();
    let mut schedule: Vec<usize> = Vec::with_capacity(len);
    let mut choice_stack: Vec<Vec<usize>> = Vec::with_capacity(len);
    let mut steps = 0u64;

    loop {
        if schedule.len() == len {
            // Assign concrete elements in module order of appearance.
            let mut cursors = vec![0usize; module_count];
            let order: Vec<u64> = schedule
                .iter()
                .map(|&m| {
                    // cfva-lint: allow(L002, reason = "schedule holds one slot per element and remaining[] bounds each module's picks, so every cursor stays below its by_module group length")
                    let e = by_module[m][cursors[m]];
                    cursors[m] += 1;
                    e
                })
                .collect();
            return SearchResult::Found(order);
        }

        // Candidates: modules with remaining elements, not used within
        // the last t−1 slots, most-loaded first (most-constrained).
        let lo = schedule.len().saturating_sub(t - 1);
        let recent = &schedule[lo..];
        let mut candidates: Vec<usize> = (0..module_count)
            .filter(|&m| remaining[m] > 0 && !recent.contains(&m))
            .collect();
        candidates.sort_by_key(|&m| std::cmp::Reverse(remaining[m]));
        // Reverse so pop() yields the best candidate first.
        candidates.reverse();

        if candidates.is_empty() {
            // Dead end: backtrack.
            loop {
                match (schedule.pop(), choice_stack.pop()) {
                    (Some(m), Some(mut alts)) => {
                        remaining[m] += 1;
                        if let Some(next) = alts.pop() {
                            schedule.push(next);
                            remaining[next] -= 1;
                            choice_stack.push(alts);
                            break;
                        }
                    }
                    _ => return SearchResult::Impossible,
                }
            }
        } else {
            let mut alts = candidates;
            // cfva-lint: allow(L002, reason = "this is the non-empty branch of the candidates.is_empty() split above, so pop() always yields a module")
            let pick = alts.pop().expect("nonempty candidates");
            schedule.push(pick);
            remaining[pick] -= 1;
            choice_stack.push(alts);
        }

        steps += 1;
        if steps >= step_budget {
            return SearchResult::BudgetExhausted;
        }
    }
}

/// Convenience check: whether *some* conflict-free order exists.
pub fn conflict_free_order_exists<M: ModuleMap + ?Sized>(
    map: &M,
    vec: &VectorSpec,
    t_cycles: u64,
    step_budget: u64,
) -> Option<bool> {
    match greedy_conflict_free_order(map, vec, t_cycles, step_budget) {
        SearchResult::Found(_) => Some(true),
        SearchResult::Impossible => Some(false),
        SearchResult::BudgetExhausted => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{is_conflict_free, temporal_distribution};
    use crate::mapping::{Interleaved, XorMatched, XorUnmatched};
    use crate::order::is_permutation;

    #[test]
    fn finds_order_for_window_family() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let result = greedy_conflict_free_order(&map, &vec, 8, 1_000_000);
        let order = result.order().expect("window family is schedulable");
        assert!(is_permutation(order, 64));
        let td = temporal_distribution(&map, &vec, order);
        assert!(is_conflict_free(&td, 8));
    }

    #[test]
    fn rejects_non_t_matched_immediately() {
        // Stride 16 on the s=3 map: only 4 modules visited.
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(0, 16, 64).unwrap();
        assert_eq!(
            greedy_conflict_free_order(&map, &vec, 8, 1_000_000),
            SearchResult::Impossible
        );
    }

    #[test]
    fn unit_stride_on_interleaving_schedulable() {
        let map = Interleaved::new(3).unwrap();
        let vec = VectorSpec::new(5, 1, 64).unwrap();
        let result = greedy_conflict_free_order(&map, &vec, 8, 1_000_000);
        let order = result.order().expect("odd stride schedulable");
        let td = temporal_distribution(&map, &vec, order);
        assert!(is_conflict_free(&td, 8));
    }

    #[test]
    fn finds_extra_families_beyond_structured_window_unmatched() {
        // Section 5G: out-of-order access can serve families beyond the
        // [0, y] structured machinery. On the Figure 7 memory (t = 2,
        // y = 7), family y+1 = 8 is still T-matched for some vectors
        // and the search finds a conflict-free order the structured
        // replay cannot produce.
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let vec = VectorSpec::new(0, 256, 8).unwrap(); // x = 8, L = 8
        let result = greedy_conflict_free_order(&map, &vec, 4, 1_000_000);
        if let Some(order) = result.order() {
            let td = temporal_distribution(&map, &vec, order);
            assert!(is_conflict_free(&td, 4));
        } else {
            // If impossible, the vector must not be T-matched.
            use crate::dist::SpatialDistribution;
            let sd = SpatialDistribution::compute(&map, &vec);
            assert!(!sd.is_t_matched(4));
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        assert_eq!(
            greedy_conflict_free_order(&map, &vec, 8, 3),
            SearchResult::BudgetExhausted
        );
        assert_eq!(conflict_free_order_exists(&map, &vec, 8, 3), None);
    }

    #[test]
    fn exists_helper() {
        let map = XorMatched::new(3, 3).unwrap();
        let good = VectorSpec::new(16, 12, 64).unwrap();
        assert_eq!(
            conflict_free_order_exists(&map, &good, 8, 1_000_000),
            Some(true)
        );
        let bad = VectorSpec::new(0, 16, 64).unwrap();
        assert_eq!(
            conflict_free_order_exists(&map, &bad, 8, 1_000_000),
            Some(false)
        );
    }

    #[test]
    fn degenerate_t_one() {
        // T = 1: everything is schedulable in canonical order.
        let map = Interleaved::new(0).unwrap();
        let vec = VectorSpec::new(0, 3, 16).unwrap();
        let result = greedy_conflict_free_order(&map, &vec, 1, 10_000);
        assert!(result.order().is_some());
    }
}
