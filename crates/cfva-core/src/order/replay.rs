//! The Section 3.2 / 4.2 conflict-free ordering.
//!
//! The subsequence order of Section 3.1 leaves each subsequence conflict
//! free individually, but consecutive subsequences may clash where they
//! meet. The fix: remember the order in which the *first* subsequence
//! visits its modules, and request every later subsequence **in that
//! same order**. Every window of `T` consecutive requests then covers
//! `T` distinct keys, so the whole vector is conflict free.
//!
//! What "order" means depends on the memory (the [`ReplayKey`]):
//!
//! * matched memory — by full **module** number;
//! * unmatched, lower window `x ≤ s` — by **supermodule** number
//!   (lower `t` module bits): two latches per supermodule, `2·2^t`
//!   latches total rather than `2·2^m` (paper Section 4.2 i);
//! * unmatched, upper window `x ≤ y` — by **section** number (upper `t`
//!   module bits, Section 4.2 ii).

use crate::address::ModuleId;
use crate::error::PlanError;
use crate::mapping::ModuleMap;
use crate::order::subseq::SubseqStructure;
use crate::vector::VectorSpec;

/// The key by which replayed subsequences are matched to the first one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayKey {
    /// Full module number (matched memory, Section 3.2).
    Module,
    /// Lower `t` bits of the module number (unmatched memory, families
    /// `x ≤ s`, Section 4.2 case i).
    Supermodule {
        /// Latency exponent `t` (sections hold `2^t` modules).
        t: u32,
    },
    /// Upper module bits — the section number (unmatched memory,
    /// families in the upper window, Section 4.2 case ii).
    Section {
        /// Latency exponent `t`.
        t: u32,
    },
}

impl ReplayKey {
    /// Extracts the replay key of a module number.
    pub fn key_of(&self, module: ModuleId) -> u64 {
        match *self {
            ReplayKey::Module => module.get(),
            ReplayKey::Supermodule { t } => module.supermodule(t),
            ReplayKey::Section { t } => module.section(t),
        }
    }
}

/// Reusable working storage for [`replay_order_into`].
///
/// Holds the key→rank table and the per-subsequence slot buffer so that
/// repeated plan construction (the batch-runner hot path) performs no
/// heap allocation after the first call.
#[derive(Debug, Clone, Default)]
pub struct ReplayScratch {
    key_rank: Vec<Option<usize>>,
    slots: Vec<Option<u64>>,
}

/// Builds the conflict-free replay order.
///
/// The first subsequence is requested in its natural (Lemma 2/4) order;
/// its key sequence is recorded; every other subsequence is requested in
/// exactly that key order.
///
/// # Errors
///
/// * [`PlanError::LengthNotCompatible`] if the vector length is not a
///   multiple of the structure's period;
/// * [`PlanError::ReplayKeyCollision`] if some subsequence does not
///   visit every key exactly once (the structure/key does not fit the
///   mapping and family — e.g. a family outside the window).
///
/// # Examples
///
/// The paper's Section 3 example becomes conflict free under replay:
///
/// ```
/// use cfva_core::dist::{is_conflict_free, temporal_distribution};
/// use cfva_core::mapping::XorMatched;
/// use cfva_core::order::{replay_order, ReplayKey, SubseqStructure};
/// use cfva_core::VectorSpec;
///
/// let map = XorMatched::new(3, 3)?;
/// let vec = VectorSpec::new(16, 12, 64)?;
/// let st = SubseqStructure::for_matched(&map, vec.family())?;
/// let order = replay_order(&map, &vec, &st, ReplayKey::Module)?;
/// let td = temporal_distribution(&map, &vec, &order);
/// assert!(is_conflict_free(&td, 8));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn replay_order<M: ModuleMap + ?Sized>(
    map: &M,
    vec: &VectorSpec,
    structure: &SubseqStructure,
    key: ReplayKey,
) -> Result<Vec<u64>, PlanError> {
    let mut modules = vec![ModuleId::new(0); vec.len() as usize];
    map.map_stride_into(vec.base(), vec.stride().get(), &mut modules);
    let mut order = Vec::new();
    replay_order_into(
        &modules,
        structure,
        key,
        &mut ReplayScratch::default(),
        &mut order,
    )?;
    Ok(order)
}

/// Builds the conflict-free replay order into caller-owned storage.
///
/// `modules[e]` is the module of element `e` — the element-indexed
/// table one bulk [`ModuleMap::map_stride_into`] call produces; taking
/// the table instead of the map keeps plan construction at one virtual
/// mapping call per plan (the batch execution engine's hot path) and
/// lets the planner share the table with entry resolution.
///
/// Allocation-free once `scratch` and `out` have grown to the working
/// size: `out` is cleared and refilled, `scratch` is reused in place.
/// Same semantics and errors as [`replay_order`]; on error the contents
/// of `out` are unspecified.
///
/// # Errors
///
/// See [`replay_order`].
pub fn replay_order_into(
    modules: &[ModuleId],
    structure: &SubseqStructure,
    key: ReplayKey,
    scratch: &mut ReplayScratch,
    out: &mut Vec<u64>,
) -> Result<(), PlanError> {
    let periods = structure.periods_in(modules.len() as u64)?;
    let subseq_len = structure.subseq_len() as usize;
    out.clear();
    out.reserve(modules.len());

    // Key sequence of the first subsequence, recorded as key -> rank.
    let key_rank = &mut scratch.key_rank;
    key_rank.clear();
    let mut first_len = 0usize;

    for k in 0..periods {
        for j in 0..structure.subseq_count() {
            if k == 0 && j == 0 {
                for e in structure.subsequence_elements(0, 0) {
                    let kk = key.key_of(modules[e as usize]);
                    if kk as usize >= key_rank.len() {
                        key_rank.resize(kk as usize + 1, None);
                    }
                    if key_rank[kk as usize].is_some() {
                        return Err(PlanError::ReplayKeyCollision {
                            period: 0,
                            subseq: 0,
                        });
                    }
                    key_rank[kk as usize] = Some(first_len);
                    first_len += 1;
                    out.push(e);
                }
                continue;
            }
            // Replay: place each element at the rank of its key.
            let slots = &mut scratch.slots;
            slots.clear();
            slots.resize(subseq_len, None);
            for e in structure.subsequence_elements(k, j) {
                let kk = key.key_of(modules[e as usize]);
                let rank = key_rank.get(kk as usize).copied().flatten().ok_or(
                    PlanError::ReplayKeyCollision {
                        period: k,
                        subseq: j,
                    },
                )?;
                if slots[rank].is_some() {
                    return Err(PlanError::ReplayKeyCollision {
                        period: k,
                        subseq: j,
                    });
                }
                slots[rank] = Some(e);
            }
            for &slot in slots.iter() {
                // All keys hit exactly once, so every slot is filled.
                // cfva-lint: allow(L002, reason = "the collision check above proves the key assignment is injective over exactly slots.len() keys, so every slot is filled")
                out.push(slot.expect("bijective key assignment fills every slot"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{is_conflict_free, temporal_distribution};
    use crate::mapping::{XorMatched, XorUnmatched};
    use crate::order::is_permutation;

    #[test]
    fn key_extraction() {
        let m = ModuleId::new(0b10_11);
        assert_eq!(ReplayKey::Module.key_of(m), 0b1011);
        assert_eq!(ReplayKey::Supermodule { t: 2 }.key_of(m), 0b11);
        assert_eq!(ReplayKey::Section { t: 2 }.key_of(m), 0b10);
    }

    #[test]
    fn paper_example_becomes_conflict_free() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        let order = replay_order(&map, &vec, &st, ReplayKey::Module).unwrap();
        assert!(is_permutation(&order, 64));
        let td = temporal_distribution(&map, &vec, &order);
        assert!(is_conflict_free(&td, 8));
        // Every subsequence now shows the same module sequence as the
        // first: (2,5,0,3,6,1,4,7).
        for chunk in td.chunks(8) {
            let mods: Vec<u64> = chunk.iter().map(|m| m.get()).collect();
            assert_eq!(mods, vec![2, 5, 0, 3, 6, 1, 4, 7]);
        }
    }

    #[test]
    fn first_subsequence_keeps_natural_order() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        let order = replay_order(&map, &vec, &st, ReplayKey::Module).unwrap();
        assert_eq!(&order[..8], &[0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn unmatched_upper_window_section_replay() {
        // Section 4.1 second example: x = 6, sigma = 3, A1 = 0 on the
        // Figure 7 map. Subsequence modules (0,12,8,4) and (4,0,12,8):
        // plain subsequence order conflicts, section replay does not.
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let vec = VectorSpec::new(0, 192, 8).unwrap();
        let st = SubseqStructure::for_unmatched_upper(&map, vec.family()).unwrap();
        assert_eq!(st.subseq_count(), 2);

        let order = replay_order(&map, &vec, &st, ReplayKey::Section { t: 2 }).unwrap();
        let td = temporal_distribution(&map, &vec, &order);
        assert!(is_conflict_free(&td, 4), "temporal {td:?}");

        // Second subsequence is replayed in the section order of the
        // first: sections (0,3,2,1) -> elements with modules (0,12,8,4).
        let mods: Vec<u64> = td.iter().map(|m| m.get()).collect();
        assert_eq!(mods, vec![0, 12, 8, 4, 0, 12, 8, 4]);
    }

    #[test]
    fn unmatched_lower_window_supermodule_replay() {
        // Lower-window family on the Figure 7 map: x = 1, many bases.
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        for base in [0u64, 6, 100, 129, 1000] {
            for sigma in [1i64, 3, 5] {
                let vec = VectorSpec::new(base, sigma << 1, 64).unwrap();
                let st = SubseqStructure::for_unmatched_lower(&map, vec.family()).unwrap();
                let order = replay_order(&map, &vec, &st, ReplayKey::Supermodule { t: 2 }).unwrap();
                assert!(is_permutation(&order, 64));
                let td = temporal_distribution(&map, &vec, &order);
                assert!(
                    is_conflict_free(&td, 4),
                    "base {base} sigma {sigma}: {td:?}"
                );
            }
        }
    }

    #[test]
    fn wrong_key_is_rejected() {
        // Module-keyed replay on an unmatched lower-window family
        // fails: a subsequence visits supermodules, not all modules.
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let vec = VectorSpec::new(0, 192, 8).unwrap(); // x = 6 upper window
        let st = SubseqStructure::for_unmatched_upper(&map, vec.family()).unwrap();
        // Supermodule key collides: all elements share supermodule 0.
        let err = replay_order(&map, &vec, &st, ReplayKey::Supermodule { t: 2 });
        assert!(matches!(err, Err(PlanError::ReplayKeyCollision { .. })));
    }

    #[test]
    fn out_of_window_family_collides() {
        // x = 4 > s = 3 on the matched map: force a structure as if
        // x = s; keys collide because the spatial distribution is too
        // narrow.
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(0, 16, 64).unwrap(); // x = 4
        let st = SubseqStructure::new(1, 8);
        let err = replay_order(&map, &vec, &st, ReplayKey::Module);
        assert!(matches!(err, Err(PlanError::ReplayKeyCollision { .. })));
    }

    #[test]
    fn replay_works_for_non_pow2_multiples_of_period() {
        // Section 5C: V = k·2^{w+t-x} with k = 3 (not a power of two).
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 48).unwrap(); // 3 periods of 16
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        let order = replay_order(&map, &vec, &st, ReplayKey::Module).unwrap();
        assert!(is_permutation(&order, 48));
        let td = temporal_distribution(&map, &vec, &order);
        assert!(is_conflict_free(&td, 8));
    }

    #[test]
    fn length_mismatch_rejected() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 40).unwrap(); // not k·16
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        assert!(matches!(
            replay_order(&map, &vec, &st, ReplayKey::Module),
            Err(PlanError::LengthNotCompatible { .. })
        ));
    }
}
