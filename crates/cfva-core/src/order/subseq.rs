//! The Section 3.1 subsequence ordering (Figure 4).
//!
//! For a stride family `x ≤ s` (matched map, Lemma 2) the `P = 2^{s+t−x}`
//! elements of one period split into `J = 2^{s−x}` interleaved
//! subsequences of `2^t` elements: subsequence `j` holds elements
//! `j, j+J, j+2J, …` whose addresses differ by `σ·2^s` — and those all
//! live in different modules. The Figure 4 control requests the vector
//! subsequence by subsequence, period by period.
//!
//! The same structure with `y` in place of `s` gives the Lemma 4
//! subsequences of the unmatched map (elements `σ·2^y` apart, landing in
//! distinct *sections*).

use crate::error::PlanError;
use crate::mapping::{XorMatched, XorUnmatched};
use crate::stride::StrideFamily;

/// The subsequence structure of a vector access: how one period of the
/// module sequence decomposes into conflict-free subsequences.
///
/// Invariant: `period == subseq_count · subseq_len`.
///
/// # Examples
///
/// The paper's Section 3 example — `t = s = 3`, stride family `x = 2`:
/// a 16-element period splits into 2 subsequences of 8:
///
/// ```
/// use cfva_core::order::SubseqStructure;
/// use cfva_core::mapping::XorMatched;
///
/// let map = XorMatched::new(3, 3)?;
/// let st = SubseqStructure::for_matched(&map, 2.into())?;
/// assert_eq!(st.period(), 16);
/// assert_eq!(st.subseq_count(), 2);
/// assert_eq!(st.subseq_len(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubseqStructure {
    subseq_count: u64,
    subseq_len: u64,
}

impl SubseqStructure {
    /// Builds the structure directly from a subsequence count and
    /// length. Prefer the `for_*` constructors, which derive these from
    /// a mapping.
    pub const fn new(subseq_count: u64, subseq_len: u64) -> Self {
        SubseqStructure {
            subseq_count,
            subseq_len,
        }
    }

    /// Lemma 2 structure for the matched map: family `x ≤ s` splits each
    /// period of `2^{s+t−x}` elements into `2^{s−x}` subsequences of
    /// `2^t`.
    ///
    /// # Errors
    ///
    /// [`PlanError::FamilyOutsideWindow`] if `x > s` (the period visits
    /// fewer than `T` modules; no conflict-free subsequence structure
    /// exists).
    pub fn for_matched(map: &XorMatched, family: StrideFamily) -> Result<Self, PlanError> {
        let x = family.exponent();
        if x > map.s() {
            return Err(PlanError::FamilyOutsideWindow {
                family: x,
                lo: 0,
                hi: map.s(),
            });
        }
        Ok(SubseqStructure {
            subseq_count: 1u64 << (map.s() - x),
            subseq_len: 1u64 << map.t(),
        })
    }

    /// Lemma 2 structure on the unmatched map's *lower* window
    /// (`x ≤ s`): subsequences step by `σ·2^s` and cover all `2^t`
    /// supermodules. Note the grouping granule is `2^{s+t−x}` — smaller
    /// than the full mapping period `2^{y+t−x}`.
    ///
    /// # Errors
    ///
    /// [`PlanError::FamilyOutsideWindow`] if `x > s`.
    pub fn for_unmatched_lower(
        map: &XorUnmatched,
        family: StrideFamily,
    ) -> Result<Self, PlanError> {
        let x = family.exponent();
        if x > map.s() {
            return Err(PlanError::FamilyOutsideWindow {
                family: x,
                lo: 0,
                hi: map.s(),
            });
        }
        Ok(SubseqStructure {
            subseq_count: 1u64 << (map.s() - x),
            subseq_len: 1u64 << map.t(),
        })
    }

    /// Lemma 4 structure on the unmatched map's *upper* window
    /// (`x ≤ y`): subsequences step by `σ·2^y` and cover all `2^t`
    /// sections.
    ///
    /// # Errors
    ///
    /// [`PlanError::FamilyOutsideWindow`] if `x > y`.
    pub fn for_unmatched_upper(
        map: &XorUnmatched,
        family: StrideFamily,
    ) -> Result<Self, PlanError> {
        let x = family.exponent();
        if x > map.y() {
            return Err(PlanError::FamilyOutsideWindow {
                family: x,
                lo: 0,
                hi: map.y(),
            });
        }
        Ok(SubseqStructure {
            subseq_count: 1u64 << (map.y() - x),
            subseq_len: 1u64 << map.t(),
        })
    }

    /// Elements per period, `subseq_count · subseq_len`.
    pub const fn period(&self) -> u64 {
        self.subseq_count * self.subseq_len
    }

    /// Number of subsequences per period (`2^{s−x}` or `2^{y−x}`).
    pub const fn subseq_count(&self) -> u64 {
        self.subseq_count
    }

    /// Elements per subsequence (`2^t`).
    pub const fn subseq_len(&self) -> u64 {
        self.subseq_len
    }

    /// Number of whole periods in a vector of length `len`, or an error
    /// if the length is not a multiple of the period (Theorem 2 requires
    /// `L = k·P_x`).
    ///
    /// # Errors
    ///
    /// [`PlanError::LengthNotCompatible`] when `len` is not a multiple
    /// of [`period`](Self::period).
    pub fn periods_in(&self, len: u64) -> Result<u64, PlanError> {
        let p = self.period();
        if !len.is_multiple_of(p) {
            return Err(PlanError::LengthNotCompatible { len, granule: p });
        }
        Ok(len / p)
    }

    /// The element indices of subsequence `j` of period `k`:
    /// `k·P + j + i·J` for `i = 0 .. 2^t`.
    pub fn subsequence_elements(&self, k: u64, j: u64) -> impl Iterator<Item = u64> + '_ {
        let start = k * self.period() + j;
        (0..self.subseq_len).map(move |i| start + i * self.subseq_count)
    }
}

/// The Figure 4 request order: for each period, for each subsequence,
/// request its `2^t` elements (addresses `σ·2^{s}` — or `σ·2^{y}` —
/// apart).
///
/// Each subsequence's temporal distribution is conflict free (Lemma 2 /
/// Lemma 4); the whole vector is not necessarily, but Section 3.1 shows
/// the added latency is at most `T − 1` cycles given two input buffers
/// and one output buffer per module.
///
/// # Errors
///
/// [`PlanError::LengthNotCompatible`] when `len` is not a multiple of
/// the structure's period.
///
/// # Examples
///
/// ```
/// use cfva_core::order::{subseq_order, SubseqStructure};
///
/// // 2 subsequences of 4: elements interleave even/odd.
/// let st = SubseqStructure::new(2, 4);
/// let order = subseq_order(&st, 8)?;
/// assert_eq!(order, vec![0, 2, 4, 6, 1, 3, 5, 7]);
/// # Ok::<(), cfva_core::PlanError>(())
/// ```
pub fn subseq_order(structure: &SubseqStructure, len: u64) -> Result<Vec<u64>, PlanError> {
    let mut order = Vec::new();
    subseq_order_into(structure, len, &mut order)?;
    Ok(order)
}

/// The Figure 4 request order, built into caller-owned storage.
///
/// `out` is cleared and refilled; allocation-free once it has grown to
/// the working size. Same semantics and errors as [`subseq_order`].
///
/// # Errors
///
/// See [`subseq_order`].
pub fn subseq_order_into(
    structure: &SubseqStructure,
    len: u64,
    out: &mut Vec<u64>,
) -> Result<(), PlanError> {
    let periods = structure.periods_in(len)?;
    out.clear();
    out.reserve(len as usize);
    for k in 0..periods {
        for j in 0..structure.subseq_count() {
            out.extend(structure.subsequence_elements(k, j));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{is_conflict_free, temporal_distribution};
    use crate::mapping::ModuleMap;
    use crate::order::is_permutation;
    use crate::vector::VectorSpec;

    #[test]
    fn paper_section_3_1_example() {
        // t = s = 3, stride 12 (x = 2), A1 = 16, L = 64.
        // First period: subsequences (0,2,...,14) and (1,3,...,15) in
        // modules (2,5,0,3,6,1,4,7) and (7,2,5,0,3,6,1,4).
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        assert_eq!(st.period(), 16);
        assert_eq!(st.subseq_count(), 2);

        let sub0: Vec<u64> = st.subsequence_elements(0, 0).collect();
        let sub1: Vec<u64> = st.subsequence_elements(0, 1).collect();
        assert_eq!(sub0, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(sub1, vec![1, 3, 5, 7, 9, 11, 13, 15]);

        let mods0: Vec<u64> = sub0
            .iter()
            .map(|&e| map.module_of(vec.element_addr(e)).get())
            .collect();
        let mods1: Vec<u64> = sub1
            .iter()
            .map(|&e| map.module_of(vec.element_addr(e)).get())
            .collect();
        assert_eq!(mods0, vec![2, 5, 0, 3, 6, 1, 4, 7]);
        assert_eq!(mods1, vec![7, 2, 5, 0, 3, 6, 1, 4]);
    }

    #[test]
    fn each_subsequence_is_conflict_free_but_whole_may_not_be() {
        // The paper's observation: subsequences are individually
        // conflict free, yet the concatenation need not be.
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        let order = subseq_order(&st, vec.len()).unwrap();
        assert!(is_permutation(&order, 64));

        // Per-subsequence: conflict free.
        for chunk in order.chunks(st.subseq_len() as usize) {
            let td = temporal_distribution(&map, &vec, chunk);
            assert!(is_conflict_free(&td, 8));
        }
        // Whole vector: not conflict free for this stride/base.
        let td = temporal_distribution(&map, &vec, &order);
        assert!(!is_conflict_free(&td, 8));
    }

    #[test]
    fn family_equal_s_degenerates_to_canonical() {
        let map = XorMatched::new(3, 3).unwrap();
        let st = SubseqStructure::for_matched(&map, 3.into()).unwrap();
        assert_eq!(st.subseq_count(), 1);
        let order = subseq_order(&st, 16).unwrap();
        assert_eq!(order, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn family_above_s_rejected() {
        let map = XorMatched::new(3, 3).unwrap();
        assert!(matches!(
            SubseqStructure::for_matched(&map, 4.into()),
            Err(PlanError::FamilyOutsideWindow { family: 4, .. })
        ));
    }

    #[test]
    fn length_must_be_multiple_of_period() {
        let st = SubseqStructure::new(2, 8); // period 16
        assert!(subseq_order(&st, 16).is_ok());
        assert!(subseq_order(&st, 48).is_ok()); // 3 periods: Section 5C case
        assert!(matches!(
            subseq_order(&st, 24),
            Err(PlanError::LengthNotCompatible {
                len: 24,
                granule: 16
            })
        ));
    }

    #[test]
    fn unmatched_lower_window_structure() {
        // Figure 7 map: t = 2, s = 3, y = 7; x = 1 <= s.
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let st = SubseqStructure::for_unmatched_lower(&map, 1.into()).unwrap();
        assert_eq!(st.subseq_count(), 4); // 2^{s-x} = 4
        assert_eq!(st.subseq_len(), 4); // 2^t
        assert_eq!(st.period(), 16); // the *mini*-period 2^{s+t-x}
        assert!(SubseqStructure::for_unmatched_lower(&map, 4.into()).is_err());
    }

    #[test]
    fn unmatched_upper_window_structure_matches_lemma_4() {
        // Figure 7 map, x = 4: 8 subsequences of 4 over period 32, and
        // each subsequence visits 4 distinct sections.
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let vec = VectorSpec::new(6, 16, 32).unwrap();
        let st = SubseqStructure::for_unmatched_upper(&map, vec.family()).unwrap();
        assert_eq!(st.subseq_count(), 8);
        assert_eq!(st.period(), 32);
        for j in 0..8 {
            let sections: std::collections::BTreeSet<u64> = st
                .subsequence_elements(0, j)
                .map(|e| map.section_of(vec.element_addr(e)))
                .collect();
            assert_eq!(sections.len(), 4, "subsequence {j}");
        }
    }

    #[test]
    fn multi_period_order_covers_everything_in_blocks() {
        let st = SubseqStructure::new(4, 2); // period 8
        let order = subseq_order(&st, 16).unwrap();
        assert_eq!(
            order,
            vec![0, 4, 1, 5, 2, 6, 3, 7, 8, 12, 9, 13, 10, 14, 11, 15]
        );
        assert!(is_permutation(&order, 16));
    }
}
