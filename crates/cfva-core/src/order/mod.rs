//! Element request orders.
//!
//! The paper's central idea is that the *order* in which the `L` elements
//! of a register-length vector are requested is a degree of freedom: the
//! processor may request them out of order and let the register file
//! reassemble them (it stores element `i` in slot `i` whenever it
//! arrives). Three orders are provided:
//!
//! * [`canonical_order`] — in element order; the baseline every prior
//!   scheme uses.
//! * [`subseq`] — the Section 3.1 ordering (Figure 4): walk the Lemma
//!   2/4 subsequences one after another. Each subsequence is conflict
//!   free on its own; the whole vector is *almost* conflict free
//!   (latency at most `2T + L` with two input buffers per module).
//! * [`replay`] — the Section 3.2/4.2 ordering: request every
//!   subsequence in the *same* module/supermodule/section order as the
//!   first one, which makes the whole access conflict free (`T + L + 1`
//!   cycles, no memory buffers needed).
//!
//! All orders are permutations of `0..L`, represented as `Vec<u64>` of
//! element indices in request order.

pub mod greedy;
pub mod replay;
pub mod subseq;

pub use greedy::{conflict_free_order_exists, greedy_conflict_free_order, SearchResult};
pub use replay::{replay_order, replay_order_into, ReplayKey, ReplayScratch};
pub use subseq::{subseq_order, subseq_order_into, SubseqStructure};

/// The canonical (in element order) request order: `0, 1, …, L−1`.
///
/// # Examples
///
/// ```
/// use cfva_core::order::canonical_order;
/// assert_eq!(canonical_order(4), vec![0, 1, 2, 3]);
/// ```
pub fn canonical_order(len: u64) -> Vec<u64> {
    (0..len).collect()
}

/// The canonical request order, built into caller-owned storage: `out`
/// is cleared and refilled with `0, 1, …, len−1`.
pub fn canonical_order_into(len: u64, out: &mut Vec<u64>) {
    out.clear();
    out.extend(0..len);
}

/// Checks that `order` is a permutation of `0..len` — every element
/// requested exactly once. All orders produced by this module satisfy
/// this; the check is used by validators and tests.
pub fn is_permutation(order: &[u64], len: u64) -> bool {
    if order.len() as u64 != len {
        return false;
    }
    let mut seen = vec![false; order.len()];
    for &e in order {
        if e >= len || seen[e as usize] {
            return false;
        }
        seen[e as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_identity() {
        assert_eq!(canonical_order(0), Vec::<u64>::new());
        assert_eq!(canonical_order(5), vec![0, 1, 2, 3, 4]);
        assert!(is_permutation(&canonical_order(64), 64));
    }

    #[test]
    fn permutation_checker() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3)); // wrong length
        assert!(!is_permutation(&[0, 0, 1], 3)); // duplicate
        assert!(!is_permutation(&[0, 1, 3], 3)); // out of range
        assert!(is_permutation(&[], 0));
    }
}
