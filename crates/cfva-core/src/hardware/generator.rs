//! The Figure 4/5 subsequence-order address generator.

use std::fmt;

use crate::address::Addr;
use crate::error::PlanError;
use crate::order::SubseqStructure;
use crate::vector::VectorSpec;

/// Compiler-provided configuration of the generator (paper Section 3.1:
/// "it is convenient that the compiler issues instructions to load the
/// values `σ·2^x`, `σ·2^s` and `2^{s−x}`").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeneratorConfig {
    /// Initial address `A1`.
    pub base: Addr,
    /// The element-to-element stride `σ·2^x` (signed).
    pub stride: i64,
    /// The within-subsequence increment `σ·2^s` (or `σ·2^y`), signed.
    pub subseq_stride: i64,
    /// Subsequences per period, `2^{s−x}`.
    pub subseq_count: u64,
    /// Elements per subsequence, `2^t`.
    pub subseq_len: u64,
    /// Number of periods, `L / (subseq_count · subseq_len)`.
    pub periods: u64,
}

impl GeneratorConfig {
    /// Derives the configuration for a vector access with a given
    /// subsequence structure, as the compiler would.
    ///
    /// # Errors
    ///
    /// [`PlanError::LengthNotCompatible`] when the vector length is not
    /// a whole number of periods.
    pub fn for_vector(vec: &VectorSpec, structure: &SubseqStructure) -> Result<Self, PlanError> {
        let periods = structure.periods_in(vec.len())?;
        let stride = vec.stride().get();
        Ok(GeneratorConfig {
            base: vec.base(),
            stride,
            subseq_stride: stride * structure.subseq_count() as i64,
            subseq_count: structure.subseq_count(),
            subseq_len: structure.subseq_len(),
            periods,
        })
    }
}

/// The Figure 4 control FSM with the Figure 5 datapath registers.
///
/// Each [`step`](AddressGenerator::step) emits one `(address, register)`
/// pair — the memory request address and the vector-register slot it
/// fills — exactly as the hardware would, using only register-to-
/// register adds of the two compiler-provided increments:
///
/// ```text
/// SUB = A1 ; A = A1
/// for K = 1 .. periods:
///     for J = 1 .. 2^{s−x}:
///         issue A                       (first element of subsequence)
///         for I = 2 .. 2^t:
///             A = A + σ·2^s ; issue A
///         if J < 2^{s−x}: (SUB, A) = SUB + σ·2^x
///     (SUB, A) = A + σ·2^x              (next period)
/// ```
///
/// The register number runs on a parallel pair (`REG`, `SUBREG`) with
/// increments `2^{s−x}` and `1` (Figure 5, right half).
///
/// The generator is an iterator; collecting it yields the exact
/// Section 3.1 subsequence order:
///
/// ```
/// use cfva_core::hardware::{AddressGenerator, GeneratorConfig};
/// use cfva_core::order::SubseqStructure;
/// use cfva_core::VectorSpec;
///
/// let vec = VectorSpec::new(16, 12, 64)?;
/// let st = SubseqStructure::new(2, 8);
/// let cfg = GeneratorConfig::for_vector(&vec, &st)?;
/// let first: Vec<u64> = AddressGenerator::new(cfg)
///     .map(|(addr, _reg)| addr.get())
///     .take(3)
///     .collect();
/// assert_eq!(first, vec![16, 40, 64]); // elements 0, 2, 4
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressGenerator {
    cfg: GeneratorConfig,
    /// Request address register.
    a: Addr,
    /// First address of the current subsequence.
    sub: Addr,
    /// Register-number register and its subsequence-start shadow.
    reg: u64,
    subreg: u64,
    /// Loop counters (0-based internally).
    i: u64,
    j: u64,
    k: u64,
    done: bool,
}

impl AddressGenerator {
    /// Creates the generator in its post-`load A1` state.
    pub fn new(cfg: GeneratorConfig) -> Self {
        AddressGenerator {
            cfg,
            a: cfg.base,
            sub: cfg.base,
            reg: 0,
            subreg: 0,
            i: 0,
            j: 0,
            k: 0,
            done: cfg.periods == 0 || cfg.subseq_count == 0 || cfg.subseq_len == 0,
        }
    }

    /// Total number of requests the generator will emit.
    pub fn total_requests(&self) -> u64 {
        self.cfg.periods * self.cfg.subseq_count * self.cfg.subseq_len
    }

    /// Emits the next `(address, register_number)` pair and advances the
    /// datapath registers, or `None` when the access is complete.
    pub fn step(&mut self) -> Option<(Addr, u64)> {
        if self.done {
            return None;
        }
        let issue = (self.a, self.reg);

        // Advance the FSM to the state holding the next issue.
        if self.i + 1 < self.cfg.subseq_len {
            // Inner loop: A += σ·2^s, REG += 2^{s−x}.
            self.i += 1;
            self.a = self.a.offset(self.cfg.subseq_stride);
            self.reg += self.cfg.subseq_count;
        } else if self.j + 1 < self.cfg.subseq_count {
            // Subsequence boundary: (SUB, A) = SUB + σ·2^x.
            self.i = 0;
            self.j += 1;
            self.sub = self.sub.offset(self.cfg.stride);
            self.a = self.sub;
            self.subreg += 1;
            self.reg = self.subreg;
        } else if self.k + 1 < self.cfg.periods {
            // Period boundary: (SUB, A) = A + σ·2^x.
            self.i = 0;
            self.j = 0;
            self.k += 1;
            self.a = self.a.offset(self.cfg.stride);
            self.sub = self.a;
            self.reg += 1;
            self.subreg = self.reg;
        } else {
            self.done = true;
        }
        Some(issue)
    }
}

impl Iterator for AddressGenerator {
    type Item = (Addr, u64);

    fn next(&mut self) -> Option<(Addr, u64)> {
        self.step()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let emitted = (self.k * self.cfg.subseq_count + self.j) * self.cfg.subseq_len + self.i;
        let rem = (self.total_requests() - emitted) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for AddressGenerator {}

impl fmt::Display for AddressGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "address generator (K={}, J={}, I={})",
            self.k, self.j, self.i
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::XorMatched;
    use crate::order::subseq_order;

    fn functional_stream(vec: &VectorSpec, st: &SubseqStructure) -> Vec<(u64, u64)> {
        subseq_order(st, vec.len())
            .unwrap()
            .into_iter()
            .map(|e| (vec.element_addr(e).get(), e))
            .collect()
    }

    #[test]
    fn matches_functional_order_paper_example() {
        // Section 3 example: t = s = 3, stride 12, A1 = 16, L = 64.
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        let cfg = GeneratorConfig::for_vector(&vec, &st).unwrap();
        let rtl: Vec<(u64, u64)> = AddressGenerator::new(cfg)
            .map(|(a, r)| (a.get(), r))
            .collect();
        assert_eq!(rtl, functional_stream(&vec, &st));
    }

    #[test]
    fn matches_functional_order_across_families_and_bases() {
        let map = XorMatched::new(2, 4).unwrap();
        for x in 0..=4u32 {
            for sigma in [1i64, 3, 5] {
                for base in [0u64, 7, 100, 1023] {
                    let stride = sigma << x;
                    let len = 1u64 << 8;
                    let vec = VectorSpec::new(base, stride, len).unwrap();
                    let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
                    if st.periods_in(len).is_err() {
                        continue;
                    }
                    let cfg = GeneratorConfig::for_vector(&vec, &st).unwrap();
                    let rtl: Vec<(u64, u64)> = AddressGenerator::new(cfg)
                        .map(|(a, r)| (a.get(), r))
                        .collect();
                    assert_eq!(
                        rtl,
                        functional_stream(&vec, &st),
                        "x={x} sigma={sigma} base={base}"
                    );
                }
            }
        }
    }

    #[test]
    fn register_numbers_are_element_indices() {
        let vec = VectorSpec::new(16, 12, 32).unwrap();
        let st = SubseqStructure::new(2, 8);
        let cfg = GeneratorConfig::for_vector(&vec, &st).unwrap();
        for (addr, reg) in AddressGenerator::new(cfg) {
            assert_eq!(addr.get() as i64, 16 + 12 * reg as i64);
        }
    }

    #[test]
    fn negative_stride_supported() {
        let vec = VectorSpec::new(1000, -12, 32).unwrap();
        let st = SubseqStructure::new(2, 8);
        let cfg = GeneratorConfig::for_vector(&vec, &st).unwrap();
        let rtl: Vec<(u64, u64)> = AddressGenerator::new(cfg)
            .map(|(a, r)| (a.get(), r))
            .collect();
        assert_eq!(rtl, functional_stream(&vec, &st));
    }

    #[test]
    fn exact_size_iterator() {
        let vec = VectorSpec::new(0, 4, 64).unwrap();
        let st = SubseqStructure::new(2, 8);
        let cfg = GeneratorConfig::for_vector(&vec, &st).unwrap();
        let mut gen = AddressGenerator::new(cfg);
        assert_eq!(gen.len(), 64);
        gen.next();
        assert_eq!(gen.len(), 63);
        assert_eq!(gen.total_requests(), 64);
        assert_eq!(gen.count(), 63);
    }

    #[test]
    fn single_subsequence_degenerates_to_strided_walk() {
        // x = s: one subsequence per period; addresses walk σ·2^s.
        let vec = VectorSpec::new(5, 8, 16).unwrap();
        let st = SubseqStructure::new(1, 8);
        let cfg = GeneratorConfig::for_vector(&vec, &st).unwrap();
        let addrs: Vec<u64> = AddressGenerator::new(cfg).map(|(a, _)| a.get()).collect();
        let want: Vec<u64> = (0..16).map(|i| 5 + 8 * i).collect();
        assert_eq!(addrs, want);
    }

    #[test]
    fn incompatible_length_rejected_at_config() {
        let vec = VectorSpec::new(0, 12, 24).unwrap();
        let st = SubseqStructure::new(2, 8); // period 16
        assert!(matches!(
            GeneratorConfig::for_vector(&vec, &st),
            Err(PlanError::LengthNotCompatible { .. })
        ));
    }
}
