//! Hardware component counts for the Section 5D comparison.

use std::fmt;

/// Component counts of one memory-access-module datapath variant.
///
/// The paper's claim (Section 5D, Figures 5 and 6): the proposed
/// out-of-order access needs *two* address generators instead of one, a
/// `2T`-entry latch file, a `T`-deep key queue and an arbiter — "a minor
/// part of the cost of the memory subsystem". These counts make the
/// comparison concrete; they are structural tallies of the figures, not
/// gate-level estimates.
///
/// # Examples
///
/// ```
/// use cfva_core::hardware::HardwareCost;
///
/// let ordered = HardwareCost::ordered();
/// let replay = HardwareCost::conflict_free_replay(8); // T = 8
/// assert_eq!(ordered.adders, 2);
/// assert_eq!(replay.adders, 4);
/// assert_eq!(replay.address_latches, 16); // 2T
/// assert!(replay.random_access_register_file);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HardwareCost {
    /// Address/register adders in the datapath.
    pub adders: u32,
    /// Loop counters (`I`, `J`, `K` in Figure 4).
    pub counters: u32,
    /// Datapath multiplexers.
    pub muxes: u32,
    /// Working registers (`A`, `SUB`, `REG`, `SUBREG`).
    pub working_registers: u32,
    /// Address latches for decoupled subsequences (`2T` in Figure 6).
    pub address_latches: u32,
    /// Entries of the key (temporal-distribution) queue.
    pub key_queue_entries: u32,
    /// Whether an arbiter reordering requests by key is needed.
    pub needs_arbiter: bool,
    /// Whether the vector register file must accept out-of-order writes
    /// (random access) rather than FIFO.
    pub random_access_register_file: bool,
}

impl HardwareCost {
    /// Cost of the classical in-order generator: one address adder
    /// (`A += S`), one element counter, plus the register-number
    /// counter.
    pub const fn ordered() -> Self {
        HardwareCost {
            adders: 2, // address += S; register += 1
            counters: 1,
            muxes: 1,
            working_registers: 2, // A, REG
            address_latches: 0,
            key_queue_entries: 0,
            needs_arbiter: false,
            random_access_register_file: false,
        }
    }

    /// Cost of the Figure 4/5 subsequence-order generator: a second
    /// address register (`SUB`) and adder, three loop counters, wider
    /// muxing — and nothing else.
    pub const fn subsequence() -> Self {
        HardwareCost {
            adders: 4, // A/SUB address adders + REG/SUBREG adders
            counters: 3,
            muxes: 4,
            working_registers: 4, // A, SUB, REG, SUBREG
            address_latches: 0,
            key_queue_entries: 0,
            needs_arbiter: false,
            random_access_register_file: true,
        }
    }

    /// Cost of the Figure 6 conflict-free replay engine for module
    /// latency `T`: duplicates the generator (the second is used only
    /// during the first `T` cycles), adds `2T` address latches, a
    /// `T`-deep key queue and the issue arbiter.
    pub const fn conflict_free_replay(t_cycles: u32) -> Self {
        HardwareCost {
            adders: 4,
            counters: 3,
            muxes: 5,
            working_registers: 8, // both generators' A/SUB/REG/SUBREG
            address_latches: 2 * t_cycles,
            key_queue_entries: t_cycles,
            needs_arbiter: true,
            random_access_register_file: true,
        }
    }

    /// A single scalar "complexity score" for coarse comparisons: the
    /// sum of all component counts (latches weighted like registers).
    pub const fn score(&self) -> u32 {
        self.adders
            + self.counters
            + self.muxes
            + self.working_registers
            + self.address_latches
            + self.key_queue_entries
            + self.needs_arbiter as u32
    }
}

impl fmt::Display for HardwareCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} adders, {} counters, {} muxes, {} regs, {} latches, {} queue, arbiter: {}, RA regfile: {}",
            self.adders,
            self.counters,
            self.muxes,
            self.working_registers,
            self.address_latches,
            self.key_queue_entries,
            self.needs_arbiter,
            self.random_access_register_file
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_is_cheapest() {
        let o = HardwareCost::ordered();
        let s = HardwareCost::subsequence();
        let r = HardwareCost::conflict_free_replay(8);
        assert!(o.score() < s.score());
        assert!(s.score() < r.score());
    }

    #[test]
    fn replay_latch_count_scales_with_t() {
        assert_eq!(HardwareCost::conflict_free_replay(4).address_latches, 8);
        assert_eq!(HardwareCost::conflict_free_replay(16).address_latches, 32);
        assert_eq!(HardwareCost::conflict_free_replay(16).key_queue_entries, 16);
    }

    #[test]
    fn paper_similar_complexity_claim() {
        // "The complexity is practically the same as that for the case in
        // which requests are in order": the non-latch datapath grows by
        // small constant factors only.
        let o = HardwareCost::ordered();
        let s = HardwareCost::subsequence();
        assert!(s.adders <= 2 * o.adders);
        assert!(s.counters <= 3 * o.counters);
        // The replay additions are O(T) latches, independent of L.
        let r = HardwareCost::conflict_free_replay(8);
        assert_eq!(r.address_latches, 16);
    }

    #[test]
    fn register_file_requirements() {
        assert!(!HardwareCost::ordered().random_access_register_file);
        assert!(HardwareCost::subsequence().random_access_register_file);
        assert!(HardwareCost::conflict_free_replay(8).random_access_register_file);
    }

    #[test]
    fn display_lists_components() {
        let s = HardwareCost::conflict_free_replay(8).to_string();
        assert!(s.contains("4 adders"));
        assert!(s.contains("16 latches"));
    }
}
