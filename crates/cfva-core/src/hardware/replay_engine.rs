//! The Figure 6 dual-generator replay engine.

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::error::PlanError;
use crate::hardware::generator::{AddressGenerator, GeneratorConfig};
use crate::mapping::ModuleMap;
use crate::order::{replay_order, ReplayKey, SubseqStructure};
use crate::vector::VectorSpec;

/// One memory request issued by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineRequest {
    /// Cycle the request is put on the address bus (0-based).
    pub cycle: u64,
    /// Element index (also the register slot for the returned datum).
    pub element: u64,
    /// Request address.
    pub addr: Addr,
    /// Target module.
    pub module: ModuleId,
}

/// Occupancy statistics of the engine's latch file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total cycles stepped.
    pub cycles: u64,
    /// Highest number of simultaneously latched addresses per key —
    /// the paper claims 2 suffice (two latches per supermodule).
    pub max_latches_per_key: u32,
    /// Highest total latch occupancy — bounded by `2T`.
    pub max_latches_total: u32,
}

/// Cycle-stepped model of the paper's Figure 6 memory-access module.
///
/// Operation:
///
/// * **Startup (first `2^t` cycles):** generator 1 computes the
///   addresses of the first subsequence — issued to memory immediately,
///   their key order recorded in a `T`-deep queue. In parallel,
///   generator 2 computes the second subsequence into the latch file.
/// * **Steady state:** requests issue from the latch file in the
///   recorded key order (one per cycle) while the single remaining
///   generator computes the *next* subsequence into the latch bank just
///   vacated.
///
/// The latch file is keyed (by module, supermodule or section per
/// [`ReplayKey`]) with two banks — `2·2^t` latches total, matching the
/// paper's Section 4.2 count — and the issue stream is cycle-for-cycle
/// the conflict-free order of [`replay_order`].
///
/// # Examples
///
/// ```
/// use cfva_core::hardware::ReplayEngine;
/// use cfva_core::mapping::XorMatched;
/// use cfva_core::order::{ReplayKey, SubseqStructure};
/// use cfva_core::VectorSpec;
///
/// let map = XorMatched::new(3, 3)?;
/// let vec = VectorSpec::new(16, 12, 64)?;
/// let st = SubseqStructure::for_matched(&map, vec.family())?;
/// let mut engine = ReplayEngine::new(&map, &vec, &st, ReplayKey::Module)?;
/// let requests: Vec<_> = std::iter::from_fn(|| engine.step()).collect();
/// assert_eq!(requests.len(), 64);
/// assert!(engine.stats().max_latches_per_key <= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ReplayEngine<'a> {
    map: &'a dyn ModuleMap,
    key: ReplayKey,
    subseq_len: u64,
    total: u64,
    /// Compute-side generator for the first subsequence (generator 1).
    gen_a: AddressGenerator,
    /// Compute-side generator for everything after it (generator 2,
    /// which becomes "the" generator in steady state).
    gen_b: AddressGenerator,
    /// Key order of the first subsequence: `key_queue[r]` = key issued
    /// at rank `r` of every subsequence.
    key_queue: Vec<u64>,
    /// Two latch banks indexed `[block parity][key]`.
    latches: [Vec<Option<(u64, Addr)>>; 2],
    latched_now: u32,
    cycle: u64,
    stats: EngineStats,
}

impl<'a> ReplayEngine<'a> {
    /// Builds the engine and validates that the access is replayable
    /// (every subsequence visits every key exactly once).
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_order`]:
    /// [`PlanError::LengthNotCompatible`] or
    /// [`PlanError::ReplayKeyCollision`].
    pub fn new(
        map: &'a dyn ModuleMap,
        vec: &VectorSpec,
        structure: &SubseqStructure,
        key: ReplayKey,
    ) -> Result<Self, PlanError> {
        // Validates length and key bijectivity per subsequence.
        replay_order(&map, vec, structure, key)?;

        let cfg = GeneratorConfig::for_vector(vec, structure)?;
        let gen_a = AddressGenerator::new(cfg);
        let mut gen_b = AddressGenerator::new(cfg);
        // Generator 2 starts at the second subsequence.
        for _ in 0..structure.subseq_len() {
            gen_b.step();
        }

        let key_count = (map.module_count() as usize).max(structure.subseq_len() as usize);
        Ok(ReplayEngine {
            map,
            key,
            subseq_len: structure.subseq_len(),
            total: vec.len(),
            gen_a,
            gen_b,
            key_queue: Vec::with_capacity(structure.subseq_len() as usize),
            latches: [vec![None; key_count], vec![None; key_count]],
            latched_now: 0,
            cycle: 0,
            stats: EngineStats::default(),
        })
    }

    /// Issues the next request (one per cycle), or `None` when the
    /// access completed.
    pub fn step(&mut self) -> Option<EngineRequest> {
        if self.cycle >= self.total {
            return None;
        }
        let cycle = self.cycle;
        let t = self.subseq_len;

        // Compute side: one address per cycle from the steady-state
        // generator, latched for the *next* subsequence. Generator 2 was
        // advanced one subsequence at construction, so the element it
        // emits at cycle c belongs to subsequence c/T + 1 — exactly the
        // one due to issue after the current one.
        if let Some((addr, element)) = self.gen_b.step() {
            let kk = self.key.key_of(self.map.module_of(addr)) as usize;
            // The subsequence being latched is the one after the one
            // being issued; banks alternate by subsequence parity.
            let fill_block = cycle / t + 1;
            let bank = (fill_block % 2) as usize;
            debug_assert!(
                self.latches[bank][kk].is_none(),
                "latch overrun at key {kk}"
            );
            self.latches[bank][kk] = Some((element, addr));
            self.latched_now += 1;
            self.note_occupancy();
        }

        // Issue side.
        let request = if cycle < t {
            // Startup: generator 1 feeds the bus directly.
            // cfva-lint: allow(L002, reason = "during startup (cycle < t) generator A still holds the whole first subsequence, so step() cannot be exhausted")
            let (addr, element) = self.gen_a.step().expect("first subsequence");
            let module = self.map.module_of(addr);
            self.key_queue.push(self.key.key_of(module));
            EngineRequest {
                cycle,
                element,
                addr,
                module,
            }
        } else {
            let block = cycle / t;
            let rank = (cycle % t) as usize;
            let kk = self.key_queue[rank] as usize;
            let bank = (block % 2) as usize;
            let (element, addr) = self.latches[bank][kk]
                .take()
                // cfva-lint: allow(L002, reason = "the key schedule guarantees every steady-state slot was latched exactly one block earlier; construction validates the schedule")
                .expect("latched entry present (validated at construction)");
            self.latched_now -= 1;
            EngineRequest {
                cycle,
                element,
                addr,
                module: self.map.module_of(addr),
            }
        };

        self.cycle += 1;
        self.stats.cycles = self.cycle;
        Some(request)
    }

    fn note_occupancy(&mut self) {
        self.stats.max_latches_total = self.stats.max_latches_total.max(self.latched_now);
        // Per-key occupancy: a key appears at most once per bank.
        let mut per_key_max = 0u32;
        for k in 0..self.latches[0].len() {
            let n = self.latches[0][k].is_some() as u32 + self.latches[1][k].is_some() as u32;
            per_key_max = per_key_max.max(n);
        }
        self.stats.max_latches_per_key = self.stats.max_latches_per_key.max(per_key_max);
    }

    /// Occupancy statistics accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

impl fmt::Debug for ReplayEngine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplayEngine")
            .field("cycle", &self.cycle)
            .field("total", &self.total)
            .field("key", &self.key)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{XorMatched, XorUnmatched};

    #[test]
    fn engine_reproduces_replay_order_matched() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        let expected = replay_order(&map, &vec, &st, ReplayKey::Module).unwrap();

        let mut engine = ReplayEngine::new(&map, &vec, &st, ReplayKey::Module).unwrap();
        let mut elements = Vec::new();
        let mut cycle = 0u64;
        while let Some(req) = engine.step() {
            assert_eq!(req.cycle, cycle);
            assert_eq!(req.addr, vec.element_addr(req.element));
            elements.push(req.element);
            cycle += 1;
        }
        assert_eq!(elements, expected);
    }

    #[test]
    fn two_latches_per_key_suffice() {
        let map = XorMatched::new(3, 3).unwrap();
        for (base, stride, len) in [(16u64, 12i64, 64u64), (0, 3, 64), (37, 20, 128), (5, 6, 64)] {
            let vec = VectorSpec::new(base, stride, len).unwrap();
            let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
            if st.periods_in(len).is_err() {
                continue;
            }
            let mut engine = ReplayEngine::new(&map, &vec, &st, ReplayKey::Module).unwrap();
            while engine.step().is_some() {}
            let stats = engine.stats();
            assert!(
                stats.max_latches_per_key <= 2,
                "base {base} stride {stride}: {stats:?}"
            );
            assert!(stats.max_latches_total <= 2 * 8);
            assert_eq!(stats.cycles, len);
        }
    }

    #[test]
    fn engine_reproduces_replay_order_unmatched_sections() {
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let vec = VectorSpec::new(6, 16, 32).unwrap(); // Figure 7 italic vector
        let st = SubseqStructure::for_unmatched_upper(&map, vec.family()).unwrap();
        let key = ReplayKey::Section { t: 2 };
        let expected = replay_order(&map, &vec, &st, key).unwrap();

        let mut engine = ReplayEngine::new(&map, &vec, &st, key).unwrap();
        let elements: Vec<u64> = std::iter::from_fn(|| engine.step().map(|r| r.element)).collect();
        assert_eq!(elements, expected);
        assert!(engine.stats().max_latches_per_key <= 2);
    }

    #[test]
    fn engine_reproduces_replay_order_unmatched_supermodules() {
        let map = XorUnmatched::new(2, 3, 7).unwrap();
        let vec = VectorSpec::new(100, 6, 64).unwrap(); // x = 1 lower window
        let st = SubseqStructure::for_unmatched_lower(&map, vec.family()).unwrap();
        let key = ReplayKey::Supermodule { t: 2 };
        let expected = replay_order(&map, &vec, &st, key).unwrap();

        let mut engine = ReplayEngine::new(&map, &vec, &st, key).unwrap();
        let elements: Vec<u64> = std::iter::from_fn(|| engine.step().map(|r| r.element)).collect();
        assert_eq!(elements, expected);
    }

    #[test]
    fn invalid_access_rejected_at_construction() {
        let map = XorMatched::new(3, 3).unwrap();
        let vec = VectorSpec::new(0, 16, 64).unwrap(); // x = 4 > s
        let st = SubseqStructure::new(1, 8);
        assert!(ReplayEngine::new(&map, &vec, &st, ReplayKey::Module).is_err());
    }

    #[test]
    fn issue_stream_is_conflict_free() {
        use crate::dist::is_conflict_free;
        let map = XorMatched::new(3, 4).unwrap();
        let vec = VectorSpec::new(1234, 24, 128).unwrap(); // x = 3
        let st = SubseqStructure::for_matched(&map, vec.family()).unwrap();
        let mut engine = ReplayEngine::new(&map, &vec, &st, ReplayKey::Module).unwrap();
        let modules: Vec<_> = std::iter::from_fn(|| engine.step().map(|r| r.module)).collect();
        assert!(is_conflict_free(&modules, 8));
    }
}
