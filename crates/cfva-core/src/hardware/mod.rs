//! Register-transfer-level models of the paper's address-generation
//! hardware.
//!
//! The paper argues (Section 5D) that the proposed out-of-order access
//! needs address hardware "of similar complexity" to plain in-order
//! access. These models make that argument executable:
//!
//! * [`AddressGenerator`] — the Figure 4 control / Figure 5 datapath: a
//!   two-register (`A`, `SUB`), three-counter (`I`, `J`, `K`) stepper
//!   that emits one address and one register number per cycle using only
//!   the compiler-provided increments `σ·2^x` and `σ·2^s`.
//! * [`ReplayEngine`] — the Figure 6 organisation: two generators, a
//!   `2T`-entry latch file and a `T`-deep key queue that replays every
//!   subsequence in the first subsequence's key order, issuing one
//!   conflict-free request per cycle.
//! * [`HardwareCost`] — component counts for the Section 5D comparison.
//!
//! Tests verify cycle-for-cycle equivalence with the functional planner
//! in [`crate::order`].

mod cost;
mod generator;
mod replay_engine;

pub use cost::HardwareCost;
pub use generator::{AddressGenerator, GeneratorConfig};
pub use replay_engine::{EngineStats, ReplayEngine};
