//! Runtime map selection: spec strings and the name → constructor
//! registry.
//!
//! The paper's whole evaluation is *comparing storage schemes on the
//! same access streams*; this module makes the scheme a **runtime
//! value** instead of a compile-time type. A [`MapSpec`] is parsed from
//! a compact string grammar:
//!
//! ```text
//! spec   := name [ ':' param ( ',' param )* ]
//! param  := key '=' value
//! value  := anything but ',' (integers take 0x/0b prefixes and '_')
//! ```
//!
//! e.g. `interleaved:m=3`, `skewed:m=8,d=1,t=4`,
//! `xor-matched:t=3,s=4`, `custom-gf2:matrix=@maps/fft.gf2`. A
//! [`Registry`] resolves the name to a constructor; [`Registry::builtin`]
//! pre-registers every map in this crate:
//!
//! | name | keys | map |
//! |---|---|---|
//! | `interleaved` | `m` | [`Interleaved`] |
//! | `skewed` | `m`, `d` (default 1) | [`Skewed`] |
//! | `xor-matched` | `t`, `s` | [`XorMatched`] |
//! | `xor-unmatched` | `t`, `s`, `y` | [`XorUnmatched`] |
//! | `linear` | `rows` *or* `matrix=@file` | [`Linear`] |
//! | `pseudo-random` | `m`, `poly` (default primitive), `bits` (default 40) | [`PseudoRandom`] |
//! | `region` | `t`, `bits`, `s`, `regions` (e.g. `1:6\|2:4`) | [`RegionMap`] |
//! | `custom-gf2` | `rows` [+ `cols`] *or* `matrix=@file` | [`CustomGf2`] |
//!
//! Every spec additionally accepts `t=<exponent>` naming the module
//! latency `T = 2^t` for planning and simulation (for the XOR maps and
//! `region` that *is* the map's own `t`; for the rest it defaults to
//! the module-bit count, i.e. a matched memory). Matrix-valued keys
//! take either `@path` (the [`CustomGf2::from_file`] text format) or
//! inline `|`-separated row bitmasks.
//!
//! [`Registry::all_specs`] iterates a canonical coverage spec per
//! registered map, which is what the property/equivalence suites and
//! benches loop over — a map registered here is automatically covered
//! by every suite.

use std::fmt;
use std::str::FromStr;

use crate::error::ConfigError;
use crate::mapping::{
    CustomGf2, Interleaved, Linear, ModuleMap, PseudoRandom, RegionMap, Skewed, XorMatched,
    XorUnmatched,
};
use crate::plan::Planner;

/// A parsed map spec: the map name plus its `key=value` parameters in
/// written order. Parsing and [`Display`](fmt::Display) round-trip:
/// `MapSpec::parse(spec.to_string()) == spec`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MapSpec {
    name: String,
    params: Vec<(String, String)>,
}

impl MapSpec {
    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`ConfigError::SpecSyntax`] for grammar violations and
    /// [`ConfigError::DuplicateKey`] for repeated keys. Whether the
    /// *name* is known is the [`Registry`]'s business, not the
    /// parser's.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let syntax = |reason: String| ConfigError::SpecSyntax {
            spec: spec.to_string(),
            reason,
        };
        let (name, rest) = match spec.split_once(':') {
            Some((name, rest)) => (name, Some(rest)),
            None => (spec, None),
        };
        if name.is_empty() {
            return Err(syntax("empty map name".to_string()));
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
        {
            return Err(syntax(format!(
                "map name {name:?} may only contain lowercase letters, digits, '-' and '_'"
            )));
        }
        let mut params = Vec::new();
        if let Some(rest) = rest {
            if rest.is_empty() {
                return Err(syntax("trailing ':' with no parameters".to_string()));
            }
            for param in rest.split(',') {
                let Some((key, value)) = param.split_once('=') else {
                    return Err(syntax(format!("parameter {param:?} has no '='")));
                };
                if key.is_empty() {
                    return Err(syntax(format!("parameter {param:?} has an empty key")));
                }
                if value.is_empty() {
                    return Err(syntax(format!("parameter {key:?} has an empty value")));
                }
                if params.iter().any(|(k, _)| k == key) {
                    return Err(ConfigError::DuplicateKey {
                        key: key.to_string(),
                    });
                }
                params.push((key.to_string(), value.to_string()));
            }
        }
        Ok(MapSpec {
            name: name.to_string(),
            params,
        })
    }

    /// The map name the spec addresses.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw value of a key, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The parameters in written order.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Rejects any key outside `accepted` — so a typo'd key fails
    /// loudly naming what *is* accepted, instead of being ignored.
    pub fn check_keys(&self, accepted: &'static [&'static str]) -> Result<(), ConfigError> {
        for (key, _) in &self.params {
            if !accepted.contains(&key.as_str()) {
                return Err(ConfigError::UnknownKey {
                    map: self.name.clone(),
                    key: key.clone(),
                    accepted,
                });
            }
        }
        Ok(())
    }

    /// An optional unsigned-integer value (decimal, `0x`, `0b`, with
    /// `_` separators).
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidValue`] when present but unparsable.
    pub fn u64_value(&self, key: &str) -> Result<Option<u64>, ConfigError> {
        self.get(key)
            .map(|v| {
                parse_u64(v).ok_or_else(|| ConfigError::InvalidValue {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "an unsigned integer (decimal, 0x… or 0b…)",
                })
            })
            .transpose()
    }

    /// A required unsigned-integer value.
    ///
    /// # Errors
    ///
    /// [`ConfigError::MissingKey`] when absent, otherwise as
    /// [`u64_value`](Self::u64_value).
    pub fn require_u64(&self, key: &'static str) -> Result<u64, ConfigError> {
        self.u64_value(key)?.ok_or(ConfigError::MissingKey {
            map: self.name.clone(),
            key,
        })
    }

    /// [`require_u64`](Self::require_u64) narrowed to `u32` (every
    /// exponent-shaped parameter).
    pub fn require_u32(&self, key: &'static str) -> Result<u32, ConfigError> {
        let v = self.require_u64(key)?;
        u32::try_from(v).map_err(|_| ConfigError::InvalidValue {
            key: key.to_string(),
            value: v.to_string(),
            expected: "a value fitting u32",
        })
    }

    /// Optional `u32` value.
    ///
    /// # Errors
    ///
    /// As [`u64_value`](Self::u64_value), plus range.
    pub fn u32_value(&self, key: &str) -> Result<Option<u32>, ConfigError> {
        self.u64_value(key)?
            .map(|v| {
                u32::try_from(v).map_err(|_| ConfigError::InvalidValue {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "a value fitting u32",
                })
            })
            .transpose()
    }

    /// The canonical form of this spec: parameters sorted by key and
    /// integer literals normalized to decimal (`0x2a`, `0b10_1010` and
    /// `42` all canonicalize to `42`), component-wise across
    /// `|`-separated lists and `a:b` pairs. `@file` references and
    /// non-integer values are kept verbatim.
    ///
    /// Two spellings of the same configuration — key order, radix,
    /// `_` separators — share one canonical form, so the canonical
    /// spec's `Eq + Hash` is a configuration identity usable as a
    /// cache or session key. [`Display`](fmt::Display) of the
    /// *original* spec still reproduces the written text; only the
    /// canonical copy is normalized, and the canonical form itself
    /// round-trips `parse`/`Display` unchanged
    /// (`canonical().canonical() == canonical()`).
    pub fn canonical(&self) -> MapSpec {
        let mut params: Vec<(String, String)> = self
            .params
            .iter()
            .map(|(k, v)| (k.clone(), canonical_value(v)))
            .collect();
        params.sort_by(|a, b| a.0.cmp(&b.0));
        MapSpec {
            name: self.name.clone(),
            params,
        }
    }

    /// A GF(2) matrix value from either `matrix=@file` (the
    /// [`CustomGf2`] text format) or inline `rows=mask|mask|…`
    /// bitmasks, as `(rows, cols)`; inline widths default to the
    /// highest set bit unless `cols=` is given.
    ///
    /// # Errors
    ///
    /// [`ConfigError::MissingKey`] when neither key is present,
    /// [`ConfigError::SpecSyntax`] when both are,
    /// [`ConfigError::InvalidValue`] for bad masks, and file errors
    /// from [`CustomGf2::from_file`].
    pub fn matrix_value(&self) -> Result<(Vec<u64>, u32), ConfigError> {
        match (self.get("matrix"), self.get("rows")) {
            (Some(_), Some(_)) => Err(ConfigError::SpecSyntax {
                spec: self.to_string(),
                reason: "keys \"matrix\" and \"rows\" are mutually exclusive".to_string(),
            }),
            (Some(value), None) => {
                let Some(path) = value.strip_prefix('@') else {
                    return Err(ConfigError::InvalidValue {
                        key: "matrix".to_string(),
                        value: value.to_string(),
                        expected: "a file reference: matrix=@path/to/file.gf2",
                    });
                };
                let map = CustomGf2::from_file(path)?;
                Ok((map.rows().to_vec(), map.cols()))
            }
            (None, Some(value)) => {
                let mut rows = Vec::new();
                for mask in value.split('|') {
                    let row = parse_u64(mask).ok_or_else(|| ConfigError::InvalidValue {
                        key: "rows".to_string(),
                        value: mask.to_string(),
                        expected: "'|'-separated row bitmasks (decimal, 0x… or 0b…)",
                    })?;
                    rows.push(row);
                }
                let cols = match self.u32_value("cols")? {
                    Some(c) => c,
                    None => rows
                        .iter()
                        .map(|r| 64 - r.leading_zeros())
                        .max()
                        .unwrap_or(0),
                };
                Ok((rows, cols))
            }
            (None, None) => Err(ConfigError::MissingKey {
                map: self.name.clone(),
                key: "matrix (or rows)",
            }),
        }
    }
}

impl FromStr for MapSpec {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, ConfigError> {
        MapSpec::parse(s)
    }
}

impl fmt::Display for MapSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (key, value)) in self.params.iter().enumerate() {
            write!(f, "{}{key}={value}", if i == 0 { ':' } else { ',' })?;
        }
        Ok(())
    }
}

/// Normalizes one parameter value for [`MapSpec::canonical`]:
/// `|`-separated components and `a:b` pairs are normalized
/// component-wise; `@file` references pass through verbatim.
fn canonical_value(value: &str) -> String {
    if value.starts_with('@') {
        return value.to_string();
    }
    value
        .split('|')
        .map(|component| match component.split_once(':') {
            Some((a, b)) => format!("{}:{}", canonical_atom(a), canonical_atom(b)),
            None => canonical_atom(component),
        })
        .collect::<Vec<_>>()
        .join("|")
}

/// Normalizes one atom: integer literals become decimal, anything else
/// is kept verbatim.
fn canonical_atom(atom: &str) -> String {
    match parse_u64(atom) {
        Some(n) => n.to_string(),
        None => atom.to_string(),
    }
}

/// Parses an unsigned integer with optional `0x`/`0b` prefix and `_`
/// separators. `None` on anything else.
fn parse_u64(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    if clean.is_empty() {
        return None;
    }
    if let Some(hex) = clean.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = clean.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else {
        clean.parse().ok()
    }
}

/// A map constructor: builds a boxed [`ModuleMap`] from a parsed spec.
pub type MapConstructor = fn(&MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError>;

struct RegistryEntry {
    name: String,
    ctor: MapConstructor,
    /// Canonical coverage specs, pre-validated at registration: what
    /// [`Registry::all_specs`] iterates.
    coverage: Vec<MapSpec>,
}

impl fmt::Debug for RegistryEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegistryEntry")
            .field("name", &self.name)
            .field("coverage", &self.coverage)
            .finish_non_exhaustive()
    }
}

/// The name → constructor table. [`Registry::builtin`] carries every
/// map in this crate; [`Registry::register`] adds user maps, which the
/// iteration surfaces ([`all_specs`](Registry::all_specs),
/// [`all_maps`](Registry::all_maps)) then cover exactly like the
/// built-ins.
///
/// # Examples
///
/// ```
/// use cfva_core::mapping::registry::{MapSpec, Registry};
/// use cfva_core::mapping::ModuleMap;
/// use cfva_core::Addr;
///
/// let registry = Registry::builtin();
/// let map = registry.build_str("xor-matched:t=3,s=3")?;
/// assert_eq!(map.module_count(), 8);
/// assert_eq!(map.module_of(Addr::new(9)).get(), 0);
///
/// // Unknown names fail with the registered names in the message.
/// let err = registry.build_str("xor-macthed:t=3,s=3").unwrap_err();
/// assert!(err.to_string().contains("xor-matched"));
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

impl Registry {
    /// An empty registry (no names known).
    pub fn new() -> Self {
        Registry {
            entries: Vec::new(),
        }
    }

    /// The registry with every built-in map pre-registered, in the
    /// order the paper discusses them.
    pub fn builtin() -> Self {
        let mut registry = Registry::new();
        let builtins: [(&str, MapConstructor, &[&str]); 8] = [
            ("interleaved", build_interleaved, &["interleaved:m=3"]),
            ("skewed", build_skewed, &["skewed:m=3,d=3"]),
            ("xor-matched", build_xor_matched, &["xor-matched:t=3,s=4"]),
            (
                "xor-unmatched",
                build_xor_unmatched,
                &["xor-unmatched:t=3,s=4,y=9"],
            ),
            (
                "linear",
                build_linear,
                &["linear:rows=0b1_0010_1101|0b0_1101_1010|0b1_1000_0111"],
            ),
            (
                "pseudo-random",
                build_pseudo_random,
                &["pseudo-random:m=3,bits=14"],
            ),
            (
                "region",
                build_region,
                &["region:t=3,bits=10,s=3,regions=1:6"],
            ),
            (
                "custom-gf2",
                build_custom_gf2,
                // Equation (1) of the paper with t = 3, s = 3 — the
                // Figure 3 storage, written as an explicit matrix.
                &["custom-gf2:rows=0b001001|0b010010|0b100100,cols=6"],
            ),
        ];
        for (name, ctor, coverage) in builtins {
            registry
                .register(name, ctor, coverage)
                // cfva-lint: allow(L002, reason = "the builtin table is static: names are unique and every coverage spec is exercised by the registry tests")
                .expect("built-in registration is static and valid");
        }
        registry
    }

    /// Registers a map under `name`. `coverage` lists canonical specs
    /// for the [`all_specs`](Self::all_specs)/[`all_maps`](Self::all_maps)
    /// iteration — each is parsed *and constructed once* here, so a
    /// registered map is known-buildable.
    ///
    /// # Errors
    ///
    /// [`ConfigError::DuplicateMap`] if the name is taken; parse or
    /// construction errors from the coverage specs.
    pub fn register(
        &mut self,
        name: &str,
        ctor: MapConstructor,
        coverage: &[&str],
    ) -> Result<(), ConfigError> {
        if self.entries.iter().any(|e| e.name == name) {
            return Err(ConfigError::DuplicateMap {
                name: name.to_string(),
            });
        }
        let mut specs = Vec::with_capacity(coverage.len());
        for text in coverage {
            let spec = MapSpec::parse(text)?;
            if spec.name() != name {
                return Err(ConfigError::SpecSyntax {
                    spec: (*text).to_string(),
                    reason: format!("coverage spec names {:?}, not {name:?}", spec.name()),
                });
            }
            ctor(&spec)?; // known-buildable or refuse registration
            specs.push(spec);
        }
        self.entries.push(RegistryEntry {
            name: name.to_string(),
            ctor,
            coverage: specs,
        });
        Ok(())
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Builds the map a parsed spec describes.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownMap`] (listing the registered names) when
    /// the name has no entry; otherwise whatever the constructor
    /// rejects.
    pub fn build(&self, spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == spec.name())
            .ok_or_else(|| ConfigError::UnknownMap {
                name: spec.name().to_string(),
                registered: self.names().iter().map(|n| n.to_string()).collect(),
            })?;
        (entry.ctor)(spec)
    }

    /// Parses and builds in one step.
    ///
    /// # Errors
    ///
    /// Parse errors from [`MapSpec::parse`] plus everything
    /// [`build`](Self::build) rejects.
    pub fn build_str(&self, spec: &str) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
        self.build(&MapSpec::parse(spec)?)
    }

    /// One canonical coverage spec per registered map (pre-validated at
    /// registration) — the exhaustive-iteration surface for tests and
    /// benches.
    pub fn all_specs(&self) -> Vec<MapSpec> {
        self.entries
            .iter()
            .flat_map(|e| e.coverage.iter().cloned())
            .collect()
    }

    /// Builds every coverage spec: `(spec, map)` pairs in registration
    /// order.
    pub fn all_maps(&self) -> Vec<(MapSpec, Box<dyn ModuleMap + Send + Sync>)> {
        self.all_specs()
            .into_iter()
            .map(|spec| {
                let map = self
                    .build(&spec)
                    // cfva-lint: allow(L002, reason = "register() parses and constructs every coverage spec, so a registered spec is known-buildable")
                    .expect("coverage specs are validated at registration");
                (spec, map)
            })
            .collect()
    }

    /// Builds the [`Planner`] a spec describes: `xor-matched` and
    /// `xor-unmatched` get their out-of-order planners, everything else
    /// plans in order ([`Planner::baseline`]) with the latency exponent
    /// from the spec's `t` key (default: the map's module-bit count,
    /// i.e. a matched memory).
    ///
    /// # Errors
    ///
    /// Everything [`build`](Self::build) rejects — in particular a
    /// name this registry has not registered is [`ConfigError::UnknownMap`]
    /// here too, so `planner` and `build` always agree on what the
    /// registry contains.
    pub fn planner(&self, spec: &MapSpec) -> Result<Planner, ConfigError> {
        if !self.entries.iter().any(|e| e.name == spec.name()) {
            return Err(ConfigError::UnknownMap {
                name: spec.name().to_string(),
                registered: self.names().iter().map(|n| n.to_string()).collect(),
            });
        }
        match spec.name() {
            "xor-matched" => Ok(Planner::matched(xor_matched_params(spec)?)),
            "xor-unmatched" => Ok(Planner::unmatched(xor_unmatched_params(spec)?)),
            _ => {
                let map = self.build(spec)?;
                let t = match spec.u32_value("t")? {
                    Some(t) => t,
                    None => map.module_bits(),
                };
                Ok(Planner::baseline(map, t))
            }
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

fn xor_matched_params(spec: &MapSpec) -> Result<XorMatched, ConfigError> {
    spec.check_keys(&["t", "s"])?;
    XorMatched::new(spec.require_u32("t")?, spec.require_u32("s")?)
}

fn xor_unmatched_params(spec: &MapSpec) -> Result<XorUnmatched, ConfigError> {
    spec.check_keys(&["t", "s", "y"])?;
    XorUnmatched::new(
        spec.require_u32("t")?,
        spec.require_u32("s")?,
        spec.require_u32("y")?,
    )
}

fn build_interleaved(spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
    spec.check_keys(&["m", "t"])?;
    Ok(Box::new(Interleaved::new(spec.require_u32("m")?)?))
}

fn build_skewed(spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
    spec.check_keys(&["m", "d", "t"])?;
    let d = spec.u64_value("d")?.unwrap_or(1);
    Ok(Box::new(Skewed::new(spec.require_u32("m")?, d)?))
}

fn build_xor_matched(spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
    Ok(Box::new(xor_matched_params(spec)?))
}

fn build_xor_unmatched(spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
    Ok(Box::new(xor_unmatched_params(spec)?))
}

fn build_linear(spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
    // No `cols` here: Linear derives its width from the highest set
    // bit and would silently ignore a declared one — use `custom-gf2`
    // for explicit-width matrices.
    spec.check_keys(&["rows", "matrix", "m", "t"])?;
    let (rows, _cols) = spec.matrix_value()?;
    if let Some(m) = spec.u32_value("m")? {
        if m as usize != rows.len() {
            return Err(ConfigError::InvalidValue {
                key: "m".to_string(),
                value: m.to_string(),
                expected: "m equal to the number of matrix rows",
            });
        }
    }
    Ok(Box::new(Linear::new(rows)?))
}

fn build_pseudo_random(spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
    spec.check_keys(&["m", "poly", "bits", "t"])?;
    let m = spec.require_u32("m")?;
    let poly = match spec.u64_value("poly")? {
        Some(p) => p,
        None => PseudoRandom::with_default_poly(m)?.polynomial(),
    };
    let bits = spec.u32_value("bits")?.unwrap_or(40);
    Ok(Box::new(PseudoRandom::new(m, poly, bits)?))
}

fn build_region(spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
    spec.check_keys(&["t", "bits", "s", "regions"])?;
    let mut map = RegionMap::new(
        spec.require_u32("t")?,
        spec.require_u32("bits")?,
        spec.require_u32("s")?,
    )?;
    if let Some(overrides) = spec.get("regions") {
        for entry in overrides.split('|') {
            let parsed = entry.split_once(':').and_then(|(region, s)| {
                Some((parse_u64(region)?, u32::try_from(parse_u64(s)?).ok()?))
            });
            let Some((region, s)) = parsed else {
                return Err(ConfigError::InvalidValue {
                    key: "regions".to_string(),
                    value: entry.to_string(),
                    expected: "'|'-separated region:s overrides, e.g. 1:6|2:4",
                });
            };
            map = map.with_region(region, s)?;
        }
    }
    Ok(Box::new(map))
}

fn build_custom_gf2(spec: &MapSpec) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
    spec.check_keys(&["rows", "matrix", "cols", "t"])?;
    let (rows, cols) = spec.matrix_value()?;
    Ok(Box::new(CustomGf2::new(rows, cols)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn parses_and_round_trips() {
        for text in [
            "interleaved:m=3",
            "skewed:m=3,d=3",
            "xor-matched:t=3,s=4",
            "xor-unmatched:t=3,s=4,y=9",
            "linear:rows=0b1_0010_1101|0b0_1101_1010|0b1_1000_0111",
            "pseudo-random:m=3,bits=14",
            "region:t=3,bits=10,s=3,regions=1:6",
            "custom-gf2:rows=0b001001|0b010010|0b100100,cols=6",
            "interleaved",
        ] {
            let spec = MapSpec::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec.to_string(), text);
            assert_eq!(MapSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn parse_rejects_bad_grammar() {
        for (text, needle) in [
            ("", "empty map name"),
            (":m=3", "empty map name"),
            ("Interleaved:m=3", "lowercase"),
            ("interleaved:", "no parameters"),
            ("interleaved:m", "no '='"),
            ("interleaved:=3", "empty key"),
            ("interleaved:m=", "empty value"),
        ] {
            let e = MapSpec::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text}: {e}");
        }
        assert!(matches!(
            MapSpec::parse("skewed:m=3,m=4"),
            Err(ConfigError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn builtin_names_cover_all_eight() {
        let registry = Registry::builtin();
        assert_eq!(
            registry.names(),
            vec![
                "interleaved",
                "skewed",
                "xor-matched",
                "xor-unmatched",
                "linear",
                "pseudo-random",
                "region",
                "custom-gf2",
            ]
        );
        assert_eq!(registry.all_specs().len(), 8);
        assert_eq!(registry.all_maps().len(), 8);
    }

    #[test]
    fn unknown_map_lists_registered_names() {
        let e = Registry::builtin().build_str("skwed:m=3").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("\"skwed\""), "{msg}");
        for name in Registry::builtin().names() {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn unknown_and_missing_keys_are_named() {
        let registry = Registry::builtin();
        let e = registry.build_str("interleaved:q=3").unwrap_err();
        assert!(
            matches!(&e, ConfigError::UnknownKey { key, .. } if key == "q"),
            "{e}"
        );
        let e = registry.build_str("xor-matched:t=3").unwrap_err();
        assert!(
            matches!(&e, ConfigError::MissingKey { key, .. } if *key == "s"),
            "{e}"
        );
        let e = registry.build_str("interleaved:m=three").unwrap_err();
        assert!(
            matches!(&e, ConfigError::InvalidValue { value, .. } if value == "three"),
            "{e}"
        );
    }

    /// `planner` must agree with `build` about what the registry
    /// contains: an unregistered name is `UnknownMap` on both paths,
    /// including the out-of-order special cases.
    #[test]
    fn planner_rejects_names_the_registry_does_not_hold() {
        let empty = Registry::new();
        for text in ["xor-matched:t=3,s=4", "xor-unmatched:t=3,s=4,y=9"] {
            let spec = MapSpec::parse(text).unwrap();
            assert!(
                matches!(empty.planner(&spec), Err(ConfigError::UnknownMap { .. })),
                "{text}"
            );
            assert!(matches!(
                empty.build(&spec),
                Err(ConfigError::UnknownMap { .. })
            ));
        }
    }

    /// `linear` derives its width from the highest set bit, so a
    /// `cols` it would silently ignore is rejected (pointing at
    /// `custom-gf2`, which honors it).
    #[test]
    fn linear_rejects_the_cols_key_custom_gf2_honors() {
        let registry = Registry::builtin();
        let e = registry
            .build_str("linear:rows=0b011|0b101,cols=8")
            .unwrap_err();
        assert!(
            matches!(&e, ConfigError::UnknownKey { key, .. } if key == "cols"),
            "{e}"
        );
        let map = registry
            .build_str("custom-gf2:rows=0b011|0b101,cols=8")
            .unwrap();
        assert_eq!(map.address_bits_used(), 8);
    }

    /// Giving both matrix sources is a syntax error naming both keys —
    /// not an `InvalidValue` that mislabels one key with the other's
    /// value.
    #[test]
    fn matrix_and_rows_together_name_both_keys() {
        let e = Registry::builtin()
            .build_str("custom-gf2:rows=0b01|0b10,matrix=@f.gf2")
            .unwrap_err();
        let msg = e.to_string();
        assert!(matches!(e, ConfigError::SpecSyntax { .. }), "{msg}");
        assert!(
            msg.contains("\"matrix\"") && msg.contains("\"rows\""),
            "{msg}"
        );
        assert!(msg.contains("mutually exclusive"), "{msg}");
    }

    #[test]
    fn constructor_constraint_violations_propagate() {
        let registry = Registry::builtin();
        // s < t for the matched map.
        assert!(registry.build_str("xor-matched:t=3,s=2").is_err());
        // Rank-deficient custom matrix.
        assert_eq!(
            registry.build_str("custom-gf2:rows=0b11|0b11").unwrap_err(),
            ConfigError::SingularMatrix
        );
        // Odd-shaped custom matrix: more rows than declared columns.
        assert!(matches!(
            registry
                .build_str("custom-gf2:rows=0b01|0b01,cols=1")
                .unwrap_err(),
            ConfigError::OutOfRange { .. }
        ));
    }

    #[test]
    fn built_maps_behave_like_their_types() {
        let registry = Registry::builtin();
        let map = registry.build_str("interleaved:m=3").unwrap();
        assert_eq!(map.module_of(Addr::new(13)).get(), 5);
        let map = registry.build_str("skewed:m=2,d=1").unwrap();
        assert_eq!(map.module_of(Addr::new(4)).get(), 1);
        let map = registry
            .build_str("pseudo-random:m=3,poly=0b1011,bits=24")
            .unwrap();
        assert_eq!(map.module_of(Addr::new(8)).get(), 3);
        let map = registry
            .build_str("region:t=3,bits=20,s=3,regions=1:6")
            .unwrap();
        let direct = RegionMap::new(3, 20, 3).unwrap().with_region(1, 6).unwrap();
        for a in [0u64, 9, 1 << 20, (1 << 20) + 12345] {
            assert_eq!(map.module_of(Addr::new(a)), direct.module_of(Addr::new(a)));
        }
    }

    #[test]
    fn register_rejects_duplicates_and_bad_coverage() {
        let mut registry = Registry::builtin();
        assert!(matches!(
            registry.register("skewed", build_skewed, &["skewed:m=2"]),
            Err(ConfigError::DuplicateMap { .. })
        ));
        // Coverage spec naming a different map is refused.
        assert!(registry
            .register("skewed2", build_skewed, &["skewed:m=2"])
            .is_err());
        // Unbuildable coverage spec is refused.
        assert!(registry
            .register("skewed2", build_skewed, &["skewed2:m=99"])
            .is_err());
    }

    #[test]
    fn registered_user_maps_join_the_iteration() {
        fn double_interleaved(
            spec: &MapSpec,
        ) -> Result<Box<dyn ModuleMap + Send + Sync>, ConfigError> {
            spec.check_keys(&["m", "t"])?;
            Ok(Box::new(Interleaved::new(spec.require_u32("m")? * 2)?))
        }
        let mut registry = Registry::builtin();
        registry
            .register(
                "double-interleaved",
                double_interleaved,
                &["double-interleaved:m=2"],
            )
            .unwrap();
        assert_eq!(registry.all_specs().len(), 9);
        let (spec, map) = registry.all_maps().pop().unwrap();
        assert_eq!(spec.name(), "double-interleaved");
        assert_eq!(map.module_count(), 16);
        // And the planner path covers it as an in-order baseline.
        let planner = registry.planner(&spec).unwrap();
        assert_eq!(planner.module_count(), 16);
        assert_eq!(planner.t(), 4);
    }

    #[test]
    fn planner_kinds_follow_the_spec_name() {
        let registry = Registry::builtin();
        let planner = registry
            .planner(&MapSpec::parse("xor-matched:t=3,s=4").unwrap())
            .unwrap();
        assert_eq!(planner.window(7), Some((0, 4))); // out-of-order capable
        let planner = registry
            .planner(&MapSpec::parse("xor-unmatched:t=3,s=4,y=9").unwrap())
            .unwrap();
        assert_eq!(planner.window(7), Some((0, 9)));
        assert_eq!(planner.t(), 3);
        assert_eq!(planner.module_count(), 64);
        let planner = registry
            .planner(&MapSpec::parse("interleaved:m=3").unwrap())
            .unwrap();
        assert_eq!(planner.window(7), None); // in-order baseline
        assert_eq!(planner.t(), 3); // matched by default
                                    // Explicit latency rider on a baseline map.
        let planner = registry
            .planner(&MapSpec::parse("interleaved:m=3,t=6").unwrap())
            .unwrap();
        assert_eq!(planner.t(), 6);
    }

    #[test]
    fn canonical_sorts_keys_and_normalizes_integer_literals() {
        let spec = MapSpec::parse("xor-matched:s=0x4,t=0b11").unwrap();
        assert_eq!(spec.canonical().to_string(), "xor-matched:s=4,t=3");
        let spec = MapSpec::parse("skewed:m=3,d=0x3").unwrap();
        assert_eq!(spec.canonical().to_string(), "skewed:d=3,m=3");
        // Component-wise across '|' lists and ':' pairs.
        let spec = MapSpec::parse("region:t=3,bits=0xa,s=3,regions=0x1:0b110|2:4").unwrap();
        assert_eq!(
            spec.canonical().to_string(),
            "region:bits=10,regions=1:6|2:4,s=3,t=3"
        );
        let spec = MapSpec::parse("linear:rows=0b011|0b101|6").unwrap();
        assert_eq!(spec.canonical().to_string(), "linear:rows=3|5|6");
        // '@' references and non-integers pass through verbatim.
        let spec = MapSpec::parse("custom-gf2:matrix=@maps/fft.gf2").unwrap();
        assert_eq!(
            spec.canonical().to_string(),
            "custom-gf2:matrix=@maps/fft.gf2"
        );
    }

    #[test]
    fn equivalent_spellings_share_one_canonical_form() {
        for (a, b) in [
            ("xor-matched:t=3,s=4", "xor-matched:s=0x4,t=0b11"),
            ("skewed:m=3,d=3", "skewed:d=3,m=0b11"),
            ("interleaved:m=3", "interleaved:m=0x3"),
            (
                "linear:rows=0b1_0010_1101|0b0_1101_1010|0b1_1000_0111",
                "linear:rows=301|218|391",
            ),
        ] {
            let a = MapSpec::parse(a).unwrap();
            let b = MapSpec::parse(b).unwrap();
            assert_ne!(a, b, "spellings differ as written");
            assert_eq!(a.canonical(), b.canonical(), "but canonicalize equal");
        }
        // Different configurations stay apart.
        let a = MapSpec::parse("xor-matched:t=3,s=4").unwrap();
        let b = MapSpec::parse("xor-matched:t=3,s=5").unwrap();
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn canonical_form_round_trips_and_is_a_fixed_point() {
        for spec in Registry::builtin().all_specs() {
            let canon = spec.canonical();
            let reparsed =
                MapSpec::parse(&canon.to_string()).unwrap_or_else(|e| panic!("{canon}: {e}"));
            assert_eq!(reparsed, canon, "canonical form round-trips");
            assert_eq!(canon.canonical(), canon, "canonicalization is idempotent");
            // And the canonical spelling still builds the same map.
            let original = Registry::builtin().build(&spec).unwrap();
            let canonical = Registry::builtin().build(&canon).unwrap();
            for a in [0u64, 1, 9, 127, 12345] {
                assert_eq!(
                    original.module_of(Addr::new(a)),
                    canonical.module_of(Addr::new(a)),
                    "{spec} vs {canon} at {a}"
                );
            }
        }
    }

    #[test]
    fn integer_literals_take_prefixes_and_separators() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64("0x2a"), Some(42));
        assert_eq!(parse_u64("0b10_1010"), Some(42));
        assert_eq!(parse_u64("1_000"), Some(1000));
        assert_eq!(parse_u64(""), None);
        assert_eq!(parse_u64("-3"), None);
        assert_eq!(parse_u64("0xzz"), None);
    }
}
