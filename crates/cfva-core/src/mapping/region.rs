//! Per-array dynamic scheme selection (Harper & Linebarger, the paper's
//! reference \[11\]).

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::error::ConfigError;
use crate::mapping::{ModuleMap, XorMatched};
use crate::vector::VectorSpec;

/// A dynamic storage scheme: the address space is divided into aligned
/// regions, each stored under its own [`XorMatched`] shift `s`.
///
/// The paper's Section 1 recalls that "for the case in which different
/// vectors are accessed with different strides, dynamic schemes based on
/// skewing \[11\] and on linear transformations \[6\] were proposed": the
/// compiler places each array in a region whose `s` matches the stride
/// family that array is accessed with. Combined with the out-of-order
/// window this serves `λ−t+1` families *per array* — different ones for
/// different arrays — on a plain matched memory.
///
/// All regions share the latency exponent `t`; region boundaries are
/// aligned to `2^region_bits` addresses, and a vector used with this map
/// must stay inside one region (checked by [`RegionMap::map_for`]).
///
/// # Examples
///
/// ```
/// use cfva_core::mapping::{ModuleMap, RegionMap};
///
/// // 2^20-address regions; region 0 tuned for small strides (s = 3),
/// // region 1 for family-6 strides (s = 6).
/// let map = RegionMap::new(3, 20, 3)?
///     .with_region(1, 6)?;
/// assert_eq!(map.module_count(), 8);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    t: u32,
    region_bits: u32,
    default: XorMatched,
    /// (region index, map) overrides, sorted by region index.
    overrides: Vec<(u64, XorMatched)>,
}

impl RegionMap {
    /// Creates a region map with `2^region_bits`-sized regions, all
    /// initially using shift `default_s`.
    ///
    /// # Errors
    ///
    /// Propagates [`XorMatched::new`] constraint violations; also
    /// requires `region_bits ≥ default_s + t` so one region spans at
    /// least one full mapping period.
    pub fn new(t: u32, region_bits: u32, default_s: u32) -> Result<Self, ConfigError> {
        let default = XorMatched::new(t, default_s)?;
        if region_bits < default_s + t {
            return Err(ConfigError::OutOfRange {
                what: "region_bits",
                value: region_bits as u64,
                constraint: "region_bits >= s + t",
            });
        }
        Ok(RegionMap {
            t,
            region_bits,
            default,
            overrides: Vec::new(),
        })
    }

    /// Assigns shift `s` to region `region` (indices count from address
    /// 0 upwards in `2^region_bits` steps).
    ///
    /// # Errors
    ///
    /// Propagates [`XorMatched::new`] violations and requires the
    /// region to still span one full period (`region_bits ≥ s + t`).
    pub fn with_region(mut self, region: u64, s: u32) -> Result<Self, ConfigError> {
        let map = XorMatched::new(self.t, s)?;
        if self.region_bits < s + self.t {
            return Err(ConfigError::OutOfRange {
                what: "s",
                value: s as u64,
                constraint: "region_bits >= s + t",
            });
        }
        match self.overrides.binary_search_by_key(&region, |(r, _)| *r) {
            Ok(i) => self.overrides[i].1 = map,
            Err(i) => self.overrides.insert(i, (region, map)),
        }
        Ok(self)
    }

    /// The region index of an address.
    pub fn region_of(&self, addr: Addr) -> u64 {
        addr.get() >> self.region_bits
    }

    /// The map governing an address.
    pub fn map_at(&self, addr: Addr) -> &XorMatched {
        let region = self.region_of(addr);
        match self.overrides.binary_search_by_key(&region, |(r, _)| *r) {
            Ok(i) => &self.overrides[i].1,
            Err(_) => &self.default,
        }
    }

    /// The map to plan a vector access with, provided the access stays
    /// inside one region (the compiler's contract: an array never
    /// straddles region boundaries).
    ///
    /// # Errors
    ///
    /// [`ConfigError::OutOfRange`] when the vector crosses a region
    /// boundary.
    pub fn map_for(&self, vec: &VectorSpec) -> Result<XorMatched, ConfigError> {
        let first = self.region_of(vec.base());
        let last = self.region_of(vec.element_addr(vec.len() - 1));
        if first != last {
            return Err(ConfigError::OutOfRange {
                what: "vector region span",
                value: last.abs_diff(first),
                constraint: "vector must stay inside one region",
            });
        }
        Ok(*self.map_at(vec.base()))
    }
}

impl ModuleMap for RegionMap {
    fn module_bits(&self) -> u32 {
        self.t
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        self.map_at(addr).module_of(addr)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        addr.get() >> self.t
    }

    fn address_bits_used(&self) -> u32 {
        // With overrides the governing map depends on the *absolute*
        // region index — addresses equal modulo any power of two can
        // fall in an overridden region or in the default tail — so no
        // finite low-bit slice determines the module: report the full
        // address width. Without overrides the default map applies
        // uniformly and its own bound holds.
        if self.overrides.is_empty() {
            self.default.address_bits_used()
        } else {
            64
        }
    }

    fn balance_bits(&self) -> u32 {
        // Balance is finer-grained than determination: every aligned
        // 2^region_bits block is governed by a single XorMatched whose
        // own balance period (2^{s+t} ≤ 2^region_bits, enforced at
        // construction) divides the block, so each block — hence the
        // whole space — is balanced even though *determining* a module
        // needs the absolute region index (see address_bits_used).
        if self.overrides.is_empty() {
            self.default.balance_bits()
        } else {
            self.region_bits
        }
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        // Regions span 2^region_bits addresses, so a stride walk stays
        // inside one region for long runs: resolve the governing map
        // once per region crossing instead of once per element.
        let mut addr = base.get();
        let mut region = addr >> self.region_bits;
        let mut map = *self.map_at(Addr::new(addr));
        for slot in out.iter_mut() {
            let r = addr >> self.region_bits;
            if r != region {
                region = r;
                map = *self.map_at(Addr::new(addr));
            }
            *slot = map.module_of(Addr::new(addr));
            addr = addr.wrapping_add_signed(stride);
        }
    }
}

impl fmt::Display for RegionMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region map (M = {}, {} regions overridden, default s = {})",
            self.module_count(),
            self.overrides.len(),
            self.default.s()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_map() -> RegionMap {
        RegionMap::new(3, 20, 3).unwrap().with_region(1, 6).unwrap()
    }

    #[test]
    fn regions_use_their_own_shift() {
        let map = two_region_map();
        // Region 0: s = 3 behaviour.
        let direct = XorMatched::new(3, 3).unwrap();
        for a in [0u64, 9, 100, 4095] {
            assert_eq!(map.module_of(Addr::new(a)), direct.module_of(Addr::new(a)));
        }
        // Region 1 (addresses >= 2^20): s = 6 behaviour.
        let s6 = XorMatched::new(3, 6).unwrap();
        for a in [1u64 << 20, (1 << 20) + 9, (1 << 20) + 12345] {
            assert_eq!(map.module_of(Addr::new(a)), s6.module_of(Addr::new(a)));
        }
    }

    #[test]
    fn map_for_rejects_straddling_vectors() {
        let map = two_region_map();
        let inside = VectorSpec::new(0, 8, 64).unwrap();
        assert_eq!(map.map_for(&inside).unwrap().s(), 3);

        let other = VectorSpec::new(1 << 20, 8, 64).unwrap();
        assert_eq!(map.map_for(&other).unwrap().s(), 6);

        let straddle = VectorSpec::new((1 << 20) - 8, 8, 64).unwrap();
        assert!(map.map_for(&straddle).is_err());
    }

    #[test]
    fn region_bits_must_cover_period() {
        assert!(RegionMap::new(3, 5, 3).is_err()); // 5 < 3+3
        assert!(RegionMap::new(3, 6, 3).is_ok());
        let m = RegionMap::new(3, 8, 3).unwrap();
        assert!(m.with_region(0, 6).is_err()); // 8 < 6+3
    }

    #[test]
    fn override_replaces_existing() {
        let map = RegionMap::new(3, 20, 3)
            .unwrap()
            .with_region(1, 5)
            .unwrap()
            .with_region(1, 6)
            .unwrap();
        assert_eq!(map.map_at(Addr::new(1 << 20)).s(), 6);
    }

    #[test]
    fn display() {
        let map = two_region_map();
        let s = map.to_string();
        assert!(s.contains("1 regions overridden"));
        assert!(s.contains("default s = 3"));
    }
}
