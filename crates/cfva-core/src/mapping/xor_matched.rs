//! The paper's matched-memory XOR map (equation 1).

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::error::ConfigError;
use crate::mapping::ModuleMap;

/// The linear transformation of the paper's equation (1), for a matched
/// memory (`M = T = 2^t` modules):
///
/// ```text
/// b_i = a_i ⊕ a_{s+i}      s ≥ t,  0 ≤ i ≤ t−1
/// ```
///
/// i.e. `b = (A mod 2^t) ⊕ ((A div 2^s) mod 2^t)`.
///
/// Properties proved in the paper and enforced/tested here:
///
/// * In-order access is conflict free for the single family `x = s`
///   (any length, any base) — the classical result of Harper.
/// * The period of the module sequence for family `x` is
///   `P_x = max(2^{s+t−x}, 1)`.
/// * (Lemma 2) For `x ≤ s`, each of the `2^{s−x}` interleaved
///   subsequences of `2^t` elements within a period lands in `2^t`
///   distinct modules — the basis of out-of-order conflict-free access.
/// * (Theorem 1) Families `s−N ≤ x ≤ s`, `N = min(λ−t, s)`, give
///   T-matched vectors of length `2^λ`.
///
/// # Examples
///
/// Figure 3 of the paper (`m = t = 3`, `s = 3`): address 9 lives in
/// module `(9 mod 8) ⊕ (9 div 8 mod 8) = 1 ⊕ 1 = 0`:
///
/// ```
/// use cfva_core::mapping::{ModuleMap, XorMatched};
/// use cfva_core::Addr;
///
/// let map = XorMatched::new(3, 3)?;
/// assert_eq!(map.module_of(Addr::new(9)).get(), 0);
/// assert_eq!(map.module_of(Addr::new(18)).get(), 0);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XorMatched {
    t: u32,
    s: u32,
}

impl XorMatched {
    /// Creates the map with module-latency exponent `t` (so `M = T = 2^t`
    /// modules) and shift `s`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] unless `t ≤ s` and
    /// `s + t ≤ 63` (so periods fit comfortably in `u64`).
    pub fn new(t: u32, s: u32) -> Result<Self, ConfigError> {
        if s < t {
            return Err(ConfigError::OutOfRange {
                what: "s",
                value: s as u64,
                constraint: "s >= t",
            });
        }
        if s + t > 63 {
            return Err(ConfigError::OutOfRange {
                what: "s + t",
                value: (s + t) as u64,
                constraint: "s + t <= 63",
            });
        }
        Ok(XorMatched { t, s })
    }

    /// Returns `t` (module latency is `T = 2^t` cycles; also `m = t`).
    pub const fn t(&self) -> u32 {
        self.t
    }

    /// Returns the shift `s` — the centre of the conflict-free window.
    pub const fn s(&self) -> u32 {
        self.s
    }
}

impl ModuleMap for XorMatched {
    fn module_bits(&self) -> u32 {
        self.t
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        ModuleId::new(addr.bits(0, self.t) ^ addr.bits(self.s, self.t))
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        // Everything above the low t bits identifies the row uniquely:
        // given (b, A >> t) the low bits are recovered as
        // b ⊕ ((A >> s) mod 2^t), and s ≥ t makes that field part of
        // A >> t.
        addr.get() >> self.t
    }

    fn address_bits_used(&self) -> u32 {
        self.s + self.t
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        // One period `P_x = 2^{s+t−x}` of the XOR sequence computed
        // directly, the rest filled cyclically.
        let mask = (1u64 << self.t) - 1;
        let s = self.s;
        super::bulk::fill_stride(base, stride, self.s + self.t, out, |a| {
            (a & mask) ^ ((a >> s) & mask)
        });
    }
}

impl fmt::Display for XorMatched {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xor-matched (M = T = {}, s = {})",
            self.module_count(),
            self.s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stride::StrideFamily;

    /// The full Figure 3 grid from the paper: rows of 8 consecutive
    /// addresses, entry = address stored at (row, module).
    ///
    /// Figure 3 lists, for each row of the address space, which address
    /// sits in each module; e.g. row 1 shows "9 8 11 10 13 12 15 14",
    /// meaning module 0 holds address 9, module 1 holds 8, and so on.
    const FIGURE_3: [[u64; 8]; 9] = [
        [0, 1, 2, 3, 4, 5, 6, 7],
        [9, 8, 11, 10, 13, 12, 15, 14],
        [18, 19, 16, 17, 22, 23, 20, 21],
        [27, 26, 25, 24, 31, 30, 29, 28],
        [36, 37, 38, 39, 32, 33, 34, 35],
        [45, 44, 47, 46, 41, 40, 43, 42],
        [54, 55, 52, 53, 50, 51, 48, 49],
        [63, 62, 61, 60, 59, 58, 57, 56],
        [64, 65, 66, 67, 68, 69, 70, 71],
    ];

    #[test]
    fn reproduces_figure_3() {
        let map = XorMatched::new(3, 3).unwrap();
        for (row, entries) in FIGURE_3.iter().enumerate() {
            for (module, &addr) in entries.iter().enumerate() {
                assert_eq!(
                    map.module_of(Addr::new(addr)).get(),
                    module as u64,
                    "address {addr} should be in module {module} (row {row})"
                );
                assert_eq!(map.displacement_of(Addr::new(addr)), row as u64);
            }
        }
    }

    #[test]
    fn constructor_validates_s_ge_t() {
        assert!(XorMatched::new(3, 2).is_err());
        assert!(XorMatched::new(3, 3).is_ok());
        assert!(XorMatched::new(3, 10).is_ok());
        assert!(XorMatched::new(32, 32).is_err()); // s + t > 63
    }

    #[test]
    fn period_matches_paper_formula() {
        // P_x = 2^{s+t-x}
        let map = XorMatched::new(3, 4).unwrap();
        assert_eq!(map.period(StrideFamily::new(0)), 128);
        assert_eq!(map.period(StrideFamily::new(2)), 32);
        assert_eq!(map.period(StrideFamily::new(4)), 8);
        assert_eq!(map.period(StrideFamily::new(7)), 1);
        assert_eq!(map.period(StrideFamily::new(20)), 1);
    }

    #[test]
    fn in_order_conflict_free_for_family_s() {
        // The mapping's defining property: stride sigma·2^s, any base,
        // any length -> T consecutive elements in T distinct modules.
        let map = XorMatched::new(3, 3).unwrap();
        for sigma in [1u64, 3, 5, 7] {
            let stride = sigma << 3;
            for base in [0u64, 1, 16, 37, 1000] {
                let modules: Vec<u64> = (0..64u64)
                    .map(|i| map.module_of(Addr::new(base + stride * i)).get())
                    .collect();
                for w in modules.windows(8) {
                    let set: std::collections::BTreeSet<&u64> = w.iter().collect();
                    assert_eq!(set.len(), 8, "sigma={sigma} base={base}: window {w:?}");
                }
            }
        }
    }

    #[test]
    fn paper_section3_example_modules() {
        // Stride 12 (x = 2), A1 = 16: CTP over one period (16 elements)
        // is 2,7,5,2,0,5,3,0,6,3,1,6,4,1,7,4 — from the paper's text.
        let map = XorMatched::new(3, 3).unwrap();
        let expected = [2u64, 7, 5, 2, 0, 5, 3, 0, 6, 3, 1, 6, 4, 1, 7, 4];
        for (i, &want) in expected.iter().enumerate() {
            let addr = Addr::new(16 + 12 * i as u64);
            assert_eq!(map.module_of(addr).get(), want, "element {i}");
        }
    }

    #[test]
    fn balanced_over_one_full_period_of_addresses() {
        let map = XorMatched::new(2, 3).unwrap();
        let span = 1u64 << map.address_bits_used();
        let mut counts = vec![0u64; map.module_count() as usize];
        for a in 0..span {
            counts[map.module_of(Addr::new(a)).get() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == span / map.module_count()));
    }

    #[test]
    fn display() {
        let map = XorMatched::new(3, 4).unwrap();
        assert_eq!(map.to_string(), "xor-matched (M = T = 8, s = 4)");
    }
}
