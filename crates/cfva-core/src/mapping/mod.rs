//! Address-to-module mappings.
//!
//! A multi-module memory needs an *address mapping* that turns the
//! one-dimensional address `A` (bits `a_{n-1} … a_0`) into a
//! `(module, displacement)` pair. Conflicts depend only on the module
//! component (paper Section 2), so the central abstraction here is
//! [`ModuleMap`]: the function `b = F(A)`.
//!
//! Implementations:
//!
//! * [`Interleaved`] — conventional low-order interleaving,
//!   `b = A mod M`. Conflict free in order only for odd strides.
//! * [`Skewed`] — row-rotation skewing, `b = (A + d·row) mod M`, the
//!   classical array-processor scheme (Budnik & Kuck, Harper & Jump).
//! * [`XorMatched`] — the paper's equation (1): `b_i = a_i ⊕ a_{s+i}`,
//!   matched memory `M = T`. Conflict free *in order* exactly for family
//!   `x = s`; conflict free *out of order* for the Theorem 1 window.
//! * [`XorUnmatched`] — the paper's equation (2): two-level mapping for
//!   `M = T²` with *sections* and *supermodules* (Section 4.1).
//! * [`Linear`] — an arbitrary GF(2) linear transformation given as a
//!   bit-matrix; the XOR maps are special cases, and the classical
//!   Norton–Melton / Frailong XOR-scheme class can be expressed with it.
//! * [`PseudoRandom`] — Rau's pseudo-randomly interleaved memory
//!   (reference \[12\]): polynomial hashing that spreads *every* stride
//!   statistically instead of a window perfectly.
//! * [`RegionMap`] — the dynamic per-array scheme of Harper &
//!   Linebarger (reference \[11\]): each memory region carries its own
//!   XOR shift, chosen by the compiler for the strides that array sees.
//!
//! Every map reads only a bounded window of low address bits
//! ([`ModuleMap::address_bits_used`]); from that the *period* `P_x` of
//! the canonical module sequence for a stride family follows as
//! `P_x = max(2^{used − x}, 1)` — the closed forms the paper quotes
//! (`2^{s+t−x}` for the matched map, `2^{y+t−x}` for the unmatched one)
//! fall out as special cases.

mod interleaved;
mod linear;
mod pseudo_random;
mod region;
mod skewed;
mod xor_matched;
mod xor_unmatched;

pub use interleaved::Interleaved;
pub use linear::Linear;
pub use pseudo_random::PseudoRandom;
pub use region::RegionMap;
pub use skewed::Skewed;
pub use xor_matched::XorMatched;
pub use xor_unmatched::XorUnmatched;

use crate::address::{Addr, ModuleId};
use crate::stride::StrideFamily;

/// The module-number component `b = F(A)` of an address mapping.
///
/// Implementations must be **balanced over one period of the address
/// space**: over any aligned block of `2^{address_bits_used()}`
/// consecutive addresses, every module receives the same number of
/// addresses. All maps in this crate uphold this; the property tests in
/// `tests/` check it.
///
/// The trait is object safe; planners and simulators accept
/// `&dyn ModuleMap`.
pub trait ModuleMap {
    /// Number of module-number bits `m` (there are `M = 2^m` modules).
    fn module_bits(&self) -> u32;

    /// The module that address `addr` lives in.
    fn module_of(&self, addr: Addr) -> ModuleId;

    /// The displacement (row) of `addr` inside its module.
    ///
    /// `(module_of(A), displacement_of(A))` is injective: two distinct
    /// addresses never collide in both coordinates.
    fn displacement_of(&self, addr: Addr) -> u64;

    /// Number of low address bits the map depends on: `module_of` is a
    /// function of `A mod 2^{address_bits_used()}`.
    fn address_bits_used(&self) -> u32;

    /// Number of memory modules `M = 2^m`.
    fn module_count(&self) -> u64 {
        1u64 << self.module_bits()
    }

    /// Period `P_x` of the canonical temporal distribution for stride
    /// family `x`: the module sequence of *any* constant-stride vector of
    /// the family repeats after `P_x` elements.
    ///
    /// `P_x = max(2^{used − x}, 1)` where `used` is
    /// [`address_bits_used`](Self::address_bits_used). Adding
    /// `P_x · σ·2^x = σ·2^{used}` to an address only changes bits the map
    /// never reads, so the sequence repeats exactly — no carry effects.
    fn period(&self, family: StrideFamily) -> u64 {
        let used = self.address_bits_used();
        let x = family.exponent();
        if x >= used {
            1
        } else {
            1u64 << (used - x)
        }
    }
}

impl<M: ModuleMap + ?Sized> ModuleMap for &M {
    fn module_bits(&self) -> u32 {
        (**self).module_bits()
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        (**self).module_of(addr)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        (**self).displacement_of(addr)
    }

    fn address_bits_used(&self) -> u32 {
        (**self).address_bits_used()
    }

    fn period(&self, family: StrideFamily) -> u64 {
        (**self).period(family)
    }
}

impl<M: ModuleMap + ?Sized> ModuleMap for Box<M> {
    fn module_bits(&self) -> u32 {
        (**self).module_bits()
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        (**self).module_of(addr)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        (**self).displacement_of(addr)
    }

    fn address_bits_used(&self) -> u32 {
        (**self).address_bits_used()
    }

    fn period(&self, family: StrideFamily) -> u64 {
        (**self).period(family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let map = Interleaved::new(3);
        let dyn_map: &dyn ModuleMap = &map;
        assert_eq!(dyn_map.module_count(), 8);
        assert_eq!(dyn_map.module_of(Addr::new(11)).get(), 3);
    }

    #[test]
    fn blanket_impls_delegate() {
        let map = Interleaved::new(2);
        let by_ref: &Interleaved = &map;
        assert_eq!(by_ref.module_count(), 4);
        assert_eq!(by_ref.period(StrideFamily::new(0)), 4);

        let boxed: Box<dyn ModuleMap> = Box::new(Interleaved::new(2));
        assert_eq!(boxed.module_count(), 4);
        assert_eq!(boxed.module_of(Addr::new(7)).get(), 3);
        assert_eq!(boxed.displacement_of(Addr::new(7)), 1);
    }

    #[test]
    fn default_period_saturates_at_one() {
        let map = Interleaved::new(3); // uses 3 address bits
        assert_eq!(map.period(StrideFamily::new(0)), 8);
        assert_eq!(map.period(StrideFamily::new(2)), 2);
        assert_eq!(map.period(StrideFamily::new(3)), 1);
        assert_eq!(map.period(StrideFamily::new(9)), 1);
    }
}
