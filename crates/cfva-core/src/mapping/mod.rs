//! Address-to-module mappings.
//!
//! A multi-module memory needs an *address mapping* that turns the
//! one-dimensional address `A` (bits `a_{n-1} … a_0`) into a
//! `(module, displacement)` pair. Conflicts depend only on the module
//! component (paper Section 2), so the central abstraction here is
//! [`ModuleMap`]: the function `b = F(A)`.
//!
//! Implementations:
//!
//! * [`Interleaved`] — conventional low-order interleaving,
//!   `b = A mod M`. Conflict free in order only for odd strides.
//! * [`Skewed`] — row-rotation skewing, `b = (A + d·row) mod M`, the
//!   classical array-processor scheme (Budnik & Kuck, Harper & Jump).
//! * [`XorMatched`] — the paper's equation (1): `b_i = a_i ⊕ a_{s+i}`,
//!   matched memory `M = T`. Conflict free *in order* exactly for family
//!   `x = s`; conflict free *out of order* for the Theorem 1 window.
//! * [`XorUnmatched`] — the paper's equation (2): two-level mapping for
//!   `M = T²` with *sections* and *supermodules* (Section 4.1).
//! * [`Linear`] — an arbitrary GF(2) linear transformation given as a
//!   bit-matrix; the XOR maps are special cases, and the classical
//!   Norton–Melton / Frailong XOR-scheme class can be expressed with it.
//! * [`PseudoRandom`] — Rau's pseudo-randomly interleaved memory
//!   (reference \[12\]): polynomial hashing that spreads *every* stride
//!   statistically instead of a window perfectly.
//! * [`RegionMap`] — the dynamic per-array scheme of Harper &
//!   Linebarger (reference \[11\]): each memory region carries its own
//!   XOR shift, chosen by the compiler for the strides that array sees.
//! * [`CustomGf2`] — a user-supplied GF(2) row matrix, loadable from a
//!   `.gf2` text file, for schemes that arrive at runtime.
//!
//! Maps are also constructible **by name at runtime** through the
//! [`registry`] module: `Registry::builtin().build_str("skewed:m=3,d=1")`
//! — see [`MapSpec`] for the spec grammar.
//!
//! Every map reads only a bounded window of low address bits
//! ([`ModuleMap::address_bits_used`]); from that the *period* `P_x` of
//! the canonical module sequence for a stride family follows as
//! `P_x = max(2^{used − x}, 1)` — the closed forms the paper quotes
//! (`2^{s+t−x}` for the matched map, `2^{y+t−x}` for the unmatched one)
//! fall out as special cases.

mod bulk;
mod custom_gf2;
mod interleaved;
mod linear;
mod pseudo_random;
mod region;
pub mod registry;
mod skewed;
mod xor_matched;
mod xor_unmatched;

pub use custom_gf2::CustomGf2;
pub use interleaved::Interleaved;
pub use linear::Linear;
pub use pseudo_random::PseudoRandom;
pub use region::RegionMap;
pub use registry::{MapSpec, Registry};
pub use skewed::Skewed;
pub use xor_matched::XorMatched;
pub use xor_unmatched::XorUnmatched;

use crate::address::{Addr, ModuleId};
use crate::stride::StrideFamily;

/// The module-number component `b = F(A)` of an address mapping.
///
/// Implementations must be **balanced over one period of the address
/// space**: over any aligned block of `2^{balance_bits()}` consecutive
/// addresses, every module receives the same number of
/// addresses. All maps in this crate uphold this; the property tests in
/// `tests/` check it.
///
/// The trait is object safe; planners and simulators accept
/// `&dyn ModuleMap`. `Debug` is a supertrait so runtime-selected
/// `Box<dyn ModuleMap>` values (the [`registry`] path) stay printable
/// in errors and assertions.
pub trait ModuleMap: std::fmt::Debug {
    /// Number of module-number bits `m` (there are `M = 2^m` modules).
    fn module_bits(&self) -> u32;

    /// The module that address `addr` lives in.
    fn module_of(&self, addr: Addr) -> ModuleId;

    /// The displacement (row) of `addr` inside its module.
    ///
    /// `(module_of(A), displacement_of(A))` is injective: two distinct
    /// addresses never collide in both coordinates.
    fn displacement_of(&self, addr: Addr) -> u64;

    /// Number of low address bits the map depends on: `module_of` is a
    /// function of `A mod 2^{address_bits_used()}`.
    ///
    /// This is the *determination* bound — the one the stride
    /// equivalence classes ([`crate::StrideClass`]) and the closed-form
    /// [`period`](Self::period) stand on, so it must be exact: a map
    /// whose module choice can depend on high address bits (an
    /// overridden [`RegionMap`]) must report the full width, not a
    /// convenient slice.
    fn address_bits_used(&self) -> u32;

    /// Number of low address bits that bound the map's **balance**
    /// period: over any aligned block of `2^{balance_bits()}`
    /// consecutive addresses, every module receives the same number of
    /// addresses.
    ///
    /// Usually this equals
    /// [`address_bits_used`](Self::address_bits_used) (the default).
    /// The two bounds differ when a map is balanced on a finer grain
    /// than it is determined: an overridden [`RegionMap`] needs the
    /// full address width to *determine* a module (which scheme
    /// governs an address depends on its absolute region index) yet is
    /// balanced inside every aligned region, so its balance period
    /// stays enumerable. The property suite in
    /// `tests/mapping_properties.rs` iterates `2^{balance_bits()}`
    /// addresses per map — implementations must keep this finite
    /// enough to check.
    fn balance_bits(&self) -> u32 {
        self.address_bits_used()
    }

    /// Number of memory modules `M = 2^m`.
    ///
    /// Every constructor in this crate bounds `module_bits()` well
    /// below 64 (returning [`ConfigError`](crate::ConfigError)
    /// otherwise — at most 32 for the single-level maps, `2t ≤ 42` for
    /// [`XorUnmatched`]), so the shift below cannot overflow for
    /// in-crate maps. A downstream implementation reporting
    /// `module_bits() ≥ 64` would otherwise panic in debug and
    /// silently wrap in release — the checked shift turns that into a
    /// defined panic in both profiles.
    fn module_count(&self) -> u64 {
        1u64.checked_shl(self.module_bits())
            // cfva-lint: allow(L002, reason = "deliberate contract panic: turns a downstream module_bits() >= 64 into a defined panic in both profiles, as documented above")
            .unwrap_or_else(|| panic!("module_bits() = {} overflows u64", self.module_bits()))
    }

    /// Period `P_x` of the canonical temporal distribution for stride
    /// family `x`: the module sequence of *any* constant-stride vector of
    /// the family repeats after `P_x` elements.
    ///
    /// `P_x = max(2^{used − x}, 1)` where `used` is
    /// [`address_bits_used`](Self::address_bits_used). Adding
    /// `P_x · σ·2^x = σ·2^{used}` to an address only changes bits the map
    /// never reads, so the sequence repeats exactly — no carry effects.
    /// `P_x` is a *true* period, but need not be the minimal one: some
    /// base/σ combinations repeat earlier (the property suite in
    /// `tests/mapping_properties.rs` pins exactly this contract).
    ///
    /// When `2^{used − x}` does not fit in `u64` (a map consuming the
    /// full address width, e.g. an overridden [`RegionMap`]), the
    /// period saturates at `u64::MAX` — "effectively aperiodic".
    fn period(&self, family: StrideFamily) -> u64 {
        let used = self.address_bits_used();
        let x = family.exponent();
        if x >= used {
            1
        } else {
            1u64.checked_shl(used - x).unwrap_or(u64::MAX)
        }
    }

    /// Maps a whole constant-stride address walk in one call:
    /// `out[k] = module_of(base + k·stride)` for `0 ≤ k < out.len()`
    /// (the requested length is the length of `out`).
    ///
    /// This is the bulk equivalent of calling
    /// [`module_of`](Self::module_of) in a loop, and the mapping layer's
    /// hot path: plan construction
    /// ([`Planner::plan_into`](crate::plan::Planner::plan_into)) resolves
    /// the modules of all `L` elements through **one** call here —
    /// one virtual dispatch per plan instead of one per element.
    ///
    /// The default implementation is the per-element loop. Every map in
    /// this crate overrides it with a specialised version that exploits
    /// the periodicity of the module sequence
    /// ([`period`](Self::period)): at most one period is computed
    /// directly (with tight mask-and-shift loops, or incremental GF(2)
    /// updates driven by precomputed per-address-bit column tables for
    /// the matrix-style maps) and the rest of the slice is filled by
    /// cyclic copying.
    ///
    /// `stride` may be negative (descending walks) or zero (a repeated
    /// address); addresses advance with wrapping arithmetic, matching
    /// [`Addr::offset`]. Implementations must produce exactly what the
    /// per-element loop would.
    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        let mut addr = base.get();
        for slot in out.iter_mut() {
            *slot = self.module_of(Addr::new(addr));
            addr = addr.wrapping_add_signed(stride);
        }
    }
}

impl<M: ModuleMap + ?Sized> ModuleMap for &M {
    fn module_bits(&self) -> u32 {
        (**self).module_bits()
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        (**self).module_of(addr)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        (**self).displacement_of(addr)
    }

    fn address_bits_used(&self) -> u32 {
        (**self).address_bits_used()
    }

    fn balance_bits(&self) -> u32 {
        (**self).balance_bits()
    }

    fn period(&self, family: StrideFamily) -> u64 {
        (**self).period(family)
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        (**self).map_stride_into(base, stride, out)
    }
}

impl<M: ModuleMap + ?Sized> ModuleMap for Box<M> {
    fn module_bits(&self) -> u32 {
        (**self).module_bits()
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        (**self).module_of(addr)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        (**self).displacement_of(addr)
    }

    fn address_bits_used(&self) -> u32 {
        (**self).address_bits_used()
    }

    fn balance_bits(&self) -> u32 {
        (**self).balance_bits()
    }

    fn period(&self, family: StrideFamily) -> u64 {
        (**self).period(family)
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        (**self).map_stride_into(base, stride, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let map = Interleaved::new(3).unwrap();
        let dyn_map: &dyn ModuleMap = &map;
        assert_eq!(dyn_map.module_count(), 8);
        assert_eq!(dyn_map.module_of(Addr::new(11)).get(), 3);
    }

    #[test]
    fn blanket_impls_delegate() {
        let map = Interleaved::new(2).unwrap();
        let by_ref: &Interleaved = &map;
        assert_eq!(by_ref.module_count(), 4);
        assert_eq!(by_ref.period(StrideFamily::new(0)), 4);

        let boxed: Box<dyn ModuleMap> = Box::new(Interleaved::new(2).unwrap());
        assert_eq!(boxed.module_count(), 4);
        assert_eq!(boxed.module_of(Addr::new(7)).get(), 3);
        assert_eq!(boxed.displacement_of(Addr::new(7)), 1);
    }

    #[test]
    fn default_period_saturates_at_one() {
        let map = Interleaved::new(3).unwrap(); // uses 3 address bits
        assert_eq!(map.period(StrideFamily::new(0)), 8);
        assert_eq!(map.period(StrideFamily::new(2)), 2);
        assert_eq!(map.period(StrideFamily::new(3)), 1);
        assert_eq!(map.period(StrideFamily::new(9)), 1);
    }

    /// Regression for the `1u64 << module_bits` overflow: every one of
    /// the seven map constructors must reject any configuration whose
    /// module count would not fit a `u64` (each has a far tighter
    /// documented bound — `m ≤ 32` for the single-level maps, `2t ≤ 42`
    /// for the unmatched map), instead of panicking in debug or
    /// wrapping in release inside `module_count()`.
    #[test]
    fn all_seven_constructors_reject_overflowing_module_bits() {
        // 1. Interleaved: b = A mod 2^m.
        assert!(Interleaved::new(32).is_ok());
        for m in [33u32, 63, 64, 65, u32::MAX] {
            assert!(Interleaved::new(m).is_err(), "Interleaved m = {m}");
        }

        // 2. Skewed: same module-bit budget plus a row index.
        assert!(Skewed::new(32, 7).is_ok());
        for m in [33u32, 64, u32::MAX] {
            assert!(Skewed::new(m, 1).is_err(), "Skewed m = {m}");
        }

        // 3. XorMatched: module_bits = t; s + t <= 63 with s >= t caps
        //    t at 31.
        assert!(XorMatched::new(31, 32).is_ok());
        assert!(XorMatched::new(32, 32).is_err());
        assert!(XorMatched::new(64, 64).is_err());

        // 4. XorUnmatched: module_bits = 2t; y + t <= 63 with
        //    y >= s + t >= 2t caps t at 21.
        assert!(XorUnmatched::new(21, 21, 42).is_ok());
        assert!(XorUnmatched::new(32, 32, 64).is_err());

        // 5. Linear: one matrix row per module bit, at most 32 rows.
        assert!(Linear::new((0..64u32).map(|i| 1u64 << i).collect()).is_err());
        assert!(Linear::interleaved(33).is_err());

        // 6. PseudoRandom: m <= 16 (polynomial degree bound).
        assert!(PseudoRandom::with_default_poly(64).is_err());
        assert!(PseudoRandom::new(64, 1 << 16, 40).is_err());

        // 7. RegionMap: built on XorMatched, so the same t cap applies.
        assert!(RegionMap::new(64, 10, 64).is_err());
    }

    /// `map_stride_into` (here: the specialised overrides, reached
    /// through the `&dyn` and `Box` blanket impls) must agree with the
    /// per-element `module_of` loop everywhere — including negative and
    /// zero strides, which the planner never produces but the API
    /// accepts. Iterates the registry coverage set, so a newly
    /// registered map is checked with no edits here.
    #[test]
    fn bulk_mapping_matches_per_element_loop() {
        let maps: Vec<Box<dyn ModuleMap + Send + Sync>> = Registry::builtin()
            .all_maps()
            .into_iter()
            .map(|(_, map)| map)
            .collect();
        for map in &maps {
            for &(base, stride) in &[
                (0u64, 1i64),
                (16, 12),
                (7, 8),
                (1000, -12),
                (3, 160),
                (42, 0),
                (1 << 20, 5),
                ((1 << 20) - 40, 12), // crosses a RegionMap boundary
            ] {
                for len in [0usize, 1, 7, 64, 257] {
                    let mut bulk = vec![ModuleId::new(0); len];
                    map.map_stride_into(Addr::new(base), stride, &mut bulk);
                    let expect: Vec<ModuleId> = (0..len as u64)
                        .map(|k| {
                            map.module_of(Addr::new(
                                base.wrapping_add_signed(stride.wrapping_mul(k as i64)),
                            ))
                        })
                        .collect();
                    assert_eq!(bulk, expect, "base {base} stride {stride} len {len}");
                }
            }
        }
    }

    /// The validated bound keeps the default `module_count()` shift in
    /// range for every constructible map.
    #[test]
    fn module_count_in_range_at_the_constructor_bound() {
        assert_eq!(Interleaved::new(32).unwrap().module_count(), 1 << 32);
        assert_eq!(Skewed::new(32, 1).unwrap().module_count(), 1 << 32);
        assert_eq!(XorMatched::new(31, 32).unwrap().module_count(), 1 << 31);
        assert_eq!(
            XorUnmatched::new(21, 21, 42).unwrap().module_count(),
            1 << 42
        );
    }
}
