//! Shared machinery for the specialised
//! [`ModuleMap::map_stride_into`](super::ModuleMap::map_stride_into)
//! overrides.
//!
//! Every map only reads the low `used` address bits, so the module
//! sequence of a constant-stride walk repeats after
//! `P = 2^{used − x}` elements (`x` = stride family exponent): adding
//! `P·S = σ·2^{used}` changes only bits the map never reads. The
//! overrides therefore compute **at most one period directly** and fill
//! the remainder of the output by cyclic copying — a per-stride
//! precomputed table of module numbers extended by `memcpy` doubling.

use crate::address::{Addr, ModuleId};

/// Number of leading elements that must be computed directly before the
/// rest of `len` slots can be filled by cyclic copying: one full period
/// of the module sequence for this stride's family, clamped to `len`
/// when the period does not fit.
///
/// `stride` must be nonzero (callers special-case zero strides).
pub(crate) fn head_len(used_bits: u32, stride: i64, len: usize) -> usize {
    debug_assert!(stride != 0, "zero strides are handled by the caller");
    let x = stride.unsigned_abs().trailing_zeros();
    if x >= used_bits {
        // The stride only moves bits the map never reads: every element
        // lands in the same module.
        return len.min(1);
    }
    let exp = used_bits - x;
    if exp >= usize::BITS {
        len
    } else {
        (1usize << exp).min(len)
    }
}

/// Extends the periodic prefix `out[..period]` over the whole slice by
/// doubling copies (`memcpy`, not per-element stores).
///
/// `period` must be a true period of the intended sequence and at least
/// 1 for a nonempty slice.
pub(crate) fn extend_cyclic(out: &mut [ModuleId], period: usize) {
    let mut filled = period;
    while filled < out.len() {
        let (src, dst) = out.split_at_mut(filled);
        let n = src.len().min(dst.len());
        dst[..n].copy_from_slice(&src[..n]);
        filled += n;
    }
}

/// The shared driver: computes the head of the walk directly with
/// `module_at` (a tight, monomorphic per-address closure) and extends it
/// cyclically.
pub(crate) fn fill_stride(
    base: Addr,
    stride: i64,
    used_bits: u32,
    out: &mut [ModuleId],
    mut module_at: impl FnMut(u64) -> u64,
) {
    if out.is_empty() {
        return;
    }
    if stride == 0 {
        out.fill(ModuleId::new(module_at(base.get())));
        return;
    }
    let head = head_len(used_bits, stride, out.len());
    let mut addr = base.get();
    for slot in &mut out[..head] {
        *slot = ModuleId::new(module_at(addr));
        addr = addr.wrapping_add_signed(stride);
    }
    extend_cyclic(out, head);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_len_is_period_clamped_to_len() {
        // used = 6, x = 2 -> period 16.
        assert_eq!(head_len(6, 12, 1024), 16);
        assert_eq!(head_len(6, 12, 10), 10);
        assert_eq!(head_len(6, -12, 1024), 16);
        // Family at or above the used bits: constant module.
        assert_eq!(head_len(3, 8, 100), 1);
        assert_eq!(head_len(3, 16, 100), 1);
        assert_eq!(head_len(3, 8, 0), 0);
        // Periods beyond the address space: everything is head.
        assert_eq!(head_len(63, 1, 100), 100);
    }

    #[test]
    fn extend_cyclic_repeats_the_prefix() {
        let mut out: Vec<ModuleId> = (0..11u64).map(ModuleId::new).collect();
        extend_cyclic(&mut out, 3);
        let got: Vec<u64> = out.iter().map(|m| m.get()).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    fn fill_stride_zero_stride_repeats_base_module() {
        let mut out = vec![ModuleId::new(99); 5];
        fill_stride(Addr::new(13), 0, 3, &mut out, |a| a & 7);
        assert!(out.iter().all(|m| m.get() == 5));
    }
}
