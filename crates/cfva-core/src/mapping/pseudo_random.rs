//! Pseudo-randomly interleaved memory (Rau, ISCA 1991 — the paper's
//! reference \[12\]).

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::error::ConfigError;
use crate::mapping::ModuleMap;

/// Pseudo-random interleaving: the module number is the residue of the
/// address, read as a GF(2) polynomial, modulo an irreducible
/// polynomial `p(x)` of degree `m`.
///
/// Rau's scheme trades the *guaranteed* conflict freedom of skewing/XOR
/// maps for *statistical* uniformity over every stride at once: no
/// stride family clusters catastrophically, but none is perfectly
/// conflict free either. This crate uses it as the "spread everything"
/// baseline against the paper's windowed approach: the experiments show
/// the XOR+replay scheme beats it inside the window and loses less than
/// plain interleaving outside.
///
/// The map is linear over GF(2) (polynomial residue is linear), so it
/// inherits the balance property; the residue matrix columns for the
/// low `m` address bits are the identity, making it full rank.
///
/// # Examples
///
/// ```
/// use cfva_core::mapping::{ModuleMap, PseudoRandom};
/// use cfva_core::Addr;
///
/// // p(x) = x^3 + x + 1 (0b1011), 8 modules.
/// let map = PseudoRandom::new(3, 0b1011, 24)?;
/// assert_eq!(map.module_count(), 8);
/// // Low addresses are identity-mapped...
/// assert_eq!(map.module_of(Addr::new(5)).get(), 5);
/// // ...but address 8 = x^3 ≡ x + 1 (mod p) lands in module 3.
/// assert_eq!(map.module_of(Addr::new(8)).get(), 0b011);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PseudoRandom {
    m: u32,
    poly: u64,
    /// residues[j] = x^j mod p(x), for each address bit j.
    residues: Vec<u64>,
}

impl PseudoRandom {
    /// Creates the map over `2^m` modules using the degree-`m`
    /// polynomial `poly` (bit `m` must be set; lower bits give the
    /// feedback taps) over `address_bits` address bits.
    ///
    /// # Errors
    ///
    /// [`ConfigError::OutOfRange`] if `m` is 0 or > 16, `poly` does not
    /// have degree exactly `m`, or `address_bits > 63`.
    pub fn new(m: u32, poly: u64, address_bits: u32) -> Result<Self, ConfigError> {
        if m == 0 || m > 16 {
            return Err(ConfigError::OutOfRange {
                what: "m",
                value: m as u64,
                constraint: "1 <= m <= 16",
            });
        }
        if address_bits > 63 || address_bits < m {
            return Err(ConfigError::OutOfRange {
                what: "address_bits",
                value: address_bits as u64,
                constraint: "m <= address_bits <= 63",
            });
        }
        if poly >> m != 1 {
            return Err(ConfigError::OutOfRange {
                what: "polynomial",
                value: poly,
                constraint: "degree must equal m (bit m set, none higher)",
            });
        }
        // Precompute x^j mod p(x) by repeated shift-and-reduce.
        let mask = (1u64 << m) - 1;
        let taps = poly & mask;
        let mut residues = Vec::with_capacity(address_bits as usize);
        let mut r = 1u64; // x^0
        for _ in 0..address_bits {
            residues.push(r);
            r <<= 1;
            if r >> m & 1 == 1 {
                r = (r & mask) ^ taps;
            }
        }
        Ok(PseudoRandom { m, poly, residues })
    }

    /// A ready-made instance with a primitive polynomial for each
    /// supported `m` (1..=8), over 40 address bits.
    ///
    /// # Errors
    ///
    /// [`ConfigError::OutOfRange`] for unsupported `m`.
    pub fn with_default_poly(m: u32) -> Result<Self, ConfigError> {
        // Primitive polynomials over GF(2), degree 1..=8.
        let poly = match m {
            1 => 0b11,
            2 => 0b111,
            3 => 0b1011,
            4 => 0b10011,
            5 => 0b100101,
            6 => 0b1000011,
            7 => 0b10000011,
            8 => 0b100011101,
            _ => {
                return Err(ConfigError::OutOfRange {
                    what: "m",
                    value: m as u64,
                    constraint: "default polynomials cover 1 <= m <= 8",
                })
            }
        };
        PseudoRandom::new(m, poly, 40)
    }

    /// The polynomial in use.
    pub const fn polynomial(&self) -> u64 {
        self.poly
    }
}

impl ModuleMap for PseudoRandom {
    fn module_bits(&self) -> u32 {
        self.m
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        let mut b = 0u64;
        let mut a = addr.get();
        let mut j = 0usize;
        while a != 0 && j < self.residues.len() {
            if a & 1 == 1 {
                b ^= self.residues[j];
            }
            a >>= 1;
            j += 1;
        }
        ModuleId::new(b)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        addr.get() >> self.m
    }

    fn address_bits_used(&self) -> u32 {
        self.residues.len() as u32
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        if out.is_empty() {
            return;
        }
        if stride == 0 {
            out.fill(self.module_of(base));
            return;
        }
        // The residue table is exactly the GF(2) column table of this
        // map, so each stride step folds only the columns of the carry
        // chain: `F(A + S) = F(A) ⊕ F(A ⊕ (A + S))`.
        let used = self.residues.len() as u32;
        let used_mask = if used >= 64 {
            u64::MAX
        } else {
            (1u64 << used) - 1
        };
        let head = super::bulk::head_len(used, stride, out.len());
        let mut addr = base.get();
        let mut b = self.module_of(Addr::new(addr)).get();
        for slot in &mut out[..head] {
            *slot = ModuleId::new(b);
            let next = addr.wrapping_add_signed(stride);
            let mut diff = (addr ^ next) & used_mask;
            while diff != 0 {
                // cfva-lint: allow(L002, reason = "diff is masked to the low `used` bits and residues holds one entry per used bit, so trailing_zeros is in range")
                b ^= self.residues[diff.trailing_zeros() as usize];
                diff &= diff - 1;
            }
            addr = next;
        }
        super::bulk::extend_cyclic(out, head);
    }
}

impl fmt::Display for PseudoRandom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pseudo-random (M = {}, p(x) = {:#b})",
            self.module_count(),
            self.poly
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::SpatialDistribution;
    use crate::vector::VectorSpec;

    #[test]
    fn identity_on_low_bits() {
        let map = PseudoRandom::new(3, 0b1011, 24).unwrap();
        for a in 0..8u64 {
            assert_eq!(map.module_of(Addr::new(a)).get(), a);
        }
    }

    #[test]
    fn residue_reduction() {
        // p = x^3 + x + 1: x^3 ≡ x+1 = 3, x^4 ≡ x^2+x = 6,
        // x^5 ≡ x^3+x^2 ≡ x^2+x+1 = 7, x^6 ≡ x^3+x^2+x ≡ x^2+1 = 5.
        let map = PseudoRandom::new(3, 0b1011, 24).unwrap();
        assert_eq!(map.module_of(Addr::new(8)).get(), 3);
        assert_eq!(map.module_of(Addr::new(16)).get(), 6);
        assert_eq!(map.module_of(Addr::new(32)).get(), 7);
        assert_eq!(map.module_of(Addr::new(64)).get(), 5);
        // Linearity: module(8+16) = 3 ^ 6.
        assert_eq!(map.module_of(Addr::new(24)).get(), 3 ^ 6);
    }

    #[test]
    fn balanced_over_full_period() {
        let map = PseudoRandom::new(3, 0b1011, 9).unwrap();
        let span = 1u64 << 9;
        let mut counts = vec![0u64; 8];
        for a in 0..span {
            counts[map.module_of(Addr::new(a)).get() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == span / 8), "{counts:?}");
    }

    #[test]
    fn validates_polynomial_degree() {
        assert!(PseudoRandom::new(3, 0b101, 24).is_err()); // degree 2
        assert!(PseudoRandom::new(3, 0b11011, 24).is_err()); // degree 4
        assert!(PseudoRandom::new(0, 0b1, 24).is_err());
        assert!(PseudoRandom::new(3, 0b1011, 2).is_err()); // too few bits
    }

    #[test]
    fn default_polynomials_construct() {
        for m in 1..=8u32 {
            let map = PseudoRandom::with_default_poly(m).unwrap();
            assert_eq!(map.module_count(), 1 << m);
        }
        assert!(PseudoRandom::with_default_poly(9).is_err());
    }

    #[test]
    fn no_catastrophic_clustering_for_power_of_two_strides() {
        // The whole point of Rau's scheme: stride 2^x never puts
        // everything in one module (unlike plain interleaving).
        let map = PseudoRandom::with_default_poly(3).unwrap();
        for x in 3..=10u32 {
            let vec = VectorSpec::new(0, 1i64 << x, 64).unwrap();
            let sd = SpatialDistribution::compute(&map, &vec);
            assert!(
                sd.modules_visited() >= 4,
                "stride 2^{x} clustered into {} modules",
                sd.modules_visited()
            );
        }
    }
}
