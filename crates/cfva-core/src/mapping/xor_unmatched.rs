//! The paper's unmatched-memory two-level XOR map (equation 2).

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::error::ConfigError;
use crate::mapping::ModuleMap;

/// The two-level linear transformation of the paper's equation (2), for
/// an unmatched memory with `M = T² = 2^{2t}` modules:
///
/// ```text
/// b_i = a_i ⊕ a_{s+i}      0 ≤ i ≤ t−1     (s ≥ t)
/// b_i = a_{y+i−t}           t ≤ i ≤ 2t−1    (y ≥ s+t)
/// ```
///
/// The modules are organised as `T` **sections** of `T` modules each: the
/// upper `t` module bits (driven directly by address bits `y+t−1 .. y`)
/// select the section, so each block of `2^y` addresses maps into one
/// section; within the section, the lower bits use the matched XOR map.
/// **Supermodule** `i` is the set of the `i`-th modules of all sections
/// (lower `t` bits of the module number, paper Section 4.2).
///
/// Properties proved in the paper and tested here:
///
/// * Period for family `x` is `P_x = max(2^{y+t−x}, 1)`.
/// * (Lemma 4) For `x ≤ y`, each of the `2^{y−x}` interleaved
///   subsequences of `2^t` elements within a period lands in `2^t`
///   distinct *sections*.
/// * (Theorem 3) Families `x ∈ [s−N, s] ∪ [y−R, y]` with
///   `N = min(λ−t, s)`, `R = min(λ−t, y)` give T-matched vectors of
///   length `2^λ`; with `s = λ−t`, `y = 2(λ−t)+1` this fuses into the
///   single window `0 ≤ x ≤ 2(λ−t)+1`.
///
/// # Examples
///
/// Figure 7 of the paper (`m = 4, t = 2, s = 3, y = 7`):
///
/// ```
/// use cfva_core::mapping::{ModuleMap, XorUnmatched};
/// use cfva_core::Addr;
///
/// let map = XorUnmatched::new(2, 3, 7)?;
/// // Address 6 (first element of the figure's italic vector) is in
/// // module 2 of section 0:
/// assert_eq!(map.module_of(Addr::new(6)).get(), 2);
/// assert_eq!(map.section_of(Addr::new(6)), 0);
/// assert_eq!(map.supermodule_of(Addr::new(6)), 2);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XorUnmatched {
    t: u32,
    s: u32,
    y: u32,
}

impl XorUnmatched {
    /// Creates the map with latency exponent `t` (module latency
    /// `T = 2^t`, module count `M = 2^{2t}`), shift `s` and section
    /// stride exponent `y`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] unless `t ≤ s`, `s + t ≤ y`
    /// and `y + t ≤ 63`.
    pub fn new(t: u32, s: u32, y: u32) -> Result<Self, ConfigError> {
        if s < t {
            return Err(ConfigError::OutOfRange {
                what: "s",
                value: s as u64,
                constraint: "s >= t",
            });
        }
        if y < s + t {
            return Err(ConfigError::OutOfRange {
                what: "y",
                value: y as u64,
                constraint: "y >= s + t",
            });
        }
        if y + t > 63 {
            return Err(ConfigError::OutOfRange {
                what: "y + t",
                value: (y + t) as u64,
                constraint: "y + t <= 63",
            });
        }
        Ok(XorUnmatched { t, s, y })
    }

    /// Returns `t` (module latency `T = 2^t`; module count `2^{2t}`).
    pub const fn t(&self) -> u32 {
        self.t
    }

    /// Returns the shift `s` — centre of the lower conflict-free window.
    pub const fn s(&self) -> u32 {
        self.s
    }

    /// Returns `y` — centre of the upper conflict-free window, and the
    /// log2 of the address-block size mapped to one section.
    pub const fn y(&self) -> u32 {
        self.y
    }

    /// Section of an address: address bits `y+t−1 .. y` (equal to the
    /// upper `t` bits of the module number).
    pub fn section_of(&self, addr: Addr) -> u64 {
        addr.bits(self.y, self.t)
    }

    /// Supermodule of an address: the lower `t` bits of its module
    /// number, `(A mod 2^t) ⊕ ((A div 2^s) mod 2^t)`.
    pub fn supermodule_of(&self, addr: Addr) -> u64 {
        addr.bits(0, self.t) ^ addr.bits(self.s, self.t)
    }
}

impl ModuleMap for XorUnmatched {
    fn module_bits(&self) -> u32 {
        2 * self.t
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        ModuleId::new((self.section_of(addr) << self.t) | self.supermodule_of(addr))
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        // A >> t uniquely identifies the row: it contains both the XOR
        // operand bits (s ≥ t) and the section bits (y ≥ s+t), so the
        // low t bits can be recovered from (module, A >> t).
        addr.get() >> self.t
    }

    fn address_bits_used(&self) -> u32 {
        self.y + self.t
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        // One period `P_x = 2^{y+t−x}` of the two-level sequence
        // computed directly, the rest filled cyclically.
        let mask = (1u64 << self.t) - 1;
        let (t, s, y) = (self.t, self.s, self.y);
        super::bulk::fill_stride(base, stride, y + t, out, |a| {
            (((a >> y) & mask) << t) | ((a & mask) ^ ((a >> s) & mask))
        });
    }
}

impl fmt::Display for XorUnmatched {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xor-unmatched (M = {}, T = {}, s = {}, y = {})",
            self.module_count(),
            1u64 << self.t,
            self.s,
            self.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stride::StrideFamily;

    fn figure7_map() -> XorUnmatched {
        XorUnmatched::new(2, 3, 7).unwrap()
    }

    #[test]
    fn constructor_validates_parameters() {
        assert!(XorUnmatched::new(2, 1, 7).is_err()); // s < t
        assert!(XorUnmatched::new(2, 3, 4).is_err()); // y < s + t
        assert!(XorUnmatched::new(2, 3, 5).is_ok());
        assert!(XorUnmatched::new(2, 3, 62).is_err()); // y + t > 63
    }

    #[test]
    fn reproduces_figure_7_section_zero_grid() {
        // Figure 7, first block (addresses 0..32 all map into section 0;
        // each row lists which address sits in modules 0..4).
        let map = figure7_map();
        let rows: [[u64; 4]; 8] = [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [9, 8, 11, 10],
            [13, 12, 15, 14],
            [18, 19, 16, 17],
            [22, 23, 20, 21],
            [27, 26, 25, 24],
            [31, 30, 29, 28],
        ];
        for (row, entries) in rows.iter().enumerate() {
            for (module, &addr) in entries.iter().enumerate() {
                assert_eq!(
                    map.module_of(Addr::new(addr)).get(),
                    module as u64,
                    "address {addr} should be in module {module} (row {row})"
                );
                assert_eq!(map.section_of(Addr::new(addr)), 0);
            }
        }
    }

    #[test]
    fn reproduces_figure_7_wraparound_rows() {
        // After four 128-address blocks (sections 0..3) the fifth block
        // (512..) wraps back to section 0: figure row "512 513 514 515".
        let map = figure7_map();
        for (module, addr) in [512u64, 513, 514, 515].into_iter().enumerate() {
            assert_eq!(map.module_of(Addr::new(addr)).get(), module as u64);
        }
        // Figure's bottom-right block: "507 506 505 504" sits in modules
        // 12..16 (section 3).
        for (i, addr) in [507u64, 506, 505, 504].into_iter().enumerate() {
            assert_eq!(map.module_of(Addr::new(addr)).get(), 12 + i as u64);
            assert_eq!(map.section_of(Addr::new(addr)), 3);
        }
    }

    #[test]
    fn reproduces_figure_7_italic_vector() {
        // The italic elements: lambda = 5, A1 = 6, S = 16 (x = 4).
        // Lemma 4 subsequences are {e, e+8, e+16, e+24}; the paper lists
        // their modules as (2,6,10,14), (0,4,8,12), (2,6,10,14), ...,
        // alternating, ending with (0,4,8,12).
        let map = figure7_map();
        let module_of_elem = |e: u64| map.module_of(Addr::new(6 + 16 * e)).get();
        for first in 0..8u64 {
            let mods: Vec<u64> = (0..4).map(|k| module_of_elem(first + 8 * k)).collect();
            let expected = if first % 2 == 0 {
                vec![2, 6, 10, 14]
            } else {
                vec![0, 4, 8, 12]
            };
            assert_eq!(mods, expected, "subsequence starting at element {first}");
        }
    }

    #[test]
    fn reproduces_section_4_1_second_example() {
        // x = 6, sigma = 3, A1 = 0 (stride 192): P_x = 8, two
        // subsequences (0,2,4,6) and (1,3,5,7) in modules (0,12,8,4) and
        // (4,0,12,8).
        let map = figure7_map();
        let module_of_elem = |e: u64| map.module_of(Addr::new(192 * e)).get();
        let sub1: Vec<u64> = [0u64, 2, 4, 6].iter().map(|&e| module_of_elem(e)).collect();
        let sub2: Vec<u64> = [1u64, 3, 5, 7].iter().map(|&e| module_of_elem(e)).collect();
        assert_eq!(sub1, vec![0, 12, 8, 4]);
        assert_eq!(sub2, vec![4, 0, 12, 8]);
    }

    #[test]
    fn period_matches_paper_formula() {
        // P_x = 2^{y+t-x}
        let map = figure7_map();
        assert_eq!(map.period(StrideFamily::new(0)), 512);
        assert_eq!(map.period(StrideFamily::new(4)), 32);
        assert_eq!(map.period(StrideFamily::new(6)), 8);
        assert_eq!(map.period(StrideFamily::new(9)), 1);
        assert_eq!(map.period(StrideFamily::new(30)), 1);
    }

    #[test]
    fn section_and_supermodule_decompose_module() {
        let map = figure7_map();
        for a in 0..2048u64 {
            let addr = Addr::new(a);
            let module = map.module_of(addr);
            assert_eq!(module.section(2), map.section_of(addr));
            assert_eq!(module.supermodule(2), map.supermodule_of(addr));
        }
    }

    #[test]
    fn in_order_conflict_free_for_family_s() {
        // T consecutive elements of a stride sigma·2^s vector hit T
        // distinct supermodules, hence T distinct modules.
        let map = figure7_map();
        for sigma in [1u64, 3, 5] {
            let stride = sigma << 3;
            for base in [0u64, 6, 129, 500] {
                let modules: Vec<u64> = (0..32u64)
                    .map(|i| map.module_of(Addr::new(base + stride * i)).get())
                    .collect();
                for w in modules.windows(4) {
                    let set: std::collections::BTreeSet<&u64> = w.iter().collect();
                    assert_eq!(set.len(), 4, "sigma={sigma} base={base}");
                }
            }
        }
    }

    #[test]
    fn balanced_over_one_full_period_of_addresses() {
        let map = XorUnmatched::new(2, 2, 4).unwrap();
        let span = 1u64 << map.address_bits_used();
        let mut counts = vec![0u64; map.module_count() as usize];
        for a in 0..span {
            counts[map.module_of(Addr::new(a)).get() as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == span / map.module_count()),
            "unbalanced: {counts:?}"
        );
    }

    #[test]
    fn display() {
        assert_eq!(
            figure7_map().to_string(),
            "xor-unmatched (M = 16, T = 4, s = 3, y = 7)"
        );
    }
}
