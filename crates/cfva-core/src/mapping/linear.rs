//! Arbitrary GF(2) linear address transformations.

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::error::ConfigError;
use crate::mapping::ModuleMap;

/// A general linear transformation over GF(2): each module-number bit is
/// the XOR (parity) of a chosen subset of address bits.
///
/// This is the "XOR-scheme" class of Frailong/Jalby/Lenfant and
/// Norton–Melton, of which the paper's equations (1) and (2) are special
/// cases — see [`Linear::xor_matched`] and [`Linear::xor_unmatched`].
/// Row `i` of the matrix is stored as a bitmask over address bits:
/// `b_i = parity(A & rows[i])`.
///
/// The constructor rejects matrices that are not full rank: a rank
/// deficit would leave some modules permanently unused (the map would not
/// be balanced), violating the [`ModuleMap`] contract.
///
/// # Examples
///
/// The identity-on-low-bits matrix is ordinary interleaving:
///
/// ```
/// use cfva_core::mapping::{Linear, ModuleMap};
/// use cfva_core::Addr;
///
/// let map = Linear::new(vec![0b001, 0b010, 0b100])?;
/// assert_eq!(map.module_of(Addr::new(13)).get(), 5);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Linear {
    /// rows[i] = mask of address bits XORed into module bit i.
    rows: Vec<u64>,
    bits_used: u32,
}

impl Linear {
    /// Creates a linear map from its matrix rows; `rows[i]` is the mask
    /// of address bits whose parity forms module bit `i`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::OutOfRange`] if there are no rows, more than 32,
    ///   or any row is zero;
    /// * [`ConfigError::SingularMatrix`] if the rows are linearly
    ///   dependent over GF(2).
    pub fn new(rows: Vec<u64>) -> Result<Self, ConfigError> {
        if rows.is_empty() || rows.len() > 32 {
            return Err(ConfigError::OutOfRange {
                what: "matrix rows",
                value: rows.len() as u64,
                constraint: "1 <= rows <= 32",
            });
        }
        if rows.contains(&0) {
            return Err(ConfigError::OutOfRange {
                what: "matrix row",
                value: 0,
                constraint: "rows must be nonzero",
            });
        }
        if gf2_rank(&rows) != rows.len() {
            return Err(ConfigError::SingularMatrix);
        }
        let highest = rows
            .iter()
            .map(|r| 63 - r.leading_zeros())
            .max()
            // cfva-lint: allow(L002, reason = "the empty-rows case was rejected above with OutOfRange, so max() sees at least one element")
            .expect("rows is nonempty");
        Ok(Linear {
            rows,
            bits_used: highest + 1,
        })
    }

    /// Builds the matrix equivalent of the paper's matched map
    /// [`XorMatched`](super::XorMatched): `b_i = a_i ⊕ a_{s+i}`.
    ///
    /// # Errors
    ///
    /// Propagates the same constraint violations as
    /// [`XorMatched::new`](super::XorMatched::new).
    pub fn xor_matched(t: u32, s: u32) -> Result<Self, ConfigError> {
        // Validate via the dedicated type so constraints live in one place.
        super::XorMatched::new(t, s)?;
        let rows = (0..t).map(|i| (1u64 << i) | (1u64 << (s + i))).collect();
        Linear::new(rows)
    }

    /// Builds the matrix equivalent of the paper's unmatched map
    /// [`XorUnmatched`](super::XorUnmatched).
    ///
    /// # Errors
    ///
    /// Propagates the same constraint violations as
    /// [`XorUnmatched::new`](super::XorUnmatched::new).
    pub fn xor_unmatched(t: u32, s: u32, y: u32) -> Result<Self, ConfigError> {
        super::XorUnmatched::new(t, s, y)?;
        let lower = (0..t).map(|i| (1u64 << i) | (1u64 << (s + i)));
        let upper = (0..t).map(|i| 1u64 << (y + i));
        Linear::new(lower.chain(upper).collect())
    }

    /// Builds plain low-order interleaving over `2^m` modules.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] if `m` is 0 or exceeds 32.
    pub fn interleaved(m: u32) -> Result<Self, ConfigError> {
        if m == 0 || m > 32 {
            return Err(ConfigError::OutOfRange {
                what: "m",
                value: m as u64,
                constraint: "1 <= m <= 32",
            });
        }
        Linear::new((0..m).map(|i| 1u64 << i).collect())
    }

    /// Returns the matrix rows (bitmask per module bit).
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }
}

/// Rank of a set of GF(2) row vectors (given as bitmasks).
fn gf2_rank(rows: &[u64]) -> usize {
    let mut basis: Vec<u64> = Vec::new();
    for &row in rows {
        let mut v = row;
        for &b in &basis {
            let high = 63 - b.leading_zeros();
            if v >> high & 1 == 1 {
                v ^= b;
            }
        }
        if v != 0 {
            basis.push(v);
            basis.sort_unstable_by_key(|b| std::cmp::Reverse(*b));
        }
    }
    basis.len()
}

impl ModuleMap for Linear {
    fn module_bits(&self) -> u32 {
        self.rows.len() as u32
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        let mut b = 0u64;
        for (i, &mask) in self.rows.iter().enumerate() {
            b |= (((addr.get() & mask).count_ones() & 1) as u64) << i;
        }
        ModuleId::new(b)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        // Conservative row index: the full address shifted by nothing
        // would double-count module information, but any injective
        // completion works; use the address above the lowest matrix
        // column, which for the standard constructions equals the usual
        // row number. For exotic matrices this is still injective
        // together with the module number because the matrix is full
        // rank on its column span.
        addr.get() >> self.rows.len().trailing_zeros().min(63)
    }

    fn address_bits_used(&self) -> u32 {
        self.bits_used
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        if out.is_empty() {
            return;
        }
        // Column form of the matrix: columns[j] = module bits fed by
        // address bit j. GF(2) linearity gives
        // `F(A + S) = F(A) ⊕ F(A ⊕ (A + S))`, and the XOR difference of
        // one stride step has only a short carry chain of set bits — so
        // each step folds a handful of column entries instead of
        // re-evaluating every matrix row.
        let mut columns = [0u64; 64];
        for (i, &mask) in self.rows.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                // cfva-lint: allow(L002, reason = "trailing_zeros of a nonzero u64 is < 64, the fixed length of columns")
                columns[m.trailing_zeros() as usize] |= 1u64 << i;
                m &= m - 1;
            }
        }
        let eval = |a: u64| {
            let mut b = 0u64;
            let mut m = a;
            while m != 0 {
                // cfva-lint: allow(L002, reason = "trailing_zeros of a nonzero u64 is < 64, the fixed length of columns")
                b ^= columns[m.trailing_zeros() as usize];
                m &= m - 1;
            }
            b
        };
        if stride == 0 {
            out.fill(ModuleId::new(eval(base.get())));
            return;
        }
        let head = super::bulk::head_len(self.bits_used, stride, out.len());
        let mut addr = base.get();
        let mut b = eval(addr);
        for slot in &mut out[..head] {
            *slot = ModuleId::new(b);
            let next = addr.wrapping_add_signed(stride);
            let mut diff = addr ^ next;
            while diff != 0 {
                // cfva-lint: allow(L002, reason = "trailing_zeros of a nonzero u64 is < 64, the fixed length of columns")
                b ^= columns[diff.trailing_zeros() as usize];
                diff &= diff - 1;
            }
            addr = next;
        }
        super::bulk::extend_cyclic(out, head);
    }
}

impl fmt::Display for Linear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear GF(2) map (M = {})", self.module_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{XorMatched, XorUnmatched};
    use crate::stride::StrideFamily;

    #[test]
    fn rank_computation() {
        assert_eq!(gf2_rank(&[0b001, 0b010, 0b100]), 3);
        assert_eq!(gf2_rank(&[0b001, 0b010, 0b011]), 2);
        assert_eq!(gf2_rank(&[0b101, 0b011, 0b110]), 2);
        assert_eq!(gf2_rank(&[]), 0);
    }

    #[test]
    fn rejects_singular_matrix() {
        assert_eq!(
            Linear::new(vec![0b001, 0b010, 0b011]),
            Err(ConfigError::SingularMatrix)
        );
    }

    #[test]
    fn rejects_empty_and_zero_rows() {
        assert!(Linear::new(vec![]).is_err());
        assert!(Linear::new(vec![0b1, 0]).is_err());
    }

    #[test]
    fn matches_xor_matched_special_case() {
        let lin = Linear::xor_matched(3, 4).unwrap();
        let xor = XorMatched::new(3, 4).unwrap();
        assert_eq!(lin.module_bits(), xor.module_bits());
        assert_eq!(lin.address_bits_used(), xor.address_bits_used());
        for a in 0..4096u64 {
            assert_eq!(lin.module_of(Addr::new(a)), xor.module_of(Addr::new(a)));
        }
    }

    #[test]
    fn matches_xor_unmatched_special_case() {
        let lin = Linear::xor_unmatched(2, 3, 7).unwrap();
        let xor = XorUnmatched::new(2, 3, 7).unwrap();
        assert_eq!(lin.module_bits(), xor.module_bits());
        assert_eq!(lin.address_bits_used(), xor.address_bits_used());
        for a in 0..4096u64 {
            assert_eq!(lin.module_of(Addr::new(a)), xor.module_of(Addr::new(a)));
        }
    }

    #[test]
    fn matches_interleaved_special_case() {
        let lin = Linear::interleaved(4).unwrap();
        for a in 0..256u64 {
            assert_eq!(lin.module_of(Addr::new(a)).get(), a % 16);
        }
    }

    #[test]
    fn period_bound_from_highest_bit() {
        let lin = Linear::xor_matched(3, 3).unwrap();
        // Highest address bit used: s + t - 1 = 5, so 6 bits used.
        assert_eq!(lin.address_bits_used(), 6);
        assert_eq!(lin.period(StrideFamily::new(0)), 64);
        assert_eq!(lin.period(StrideFamily::new(2)), 16);
    }

    #[test]
    fn balanced_over_full_span() {
        // A "random looking" full-rank matrix is still balanced.
        let lin = Linear::new(vec![0b1011, 0b0110]).unwrap();
        let span = 1u64 << lin.address_bits_used();
        let mut counts = vec![0u64; lin.module_count() as usize];
        for a in 0..span {
            counts[lin.module_of(Addr::new(a)).get() as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == span / lin.module_count()),
            "unbalanced: {counts:?}"
        );
    }

    #[test]
    fn propagates_parameter_validation() {
        assert!(Linear::xor_matched(3, 2).is_err()); // s < t
        assert!(Linear::xor_unmatched(2, 3, 4).is_err()); // y < s + t
        assert!(Linear::interleaved(0).is_err());
    }

    #[test]
    fn display() {
        let lin = Linear::interleaved(3).unwrap();
        assert_eq!(lin.to_string(), "linear GF(2) map (M = 8)");
    }
}
