//! Conventional low-order interleaving.

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::error::ConfigError;
use crate::mapping::ModuleMap;

/// Low-order interleaving: `b = A mod M`, displacement `A div M`.
///
/// The baseline scheme of every classical memory system. For a matched
/// memory (`M = T`) it gives conflict-free in-order access exactly for
/// **odd** strides (family `x = 0`): consecutive addresses `A + iσ` visit
/// all `M` modules before repeating because `σ` is invertible mod `2^m`.
/// Any even stride concentrates the accesses on a subset of modules.
///
/// # Examples
///
/// ```
/// use cfva_core::mapping::{Interleaved, ModuleMap};
/// use cfva_core::Addr;
///
/// let map = Interleaved::new(3)?; // 8 modules
/// assert_eq!(map.module_of(Addr::new(13)).get(), 5);
/// assert_eq!(map.displacement_of(Addr::new(13)), 1);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interleaved {
    m: u32,
}

impl Interleaved {
    /// Creates an interleaved map over `2^m` modules.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] if `m > 32`: more modules
    /// than any machine ever shipped, intermediate math would risk
    /// overflow, and `m ≥ 64` would overflow the `u64` module count
    /// outright ([`ModuleMap::module_count`]).
    pub fn new(m: u32) -> Result<Self, ConfigError> {
        if m > 32 {
            return Err(ConfigError::OutOfRange {
                what: "m",
                value: m as u64,
                constraint: "m <= 32",
            });
        }
        Ok(Interleaved { m })
    }

    /// Returns `m = log2(M)`.
    pub const fn m(&self) -> u32 {
        self.m
    }
}

impl ModuleMap for Interleaved {
    fn module_bits(&self) -> u32 {
        self.m
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        ModuleId::new(addr.bits(0, self.m))
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        addr.get() >> self.m
    }

    fn address_bits_used(&self) -> u32 {
        self.m
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        // One period computed with a mask-and-shift loop, the rest
        // filled cyclically — no virtual call per element.
        let mask = (1u64 << self.m) - 1;
        super::bulk::fill_stride(base, stride, self.m, out, |a| a & mask);
    }
}

impl fmt::Display for Interleaved {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interleaved (M = {})", self.module_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stride::StrideFamily;

    #[test]
    fn module_is_low_bits() {
        let map = Interleaved::new(3).unwrap();
        for a in 0..64u64 {
            assert_eq!(map.module_of(Addr::new(a)).get(), a % 8);
            assert_eq!(map.displacement_of(Addr::new(a)), a / 8);
        }
    }

    #[test]
    fn period_is_m_minus_x() {
        let map = Interleaved::new(4).unwrap();
        assert_eq!(map.period(StrideFamily::new(0)), 16);
        assert_eq!(map.period(StrideFamily::new(1)), 8);
        assert_eq!(map.period(StrideFamily::new(4)), 1);
        assert_eq!(map.period(StrideFamily::new(10)), 1);
    }

    #[test]
    fn odd_strides_visit_all_modules_in_any_window() {
        // The classical result: for odd sigma, any M consecutive elements
        // land in M distinct modules.
        let map = Interleaved::new(3).unwrap();
        for sigma in [1i64, 3, 5, 7, 9, 11] {
            for base in [0u64, 5, 17, 100] {
                let mut seen = [false; 8];
                for i in 0..8 {
                    let a = Addr::new(base + (sigma as u64) * i);
                    let m = map.module_of(a).get() as usize;
                    assert!(!seen[m], "module {m} repeated for sigma {sigma}");
                    seen[m] = true;
                }
            }
        }
    }

    #[test]
    fn even_strides_cluster() {
        // Stride 2: only half the modules are ever visited.
        let map = Interleaved::new(3).unwrap();
        let visited: std::collections::BTreeSet<u64> = (0..32u64)
            .map(|i| map.module_of(Addr::new(2 * i)).get())
            .collect();
        assert_eq!(visited.len(), 4);
    }

    #[test]
    fn single_module_degenerate_case() {
        let map = Interleaved::new(0).unwrap();
        assert_eq!(map.module_count(), 1);
        assert_eq!(map.module_of(Addr::new(123)).get(), 0);
        assert_eq!(map.displacement_of(Addr::new(123)), 123);
    }

    #[test]
    fn display() {
        assert_eq!(
            Interleaved::new(3).unwrap().to_string(),
            "interleaved (M = 8)"
        );
    }
}
