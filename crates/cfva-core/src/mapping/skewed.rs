//! Row-rotation skewed storage.

use std::fmt;

use crate::address::{Addr, ModuleId};
use crate::error::ConfigError;
use crate::mapping::ModuleMap;

/// Skewed storage: `b = (A + d·row) mod M` with `row = (A div M) mod M`.
///
/// The classical array-processor scheme ([Budnik & Kuck 1971], used for
/// vector memories by [Harper & Jump 1986]): each row of `M` consecutive
/// addresses is rotated by `d` positions relative to the previous row.
/// With an odd skew distance `d`, column accesses (stride `M`) become
/// conflict free at the cost of the plain unit-stride pattern staying
/// conflict free too (each row still visits all modules).
///
/// This crate uses it as one of the in-order baselines the paper's
/// scheme is compared against. Like the paper's XOR maps, a skewed map
/// serves *one* stride family conflict-free in order.
///
/// [Budnik & Kuck 1971]: super::Linear
/// [Harper & Jump 1986]: super::XorMatched
///
/// # Examples
///
/// ```
/// use cfva_core::mapping::{ModuleMap, Skewed};
/// use cfva_core::Addr;
///
/// let map = Skewed::new(2, 1).unwrap(); // 4 modules, skew 1
/// // Row 0: addresses 0..4 -> modules 0,1,2,3
/// // Row 1: addresses 4..8 -> modules 1,2,3,0 (rotated by 1)
/// assert_eq!(map.module_of(Addr::new(4)).get(), 1);
/// assert_eq!(map.module_of(Addr::new(7)).get(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Skewed {
    m: u32,
    skew: u64,
}

impl Skewed {
    /// Creates a skewed map over `2^m` modules with skew distance
    /// `skew` (reduced mod `M`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] if `m > 32`: the row index
    /// needs `2m` address bits, and `m ≥ 64` would overflow the `u64`
    /// module count ([`ModuleMap::module_count`]).
    pub fn new(m: u32, skew: u64) -> Result<Self, ConfigError> {
        if m > 32 {
            return Err(ConfigError::OutOfRange {
                what: "m",
                value: m as u64,
                constraint: "m <= 32",
            });
        }
        let mask = (1u64 << m) - 1;
        Ok(Skewed {
            m,
            skew: skew & mask,
        })
    }

    /// Returns `m = log2(M)`.
    pub const fn m(&self) -> u32 {
        self.m
    }

    /// Returns the skew distance `d`.
    pub const fn skew(&self) -> u64 {
        self.skew
    }
}

impl ModuleMap for Skewed {
    fn module_bits(&self) -> u32 {
        self.m
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        let mask = (1u64 << self.m) - 1;
        let row = addr.bits(self.m, self.m);
        ModuleId::new((addr.get().wrapping_add(self.skew.wrapping_mul(row))) & mask)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        addr.get() >> self.m
    }

    fn address_bits_used(&self) -> u32 {
        2 * self.m
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        // One period computed with a mask-and-shift loop, the rest
        // filled cyclically — no virtual call per element.
        let mask = (1u64 << self.m) - 1;
        let m = self.m;
        let skew = self.skew;
        super::bulk::fill_stride(base, stride, 2 * m, out, |a| {
            a.wrapping_add(skew.wrapping_mul((a >> m) & mask)) & mask
        });
    }
}

impl fmt::Display for Skewed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "skewed (M = {}, d = {})", self.module_count(), self.skew)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stride::StrideFamily;

    #[test]
    fn rows_are_rotated() {
        let map = Skewed::new(3, 1).unwrap();
        // Row r (addresses 8r..8r+8) should map to modules (i + r) mod 8,
        // within the first 8 rows (the row index wraps at M).
        for r in 0..8u64 {
            for i in 0..8u64 {
                let a = Addr::new(8 * r + i);
                assert_eq!(map.module_of(a).get(), (i + r) % 8, "row {r} col {i}");
            }
        }
    }

    #[test]
    fn skew_reduces_mod_m() {
        assert_eq!(Skewed::new(3, 9).unwrap().skew(), 1);
        assert_eq!(Skewed::new(2, 4).unwrap().skew(), 0);
    }

    #[test]
    fn zero_skew_degenerates_to_interleaving() {
        let map = Skewed::new(3, 0).unwrap();
        for a in 0..128u64 {
            assert_eq!(map.module_of(Addr::new(a)).get(), a % 8);
        }
    }

    #[test]
    fn column_stride_is_conflict_free_with_odd_skew() {
        // Stride M = 8 walks a column; with skew 1 each step moves to the
        // next module, so 8 consecutive column elements hit 8 modules.
        let map = Skewed::new(3, 1).unwrap();
        for base in [0u64, 3, 11] {
            let mut seen = [false; 8];
            for i in 0..8u64 {
                let a = Addr::new(base + 8 * i);
                let m = map.module_of(a).get() as usize;
                assert!(!seen[m], "module {m} repeated at base {base}");
                seen[m] = true;
            }
        }
    }

    #[test]
    fn column_stride_conflicts_without_skew() {
        let map = Skewed::new(3, 0).unwrap();
        let first = map.module_of(Addr::new(0));
        let second = map.module_of(Addr::new(8));
        assert_eq!(first, second, "interleaving sends a column to one module");
    }

    #[test]
    fn period_covers_two_m_bits() {
        let map = Skewed::new(3, 1).unwrap();
        assert_eq!(map.period(StrideFamily::new(0)), 64);
        assert_eq!(map.period(StrideFamily::new(6)), 1);
    }

    #[test]
    fn period_contract_holds() {
        // module_of(A + P·S) == module_of(A) for strides of the family.
        let map = Skewed::new(3, 3).unwrap();
        for x in 0..7u32 {
            let p = map.period(StrideFamily::new(x));
            let stride = 3u64 << x; // sigma = 3
            for base in [0u64, 1, 17, 255] {
                let a = Addr::new(base);
                let b = Addr::new(base + p * stride);
                assert_eq!(map.module_of(a), map.module_of(b), "x={x} base={base}");
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(
            Skewed::new(3, 1).unwrap().to_string(),
            "skewed (M = 8, d = 1)"
        );
    }
}
