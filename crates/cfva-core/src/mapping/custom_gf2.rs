//! User-supplied GF(2) matrix maps, loadable from `.gf2` files.

use std::fmt;
use std::path::Path;

use crate::address::{Addr, ModuleId};
use crate::error::ConfigError;
use crate::mapping::ModuleMap;

/// A module map defined by a user-supplied GF(2) row matrix: module bit
/// `i` is the parity of the address bits selected by row `i`, exactly
/// like [`Linear`](super::Linear) — but built for maps that arrive *at
/// runtime* (from a registry spec or a matrix file) rather than from
/// code:
///
/// * the matrix **width** is explicit (`cols`), so ragged or
///   odd-shaped inputs are rejected instead of silently widened to the
///   highest set bit;
/// * the matrix can be parsed from the text format of
///   [`CustomGf2::from_file`];
/// * the GF(2) **column table** driving the bulk
///   [`map_stride_into`](ModuleMap::map_stride_into) fast path is
///   precomputed once at construction, not per bulk call — a map
///   selected by config string pays the same per-plan cost as the
///   built-in maps.
///
/// The constructor rejects matrices that are not full rank (rank =
/// number of rows): a rank deficit would leave some modules permanently
/// unused, violating the balance contract of [`ModuleMap`].
///
/// # Matrix file format
///
/// One row per line, most significant address bit leftmost; the first
/// row is module bit 0. Blank lines and `#` comments are ignored, and
/// every row must have the same number of columns:
///
/// ```text
/// # eq. (1) of the paper with t = 3, s = 3: b_i = a_i XOR a_{3+i}
/// 001001
/// 010010
/// 100100
/// ```
///
/// # Examples
///
/// ```
/// use cfva_core::mapping::{CustomGf2, ModuleMap, XorMatched};
/// use cfva_core::Addr;
///
/// // The same eq. (1) matrix, built from row bitmasks.
/// let custom = CustomGf2::new(vec![0b001001, 0b010010, 0b100100], 6)?;
/// let builtin = XorMatched::new(3, 3)?;
/// for a in 0..256u64 {
///     assert_eq!(custom.module_of(Addr::new(a)), builtin.module_of(Addr::new(a)));
/// }
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CustomGf2 {
    /// rows[i] = mask of address bits XORed into module bit i.
    rows: Vec<u64>,
    /// Declared matrix width: the map reads address bits `0..cols`.
    cols: u32,
    /// columns[j] = module bits fed by address bit j — the bulk-mapping
    /// fast-path table, fixed at construction.
    columns: [u64; 64],
}

impl CustomGf2 {
    /// Creates the map from row bitmasks and an explicit matrix width.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::OutOfRange`] if there are no rows, more than
    ///   32, the width is 0 or exceeds 63, a row is zero, or a row has
    ///   bits at or beyond column `cols` (an odd-shaped matrix);
    /// * [`ConfigError::SingularMatrix`] if the rows are linearly
    ///   dependent over GF(2) (rank < number of module bits).
    pub fn new(rows: Vec<u64>, cols: u32) -> Result<Self, ConfigError> {
        if rows.is_empty() || rows.len() > 32 {
            return Err(ConfigError::OutOfRange {
                what: "matrix rows",
                value: rows.len() as u64,
                constraint: "1 <= rows <= 32",
            });
        }
        if cols == 0 || cols > 63 {
            return Err(ConfigError::OutOfRange {
                what: "matrix columns",
                value: cols as u64,
                constraint: "1 <= cols <= 63",
            });
        }
        if rows.len() as u32 > cols {
            return Err(ConfigError::OutOfRange {
                what: "matrix rows",
                value: rows.len() as u64,
                constraint: "rows <= cols (a taller-than-wide matrix cannot be full rank)",
            });
        }
        let width_mask = (1u64 << cols) - 1;
        for &row in &rows {
            if row == 0 {
                return Err(ConfigError::OutOfRange {
                    what: "matrix row",
                    value: 0,
                    constraint: "rows must be nonzero",
                });
            }
            if row & !width_mask != 0 {
                return Err(ConfigError::OutOfRange {
                    what: "matrix row",
                    value: row,
                    constraint: "rows must fit the declared column count",
                });
            }
        }
        if gf2_rank(&rows) != rows.len() {
            return Err(ConfigError::SingularMatrix);
        }
        let mut columns = [0u64; 64];
        for (i, &mask) in rows.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                // cfva-lint: allow(L002, reason = "trailing_zeros of a nonzero u64 is < 64, the fixed length of columns")
                columns[m.trailing_zeros() as usize] |= 1u64 << i;
                m &= m - 1;
            }
        }
        Ok(CustomGf2 {
            rows,
            cols,
            columns,
        })
    }

    /// Parses the matrix text format (see the type docs) and builds the
    /// map. The column count is the common line width; the row order of
    /// the file is the module-bit order.
    ///
    /// # Errors
    ///
    /// [`ConfigError::MatrixFile`] for format violations (non-binary
    /// characters, ragged lines, no rows), plus everything
    /// [`CustomGf2::new`] rejects.
    pub fn parse_matrix(text: &str, origin: &str) -> Result<Self, ConfigError> {
        let file_err = |reason: String| ConfigError::MatrixFile {
            path: origin.to_string(),
            reason,
        };
        let mut rows = Vec::new();
        let mut cols: Option<(u32, usize)> = None; // (width, first line no)
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let width = line.chars().count() as u32;
            match cols {
                None => cols = Some((width, lineno)),
                Some((w, first)) if w != width => {
                    return Err(file_err(format!(
                        "line {lineno} has {width} columns, line {first} had {w}"
                    )));
                }
                Some(_) => {}
            }
            if width > 63 {
                return Err(file_err(format!(
                    "line {lineno} has {width} columns; at most 63 are supported"
                )));
            }
            let mut row = 0u64;
            for c in line.chars() {
                row = (row << 1)
                    | match c {
                        '0' => 0,
                        '1' => 1,
                        other => {
                            return Err(file_err(format!(
                                "line {lineno} has non-binary character {other:?}"
                            )));
                        }
                    };
            }
            rows.push(row);
        }
        let Some((cols, _)) = cols else {
            return Err(file_err("no matrix rows (empty file?)".to_string()));
        };
        CustomGf2::new(rows, cols)
    }

    /// Reads and parses a matrix file (see the type docs for the
    /// format).
    ///
    /// # Errors
    ///
    /// [`ConfigError::MatrixFile`] when the file cannot be read, plus
    /// everything [`parse_matrix`](Self::parse_matrix) rejects.
    pub fn from_file<P: AsRef<Path>>(path: P) -> Result<Self, ConfigError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError::MatrixFile {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        CustomGf2::parse_matrix(&text, &path.display().to_string())
    }

    /// The matrix rows (bitmask of address bits per module bit).
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// The declared matrix width (address bits read).
    pub const fn cols(&self) -> u32 {
        self.cols
    }
}

/// Rank of a set of GF(2) row vectors (given as bitmasks).
fn gf2_rank(rows: &[u64]) -> usize {
    let mut basis: Vec<u64> = Vec::new();
    for &row in rows {
        let mut v = row;
        for &b in &basis {
            let high = 63 - b.leading_zeros();
            if v >> high & 1 == 1 {
                v ^= b;
            }
        }
        if v != 0 {
            basis.push(v);
            basis.sort_unstable_by_key(|b| std::cmp::Reverse(*b));
        }
    }
    basis.len()
}

impl ModuleMap for CustomGf2 {
    fn module_bits(&self) -> u32 {
        self.rows.len() as u32
    }

    fn module_of(&self, addr: Addr) -> ModuleId {
        let mut b = 0u64;
        let mut m = addr.get() & ((1u64 << self.cols) - 1);
        while m != 0 {
            // cfva-lint: allow(L002, reason = "trailing_zeros of a nonzero u64 is < 64, the fixed length of columns")
            b ^= self.columns[m.trailing_zeros() as usize];
            m &= m - 1;
        }
        ModuleId::new(b)
    }

    fn displacement_of(&self, addr: Addr) -> u64 {
        // The full address: trivially injective together with any
        // module number. A user matrix has no canonical "row" notion
        // to expose, so no bits are dropped.
        addr.get()
    }

    fn address_bits_used(&self) -> u32 {
        self.cols
    }

    fn map_stride_into(&self, base: Addr, stride: i64, out: &mut [ModuleId]) {
        if out.is_empty() {
            return;
        }
        if stride == 0 {
            out.fill(self.module_of(base));
            return;
        }
        // GF(2) linearity: `F(A + S) = F(A) ⊕ F(A ⊕ (A + S))`, and the
        // XOR difference of one stride step is a short carry chain — so
        // each step folds a handful of entries of the precomputed
        // column table. One period directly, the rest cyclically.
        let width_mask = (1u64 << self.cols) - 1;
        let head = super::bulk::head_len(self.cols, stride, out.len());
        let mut addr = base.get();
        let mut b = self.module_of(Addr::new(addr)).get();
        for slot in &mut out[..head] {
            *slot = ModuleId::new(b);
            let next = addr.wrapping_add_signed(stride);
            let mut diff = (addr ^ next) & width_mask;
            while diff != 0 {
                // cfva-lint: allow(L002, reason = "trailing_zeros of a nonzero u64 is < 64, the fixed length of columns")
                b ^= self.columns[diff.trailing_zeros() as usize];
                diff &= diff - 1;
            }
            addr = next;
        }
        super::bulk::extend_cyclic(out, head);
    }
}

impl fmt::Debug for CustomGf2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomGf2")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for CustomGf2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "custom GF(2) map (M = {}, {} address bits)",
            self.module_count(),
            self.cols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Linear, XorMatched};

    #[test]
    fn matches_equation_1_matrix() {
        let custom = CustomGf2::new(vec![0b0010001, 0b0100010, 0b1000100], 7).unwrap();
        let builtin = XorMatched::new(3, 4).unwrap();
        assert_eq!(custom.module_bits(), builtin.module_bits());
        assert_eq!(custom.address_bits_used(), builtin.address_bits_used());
        for a in 0..4096u64 {
            assert_eq!(
                custom.module_of(Addr::new(a)),
                builtin.module_of(Addr::new(a)),
                "address {a}"
            );
        }
    }

    #[test]
    fn agrees_with_linear_on_shared_matrices() {
        let rows = vec![0b1_0010_1101u64, 0b0_1101_1010, 0b1_1000_0111];
        let custom = CustomGf2::new(rows.clone(), 9).unwrap();
        let linear = Linear::new(rows).unwrap();
        for a in (0..1 << 14).step_by(7) {
            assert_eq!(
                custom.module_of(Addr::new(a)),
                linear.module_of(Addr::new(a))
            );
        }
    }

    #[test]
    fn rejects_rank_deficient_matrices() {
        assert_eq!(
            CustomGf2::new(vec![0b001, 0b010, 0b011], 3),
            Err(ConfigError::SingularMatrix)
        );
        assert_eq!(
            CustomGf2::new(vec![0b01, 0b01], 2),
            Err(ConfigError::SingularMatrix)
        );
    }

    #[test]
    fn rejects_odd_shapes() {
        // A row with bits beyond the declared width.
        assert!(matches!(
            CustomGf2::new(vec![0b1001], 3),
            Err(ConfigError::OutOfRange { .. })
        ));
        // Taller than wide.
        assert!(matches!(
            CustomGf2::new(vec![0b1, 0b1, 0b1], 2),
            Err(ConfigError::OutOfRange { .. })
        ));
        // Degenerate widths and row counts.
        assert!(CustomGf2::new(vec![], 3).is_err());
        assert!(CustomGf2::new(vec![0b1], 0).is_err());
        assert!(CustomGf2::new(vec![0b1, 0], 2).is_err());
    }

    #[test]
    fn parses_matrix_text() {
        let map = CustomGf2::parse_matrix(
            "# eq. (1), t = 3, s = 3\n001001\n010010\n\n100100  # last row\n",
            "inline",
        )
        .unwrap();
        assert_eq!(map.rows(), &[0b001001, 0b010010, 0b100100]);
        assert_eq!(map.cols(), 6);
        let builtin = XorMatched::new(3, 3).unwrap();
        for a in 0..512u64 {
            assert_eq!(map.module_of(Addr::new(a)), builtin.module_of(Addr::new(a)));
        }
    }

    #[test]
    fn matrix_text_errors_are_specific() {
        let e = CustomGf2::parse_matrix("101\n01\n", "f.gf2").unwrap_err();
        assert!(
            e.to_string().contains("line 2 has 2 columns, line 1 had 3"),
            "{e}"
        );
        let e = CustomGf2::parse_matrix("10x\n", "f.gf2").unwrap_err();
        assert!(e.to_string().contains("non-binary character"), "{e}");
        let e = CustomGf2::parse_matrix("# only a comment\n", "f.gf2").unwrap_err();
        assert!(e.to_string().contains("no matrix rows"), "{e}");
    }

    #[test]
    fn from_file_reports_missing_files() {
        let e = CustomGf2::from_file("/definitely/not/here.gf2").unwrap_err();
        assert!(matches!(e, ConfigError::MatrixFile { .. }));
        assert!(e.to_string().contains("here.gf2"), "{e}");
    }

    #[test]
    fn balanced_over_one_period() {
        let map = CustomGf2::new(vec![0b1011, 0b0110], 4).unwrap();
        let span = 1u64 << map.address_bits_used();
        let mut counts = vec![0u64; map.module_count() as usize];
        for a in 0..span {
            counts[map.module_of(Addr::new(a)).get() as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == span / map.module_count()),
            "unbalanced: {counts:?}"
        );
    }

    #[test]
    fn bulk_mapping_matches_per_element_loop() {
        let map = CustomGf2::new(vec![0b0010001, 0b0100010, 0b1000100], 7).unwrap();
        for &(base, stride) in &[(0u64, 1i64), (16, 12), (7, 8), (1000, -12), (42, 0)] {
            for len in [0usize, 1, 7, 64, 257] {
                let mut bulk = vec![ModuleId::new(0); len];
                map.map_stride_into(Addr::new(base), stride, &mut bulk);
                let expect: Vec<ModuleId> = (0..len as u64)
                    .map(|k| {
                        map.module_of(Addr::new(
                            base.wrapping_add_signed(stride.wrapping_mul(k as i64)),
                        ))
                    })
                    .collect();
                assert_eq!(bulk, expect, "base {base} stride {stride} len {len}");
            }
        }
    }

    #[test]
    fn display_and_debug() {
        let map = CustomGf2::new(vec![0b001001, 0b010010, 0b100100], 6).unwrap();
        assert_eq!(map.to_string(), "custom GF(2) map (M = 8, 6 address bits)");
        assert!(format!("{map:?}").contains("cols: 6"));
    }
}
