//! # cfva-core — Conflict-Free Vector Access
//!
//! A from-scratch reproduction of the address-transformation and
//! out-of-order access machinery of
//!
//! > M. Valero, T. Lang, J. M. Llabería, M. Peiron, E. Ayguadé and
//! > J. J. Navarro, *"Increasing the Number of Strides for Conflict-Free
//! > Vector Access"*, ISCA 1992.
//!
//! Vector processors read register-length vectors (`L = 2^λ` elements at
//! addresses `A1 + S·i`, stride `S = σ·2^x` with `σ` odd) from a memory
//! built of `M = 2^m` modules, each busy for `T = 2^t` processor cycles
//! per access. A stride is **conflict free** when one element can be
//! requested every cycle without ever finding its module busy; the access
//! then takes the minimum `T + L + 1` cycles.
//!
//! This crate provides:
//!
//! * [`mapping`] — address-to-module maps: low-order interleaving, row
//!   skewing, the paper's matched XOR map (its eq. 1), the two-level
//!   unmatched XOR map (its eq. 2), and arbitrary GF(2) linear maps —
//!   all selectable **at runtime by spec string** through
//!   [`mapping::registry`] (e.g. `"xor-matched:t=3,s=3"`), including
//!   user-supplied matrices loaded from `.gf2` files
//!   ([`mapping::CustomGf2`]).
//! * [`order`] — element request orders: canonical (in order), the
//!   Section 3.1 subsequence order (Figure 4), and the Section 3.2/4.2
//!   conflict-free *replay* order.
//! * [`plan`] — [`plan::AccessPlan`]: the fully resolved request stream
//!   (element, address, module, register slot) fed to a simulator or to
//!   real hardware models.
//! * [`window`] — the conflict-free stride-family windows of Theorems 1
//!   and 3, and the recommended `s`/`y` parameter choices.
//! * [`analysis`] — Section 5 analytics: fraction of conflict-free
//!   strides, sustained efficiency, short-vector splitting.
//! * [`hardware`] — register-transfer-level models of the Figure 4/5
//!   address generator and the Figure 6 dual-generator replay engine,
//!   plus a component-count cost model.
//! * [`dist`] — spatial/temporal distributions, T-matched predicates and
//!   the canonical temporal distribution `CTP_x`.
//! * [`equiv`] — stride-equivalence reduction ([`StrideClass`]): the
//!   canonical representative of all accesses producing one module
//!   sequence, the key of the serving layer's memoized result cache.
//!
//! ## Quick example
//!
//! Plan a conflict-free access to a vector of 64 elements with stride 12
//! (family `x = 2`) on a matched memory of 8 modules (`m = t = 3`,
//! `s = 3`), the running example of the paper's Section 3:
//!
//! ```
//! use cfva_core::mapping::XorMatched;
//! use cfva_core::plan::{Planner, Strategy};
//! use cfva_core::vector::VectorSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let map = XorMatched::new(3, 3)?; // t = 3, s = 3
//! let vec = VectorSpec::new(16, 12, 64)?; // A1 = 16, S = 12, L = 64
//! let planner = Planner::matched(map);
//! let plan = planner.plan(&vec, Strategy::ConflictFree)?;
//!
//! // Any 8 consecutive requests touch 8 distinct modules:
//! assert!(plan.is_conflict_free(8));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod address;
pub mod analysis;
pub mod dist;
pub mod equiv;
pub mod error;
pub mod hardware;
pub mod mapping;
pub mod order;
pub mod plan;
pub mod stride;
pub mod vector;
pub mod window;

pub use address::{Addr, ModuleId};
pub use equiv::StrideClass;
pub use error::{ConfigError, PlanError};
pub use stride::{Stride, StrideFamily};
pub use vector::VectorSpec;
