//! Stride-equivalence reduction: the canonical representative of all
//! `(base, stride, length)` accesses that produce one module sequence.
//!
//! Every map in this crate is a function of the low `u =`
//! [`address_bits_used`](crate::mapping::ModuleMap::address_bits_used)
//! address bits, so element `k` of a vector with base `A`, stride
//! `S = σ·2^x` lands in module `F((A + k·σ·2^x) mod 2^u)`. Two accesses
//! therefore produce **identical module sequences** whenever
//!
//! * their bases agree mod `2^u`,
//! * their odd parts agree mod `2^(u−x)` (because `k·σ·2^x ≡ k·σ'·2^x
//!   (mod 2^u)` exactly when `σ ≡ σ' (mod 2^(u−x))`),
//! * their family exponents `x` and lengths agree.
//!
//! [`StrideClass::reduce`] maps an access to the smallest such
//! representative. The exponent `x` is kept **exactly** (never clamped)
//! because planners select orders by family, not just by module
//! sequence — preserving `x` guarantees the planner makes the same
//! choice for every member of a class, which is what makes class-keyed
//! result caching sound: equal classes ⇒ identical plans ⇒ bit-identical
//! simulation statistics. `tests/stride_class.rs` pins this by proptest
//! across every registered map.

use crate::mapping::ModuleMap;
use crate::stride::Stride;
use crate::vector::VectorSpec;
use crate::ModuleId;

/// The canonical representative of a stride-equivalence class under a
/// map using `used` low address bits — see the [module docs](self).
///
/// `Eq + Hash` make the class directly usable as a memoization key:
/// two accesses compare equal here exactly when they are provably
/// interchangeable (identical module sequence, identical family, same
/// length), and hence produce bit-identical measurement results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrideClass {
    /// Base address reduced mod `2^used`.
    base: u64,
    /// Odd part reduced to its least non-negative residue mod
    /// `2^(used − x)` (always odd there), or `1` when `x ≥ used`
    /// (the stride is `≡ 0 mod 2^used`, so the module sequence is
    /// constant and the odd part is irrelevant).
    sigma: u64,
    /// The family exponent, preserved exactly.
    x: u32,
    /// The vector length, preserved exactly.
    len: u64,
    /// Low address bits the map consumes.
    used: u32,
}

impl StrideClass {
    /// Reduces `vec` to its class under `map`.
    pub fn reduce<M: ModuleMap + ?Sized>(map: &M, vec: &VectorSpec) -> StrideClass {
        StrideClass::reduce_with_used(map.address_bits_used(), vec)
    }

    /// Reduces `vec` to its class given the map's used-bit count
    /// directly — for callers that cached
    /// [`address_bits_used`](crate::mapping::ModuleMap::address_bits_used)
    /// and no longer hold the map.
    pub fn reduce_with_used(used: u32, vec: &VectorSpec) -> StrideClass {
        let mask = if used >= 64 {
            u64::MAX
        } else {
            (1u64 << used) - 1
        };
        let x = vec.stride().family().exponent();
        let sigma = if x >= used {
            // Stride ≡ 0 mod 2^used: every element hits the base's
            // module, so all odd parts are equivalent.
            1
        } else {
            let span = used - x;
            let sigma = vec.stride().odd_part();
            if span >= 64 {
                // Reduction mod 2^64 is the two's-complement cast.
                sigma as u64
            } else {
                (i128::from(sigma)).rem_euclid(1i128 << span) as u64
            }
        };
        StrideClass {
            base: vec.base().get() & mask,
            sigma,
            x,
            len: vec.len(),
            used,
        }
    }

    /// The canonical member of this class, if it is constructible as a
    /// [`VectorSpec`] (`None` only when the representative stride or
    /// address range fails construction-time overflow validation —
    /// irrelevant for key use, which needs no representative).
    pub fn representative(&self) -> Option<VectorSpec> {
        let sigma = i64::try_from(self.sigma).ok()?;
        let stride = Stride::from_parts(sigma, self.x).ok()?;
        VectorSpec::with_stride(self.base.into(), stride, self.len).ok()
    }

    /// Base address reduced mod `2^used`.
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The reduced odd part (see the field docs).
    pub const fn sigma(&self) -> u64 {
        self.sigma
    }

    /// The family exponent (preserved from the original access).
    pub const fn x(&self) -> u32 {
        self.x
    }

    /// The vector length.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Whether the class describes an empty access. (`VectorSpec`
    /// forbids zero lengths, so this is always `false` for reduced
    /// classes — provided for `len`/`is_empty` API symmetry.)
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Low address bits the map consumes.
    pub const fn used(&self) -> u32 {
        self.used
    }
}

/// Elements enumerated when building an [`OccupancySignature`]: one
/// full period of the module sequence when the period fits, otherwise
/// a sampled prefix of this many elements.
pub const SIGNATURE_PREFIX_CAP: u64 = 4096;

/// The predicted module-occupancy distribution of one constant-stride
/// access: which fraction of the stream's requests each module
/// receives.
///
/// Built **without simulating**: every map is periodic in the stride's
/// family ([`ModuleMap::period`] = `max(2^{used − x}, 1)`), so one
/// period of the module sequence — resolved through the bulk
/// [`ModuleMap::map_stride_into`] — determines the distribution in
/// closed form. For the built-in maps the period is modest and the
/// signature is [exact](Self::is_exact); maps whose period overflows
/// the [`SIGNATURE_PREFIX_CAP`] (a [`CustomGf2`](crate::mapping::CustomGf2)
/// or overridden [`RegionMap`](crate::mapping::RegionMap) consuming the
/// full address width) fall back to a sampled prefix of the stream.
///
/// The signature is a **class invariant**: accesses with equal
/// [`StrideClass`]es produce identical signatures (they share the
/// module sequence), so the serve layer may key predictions on reduced
/// classes.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancySignature {
    /// `(module, fraction)` pairs, sorted by module, fractions summing
    /// to 1; modules the stream never touches are absent (the support
    /// is at most `min(len, period, cap)` modules, so signatures stay
    /// small even on a `2^42`-module memory).
    weights: Vec<(u64, f64)>,
    exact: bool,
}

impl OccupancySignature {
    /// `(module, fraction)` pairs, sorted by module index.
    pub fn weights(&self) -> &[(u64, f64)] {
        &self.weights
    }

    /// Whether the signature is the exact distribution of the stream
    /// (the whole vector or at least one full period of its module
    /// sequence was enumerated) rather than a sampled-prefix estimate.
    /// When a full period was used the distribution of every *whole*
    /// period is exact; a final partial period of a non-multiple length
    /// can deviate slightly.
    pub const fn is_exact(&self) -> bool {
        self.exact
    }

    /// The inner product `Σ_m self[m]·other[m]` — the probability that
    /// a random request of each stream lands on the same module.
    pub fn overlap(&self, other: &OccupancySignature) -> f64 {
        let mut sum = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while let (Some(&(ma, wa)), Some(&(mb, wb))) = (self.weights.get(i), other.weights.get(j)) {
            match ma.cmp(&mb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }
}

/// Predicts the module-occupancy signature of `vec` under `map` — see
/// [`OccupancySignature`].
pub fn occupancy_signature<M: ModuleMap + ?Sized>(map: &M, vec: &VectorSpec) -> OccupancySignature {
    let period = map.period(vec.stride().family());
    let len = vec.len();
    let n = len.min(period).min(SIGNATURE_PREFIX_CAP);
    let exact = n == len || period <= n;
    let mut modules = vec![ModuleId::new(0); n as usize];
    map.map_stride_into(vec.base(), vec.stride().get(), &mut modules);
    let mut hits: Vec<u64> = modules.iter().map(|m| m.get()).collect();
    hits.sort_unstable();
    let mut weights: Vec<(u64, f64)> = Vec::new();
    let share = 1.0 / n as f64;
    for module in hits {
        match weights.last_mut() {
            Some((last, weight)) if *last == module => *weight += share,
            _ => weights.push((module, share)),
        }
    }
    OccupancySignature { weights, exact }
}

/// Pairwise conflict score of two streams under one map, **without
/// simulating**: `M · Σ_m o_a[m]·o_b[m]` over the two predicted
/// occupancy signatures, where `M` is the module count.
///
/// The normalisation makes `1.0` the uniform-random reference — the
/// module-bandwidth break-even point of two streams sharing the
/// single-bus memory:
///
/// * `0.0` — the streams touch disjoint module sets: co-scheduling is
///   free of cross-stream conflicts;
/// * `≈ 1.0` — as much overlap as two uniformly spread streams: the
///   modules can just absorb the combined rate;
/// * `≫ 1.0` (up to `M`) — both streams concentrate on the same few
///   modules: co-scheduling serialises on them.
///
/// The score is symmetric and a class invariant (equal
/// [`StrideClass`]es ⇒ equal scores). `tests/conflict_prediction.rs`
/// validates the ranking against *measured* cross-stream conflicts
/// from [`multi-stream runs`](../../cfva_memsim/multi/index.html)
/// across every registered map.
pub fn conflict_score<M: ModuleMap + ?Sized>(map: &M, a: &VectorSpec, b: &VectorSpec) -> f64 {
    let sig_a = occupancy_signature(map, a);
    let sig_b = occupancy_signature(map, b);
    map.module_count() as f64 * sig_a.overlap(&sig_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ModuleMap, XorMatched};

    fn vec_of(base: u64, sigma: i64, x: u32, len: u64) -> VectorSpec {
        let stride = Stride::from_parts(sigma, x).expect("odd sigma");
        VectorSpec::with_stride(base.into(), stride, len).expect("bounded")
    }

    #[test]
    fn equivalent_accesses_share_a_class() {
        let map = XorMatched::new(3, 4).unwrap(); // used = 7
        let used = map.address_bits_used();
        assert_eq!(used, 7);
        // Base mod 2^7 and sigma mod 2^(7-2) both reduce.
        let a = vec_of(5, 3, 2, 64);
        let b = vec_of(5 + 128, 3 + 32, 2, 64);
        assert_eq!(StrideClass::reduce(&map, &a), StrideClass::reduce(&map, &b));
        // Negative odd parts reduce to the same positive residue.
        let c = vec_of((1 << 20) + 5, 3 - 32, 2, 64);
        assert_eq!(StrideClass::reduce(&map, &a), StrideClass::reduce(&map, &c));
    }

    #[test]
    fn distinct_family_or_length_splits_the_class() {
        let map = XorMatched::new(3, 4).unwrap();
        let a = StrideClass::reduce(&map, &vec_of(5, 3, 2, 64));
        assert_ne!(a, StrideClass::reduce(&map, &vec_of(5, 3, 3, 64)));
        assert_ne!(a, StrideClass::reduce(&map, &vec_of(5, 3, 2, 32)));
        assert_ne!(a, StrideClass::reduce(&map, &vec_of(6, 3, 2, 64)));
        assert_ne!(a, StrideClass::reduce(&map, &vec_of(5, 5, 2, 64)));
    }

    #[test]
    fn huge_exponent_collapses_sigma_but_keeps_x() {
        let map = XorMatched::new(3, 4).unwrap(); // used = 7
        let a = StrideClass::reduce(&map, &vec_of(9, 3, 7, 16));
        let b = StrideClass::reduce(&map, &vec_of(9, 11, 7, 16));
        assert_eq!(a, b, "x >= used: odd part is irrelevant");
        assert_eq!(a.sigma(), 1);
        assert_eq!(a.x(), 7, "the exponent itself is preserved");
        let c = StrideClass::reduce(&map, &vec_of(9, 3, 8, 16));
        assert_ne!(a, c, "different exponents stay distinct classes");
    }

    #[test]
    fn signature_weights_sum_to_one_and_follow_the_sequence() {
        let map = XorMatched::new(3, 4).unwrap(); // M = 8, used = 7
        let vec = vec_of(16, 3, 2, 64);
        let sig = occupancy_signature(&map, &vec);
        let total: f64 = sig.weights().iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        assert!(sig.is_exact(), "period 2^5 fits the cap");
        // Cross-check against the actual module sequence histogram.
        let n = vec.len().min(map.period(vec.stride().family()));
        let mut modules = vec![crate::ModuleId::new(0); n as usize];
        map.map_stride_into(vec.base(), vec.stride().get(), &mut modules);
        for &(module, weight) in sig.weights() {
            let count = modules.iter().filter(|m| m.get() == module).count();
            assert!((weight - count as f64 / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn conflict_score_brackets_disjoint_uniform_and_clustered() {
        let map = XorMatched::new(3, 4).unwrap(); // M = 8, used = 7
                                                  // Unit-stride streams spread uniformly over all 8 modules.
        let a = vec_of(0, 1, 0, 64);
        let b = vec_of(32, 1, 0, 64);
        let uniform = conflict_score(&map, &a, &b);
        assert!((uniform - 1.0).abs() < 1e-9, "uniform overlap: {uniform}");
        // x >= used clusters each stream on one module. Bases 0 and 1
        // land on different modules (F(0) = 0, F(1) = 1): disjoint.
        let c = vec_of(0, 1, 7, 64);
        let d = vec_of(1, 1, 7, 64);
        assert_eq!(conflict_score(&map, &c, &d), 0.0);
        // Same base: both streams hammer one module — the maximum M.
        let clustered = conflict_score(&map, &c, &c);
        assert!((clustered - 8.0).abs() < 1e-9, "clustered: {clustered}");
        // Symmetry.
        let e = vec_of(5, 3, 1, 48);
        assert_eq!(conflict_score(&map, &a, &e), conflict_score(&map, &e, &a));
    }

    #[test]
    fn conflict_score_is_a_class_invariant() {
        let map = XorMatched::new(3, 4).unwrap(); // used = 7
        let probe = vec_of(3, 5, 1, 32);
        // Same class as `a` in `equivalent_accesses_share_a_class`.
        let a = vec_of(5, 3, 2, 64);
        let b = vec_of(5 + 128, 3 + 32, 2, 64);
        assert_eq!(StrideClass::reduce(&map, &a), StrideClass::reduce(&map, &b));
        assert_eq!(
            conflict_score(&map, &a, &probe),
            conflict_score(&map, &b, &probe)
        );
        assert_eq!(occupancy_signature(&map, &a), occupancy_signature(&map, &b));
    }

    #[test]
    fn huge_period_falls_back_to_sampled_prefix() {
        // A wide-shift XorMatched consumes 23 address bits, so the
        // family-0 period (2^23) overflows the cap and the signature
        // samples a bounded prefix.
        let map = crate::mapping::RegionMap::new(3, 30, 20).unwrap();
        let long = vec_of(0, 1, 0, SIGNATURE_PREFIX_CAP * 4);
        let sig = occupancy_signature(&map, &long);
        assert!(map.period(long.stride().family()) > SIGNATURE_PREFIX_CAP || sig.is_exact());
        let total: f64 = sig.weights().iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Short vectors are exact regardless of the period.
        let short = vec_of(0, 1, 0, 64);
        assert!(occupancy_signature(&map, &short).is_exact());
    }

    #[test]
    fn reduction_is_idempotent_and_representative_matches_sequences() {
        let map = XorMatched::new(3, 4).unwrap();
        for (base, sigma, x, len) in [
            (123_456u64, 7i64, 0u32, 64u64),
            (98_765, -13, 3, 128),
            (1 << 40, 2_001, 5, 32),
            (77, 1, 9, 16),
        ] {
            let vec = vec_of(base, sigma, x, len);
            let class = StrideClass::reduce(&map, &vec);
            let rep = class.representative().expect("small representatives build");
            assert_eq!(
                StrideClass::reduce(&map, &rep),
                class,
                "reduce(representative) is a fixed point"
            );
            let mut orig = vec![crate::ModuleId::new(0); len as usize];
            let mut reduced = orig.clone();
            map.map_stride_into(vec.base(), vec.stride().get(), &mut orig);
            map.map_stride_into(rep.base(), rep.stride().get(), &mut reduced);
            assert_eq!(orig, reduced, "identical module sequences");
        }
    }
}
