//! Stride-equivalence reduction: the canonical representative of all
//! `(base, stride, length)` accesses that produce one module sequence.
//!
//! Every map in this crate is a function of the low `u =`
//! [`address_bits_used`](crate::mapping::ModuleMap::address_bits_used)
//! address bits, so element `k` of a vector with base `A`, stride
//! `S = σ·2^x` lands in module `F((A + k·σ·2^x) mod 2^u)`. Two accesses
//! therefore produce **identical module sequences** whenever
//!
//! * their bases agree mod `2^u`,
//! * their odd parts agree mod `2^(u−x)` (because `k·σ·2^x ≡ k·σ'·2^x
//!   (mod 2^u)` exactly when `σ ≡ σ' (mod 2^(u−x))`),
//! * their family exponents `x` and lengths agree.
//!
//! [`StrideClass::reduce`] maps an access to the smallest such
//! representative. The exponent `x` is kept **exactly** (never clamped)
//! because planners select orders by family, not just by module
//! sequence — preserving `x` guarantees the planner makes the same
//! choice for every member of a class, which is what makes class-keyed
//! result caching sound: equal classes ⇒ identical plans ⇒ bit-identical
//! simulation statistics. `tests/stride_class.rs` pins this by proptest
//! across every registered map.

use crate::mapping::ModuleMap;
use crate::stride::Stride;
use crate::vector::VectorSpec;

/// The canonical representative of a stride-equivalence class under a
/// map using `used` low address bits — see the [module docs](self).
///
/// `Eq + Hash` make the class directly usable as a memoization key:
/// two accesses compare equal here exactly when they are provably
/// interchangeable (identical module sequence, identical family, same
/// length), and hence produce bit-identical measurement results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrideClass {
    /// Base address reduced mod `2^used`.
    base: u64,
    /// Odd part reduced to its least non-negative residue mod
    /// `2^(used − x)` (always odd there), or `1` when `x ≥ used`
    /// (the stride is `≡ 0 mod 2^used`, so the module sequence is
    /// constant and the odd part is irrelevant).
    sigma: u64,
    /// The family exponent, preserved exactly.
    x: u32,
    /// The vector length, preserved exactly.
    len: u64,
    /// Low address bits the map consumes.
    used: u32,
}

impl StrideClass {
    /// Reduces `vec` to its class under `map`.
    pub fn reduce<M: ModuleMap + ?Sized>(map: &M, vec: &VectorSpec) -> StrideClass {
        StrideClass::reduce_with_used(map.address_bits_used(), vec)
    }

    /// Reduces `vec` to its class given the map's used-bit count
    /// directly — for callers that cached
    /// [`address_bits_used`](crate::mapping::ModuleMap::address_bits_used)
    /// and no longer hold the map.
    pub fn reduce_with_used(used: u32, vec: &VectorSpec) -> StrideClass {
        let mask = if used >= 64 {
            u64::MAX
        } else {
            (1u64 << used) - 1
        };
        let x = vec.stride().family().exponent();
        let sigma = if x >= used {
            // Stride ≡ 0 mod 2^used: every element hits the base's
            // module, so all odd parts are equivalent.
            1
        } else {
            let span = used - x;
            let sigma = vec.stride().odd_part();
            if span >= 64 {
                // Reduction mod 2^64 is the two's-complement cast.
                sigma as u64
            } else {
                (i128::from(sigma)).rem_euclid(1i128 << span) as u64
            }
        };
        StrideClass {
            base: vec.base().get() & mask,
            sigma,
            x,
            len: vec.len(),
            used,
        }
    }

    /// The canonical member of this class, if it is constructible as a
    /// [`VectorSpec`] (`None` only when the representative stride or
    /// address range fails construction-time overflow validation —
    /// irrelevant for key use, which needs no representative).
    pub fn representative(&self) -> Option<VectorSpec> {
        let sigma = i64::try_from(self.sigma).ok()?;
        let stride = Stride::from_parts(sigma, self.x).ok()?;
        VectorSpec::with_stride(self.base.into(), stride, self.len).ok()
    }

    /// Base address reduced mod `2^used`.
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The reduced odd part (see the field docs).
    pub const fn sigma(&self) -> u64 {
        self.sigma
    }

    /// The family exponent (preserved from the original access).
    pub const fn x(&self) -> u32 {
        self.x
    }

    /// The vector length.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Whether the class describes an empty access. (`VectorSpec`
    /// forbids zero lengths, so this is always `false` for reduced
    /// classes — provided for `len`/`is_empty` API symmetry.)
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Low address bits the map consumes.
    pub const fn used(&self) -> u32 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ModuleMap, XorMatched};

    fn vec_of(base: u64, sigma: i64, x: u32, len: u64) -> VectorSpec {
        let stride = Stride::from_parts(sigma, x).expect("odd sigma");
        VectorSpec::with_stride(base.into(), stride, len).expect("bounded")
    }

    #[test]
    fn equivalent_accesses_share_a_class() {
        let map = XorMatched::new(3, 4).unwrap(); // used = 7
        let used = map.address_bits_used();
        assert_eq!(used, 7);
        // Base mod 2^7 and sigma mod 2^(7-2) both reduce.
        let a = vec_of(5, 3, 2, 64);
        let b = vec_of(5 + 128, 3 + 32, 2, 64);
        assert_eq!(StrideClass::reduce(&map, &a), StrideClass::reduce(&map, &b));
        // Negative odd parts reduce to the same positive residue.
        let c = vec_of((1 << 20) + 5, 3 - 32, 2, 64);
        assert_eq!(StrideClass::reduce(&map, &a), StrideClass::reduce(&map, &c));
    }

    #[test]
    fn distinct_family_or_length_splits_the_class() {
        let map = XorMatched::new(3, 4).unwrap();
        let a = StrideClass::reduce(&map, &vec_of(5, 3, 2, 64));
        assert_ne!(a, StrideClass::reduce(&map, &vec_of(5, 3, 3, 64)));
        assert_ne!(a, StrideClass::reduce(&map, &vec_of(5, 3, 2, 32)));
        assert_ne!(a, StrideClass::reduce(&map, &vec_of(6, 3, 2, 64)));
        assert_ne!(a, StrideClass::reduce(&map, &vec_of(5, 5, 2, 64)));
    }

    #[test]
    fn huge_exponent_collapses_sigma_but_keeps_x() {
        let map = XorMatched::new(3, 4).unwrap(); // used = 7
        let a = StrideClass::reduce(&map, &vec_of(9, 3, 7, 16));
        let b = StrideClass::reduce(&map, &vec_of(9, 11, 7, 16));
        assert_eq!(a, b, "x >= used: odd part is irrelevant");
        assert_eq!(a.sigma(), 1);
        assert_eq!(a.x(), 7, "the exponent itself is preserved");
        let c = StrideClass::reduce(&map, &vec_of(9, 3, 8, 16));
        assert_ne!(a, c, "different exponents stay distinct classes");
    }

    #[test]
    fn reduction_is_idempotent_and_representative_matches_sequences() {
        let map = XorMatched::new(3, 4).unwrap();
        for (base, sigma, x, len) in [
            (123_456u64, 7i64, 0u32, 64u64),
            (98_765, -13, 3, 128),
            (1 << 40, 2_001, 5, 32),
            (77, 1, 9, 16),
        ] {
            let vec = vec_of(base, sigma, x, len);
            let class = StrideClass::reduce(&map, &vec);
            let rep = class.representative().expect("small representatives build");
            assert_eq!(
                StrideClass::reduce(&map, &rep),
                class,
                "reduce(representative) is a fixed point"
            );
            let mut orig = vec![crate::ModuleId::new(0); len as usize];
            let mut reduced = orig.clone();
            map.map_stride_into(vec.base(), vec.stride().get(), &mut orig);
            map.map_stride_into(rep.base(), rep.stride().get(), &mut reduced);
            assert_eq!(orig, reduced, "identical module sequences");
        }
    }
}
