//! Strides and stride families.
//!
//! The paper classifies strides `S = σ·2^x` (`σ` odd) into **families**
//! indexed by the exponent `x`; all schemes in this crate are analysed
//! per family, because the module sequence of a vector depends on the
//! stride only through `x` (and on `σ` only through a permutation of the
//! visit order, Lemma 2).

use std::fmt;

use crate::error::ConfigError;

/// A nonzero constant stride, decomposed as `S = σ·2^x` with `σ` odd.
///
/// Negative strides are supported (real vector ISAs allow them); the
/// family decomposition applies to the magnitude, and all conflict
/// properties are sign-independent because module sequences are merely
/// reversed.
///
/// # Examples
///
/// ```
/// use cfva_core::Stride;
///
/// let s = Stride::new(12)?; // 12 = 3 · 2^2
/// assert_eq!(s.odd_part(), 3);
/// assert_eq!(s.family().exponent(), 2);
/// assert_eq!(s.get(), 12);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stride {
    value: i64,
}

impl Stride {
    /// Creates a stride from its signed value.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroStride`] if `value == 0`.
    pub fn new(value: i64) -> Result<Self, ConfigError> {
        if value == 0 {
            return Err(ConfigError::ZeroStride);
        }
        Ok(Stride { value })
    }

    /// Builds the stride `σ·2^x` from an odd part and family exponent.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] if `sigma` is even or the
    /// product overflows `i64`, and [`ConfigError::ZeroStride`] if
    /// `sigma == 0`.
    pub fn from_parts(sigma: i64, x: u32) -> Result<Self, ConfigError> {
        if sigma == 0 {
            return Err(ConfigError::ZeroStride);
        }
        if sigma % 2 == 0 {
            return Err(ConfigError::OutOfRange {
                what: "sigma",
                value: sigma.unsigned_abs(),
                constraint: "sigma must be odd",
            });
        }
        let value = sigma
            .checked_mul(1i64.checked_shl(x).ok_or(ConfigError::OutOfRange {
                what: "x",
                value: x as u64,
                constraint: "2^x must fit in i64",
            })?)
            .ok_or(ConfigError::OutOfRange {
                what: "sigma * 2^x",
                value: sigma.unsigned_abs(),
                constraint: "must fit in i64",
            })?;
        Ok(Stride { value })
    }

    /// Returns the signed stride value.
    pub const fn get(self) -> i64 {
        self.value
    }

    /// Returns the magnitude of the stride.
    pub const fn magnitude(self) -> u64 {
        self.value.unsigned_abs()
    }

    /// Returns the odd part `σ` (signed: carries the stride's sign).
    ///
    /// ```
    /// use cfva_core::Stride;
    /// assert_eq!(Stride::new(-12)?.odd_part(), -3);
    /// # Ok::<(), cfva_core::ConfigError>(())
    /// ```
    pub const fn odd_part(self) -> i64 {
        self.value >> self.value.trailing_zeros()
    }

    /// Returns the family this stride belongs to.
    pub const fn family(self) -> StrideFamily {
        StrideFamily::new(self.value.trailing_zeros())
    }

    /// Returns `true` if the stride is odd (family `x = 0`).
    pub const fn is_odd(self) -> bool {
        self.value & 1 != 0
    }
}

impl fmt::Display for Stride {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (= {}·2^{})",
            self.value,
            self.odd_part(),
            self.family().exponent()
        )
    }
}

impl TryFrom<i64> for Stride {
    type Error = ConfigError;

    fn try_from(value: i64) -> Result<Self, Self::Error> {
        Stride::new(value)
    }
}

/// A family of strides: all `S = σ·2^x` with `σ` odd share the family
/// with exponent `x`.
///
/// Half of all strides are odd (family 0), a quarter belong to family 1,
/// and in general the fraction of strides in family `x` is `2^-(x+1)`
/// (paper Section 5A). That weight is exposed as [`StrideFamily::weight`]
/// and drives the efficiency model in [`crate::analysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StrideFamily {
    exponent: u32,
}

impl StrideFamily {
    /// Creates the family with exponent `x`.
    pub const fn new(exponent: u32) -> Self {
        StrideFamily { exponent }
    }

    /// Returns the family exponent `x`.
    pub const fn exponent(self) -> u32 {
        self.exponent
    }

    /// Fraction of all (integer) strides that belong to this family,
    /// `2^-(x+1)`, under the paper's uniform-odd-part model.
    ///
    /// ```
    /// use cfva_core::StrideFamily;
    /// assert_eq!(StrideFamily::new(0).weight(), 0.5);
    /// assert_eq!(StrideFamily::new(4).weight(), 1.0 / 32.0);
    /// ```
    pub fn weight(self) -> f64 {
        0.5f64.powi(self.exponent as i32 + 1)
    }

    /// Returns the smallest positive stride in the family (`σ = 1`).
    pub const fn smallest_stride(self) -> i64 {
        1i64 << self.exponent
    }

    /// Iterates the positive strides of this family not exceeding
    /// `limit`, in increasing order: `2^x, 3·2^x, 5·2^x, …`.
    ///
    /// ```
    /// use cfva_core::StrideFamily;
    /// let strides: Vec<i64> = StrideFamily::new(2).strides_up_to(30).collect();
    /// assert_eq!(strides, vec![4, 12, 20, 28]);
    /// ```
    pub fn strides_up_to(self, limit: i64) -> StridesUpTo {
        StridesUpTo {
            next_sigma: 1,
            shift: self.exponent,
            limit,
        }
    }
}

impl fmt::Display for StrideFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "family x = {}", self.exponent)
    }
}

impl From<u32> for StrideFamily {
    fn from(exponent: u32) -> Self {
        StrideFamily::new(exponent)
    }
}

/// Iterator over the strides of a family, produced by
/// [`StrideFamily::strides_up_to`].
#[derive(Debug, Clone)]
pub struct StridesUpTo {
    next_sigma: i64,
    shift: u32,
    limit: i64,
}

impl Iterator for StridesUpTo {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        let value = self.next_sigma.checked_shl(self.shift)?;
        if value > self.limit {
            return None;
        }
        self.next_sigma += 2;
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_examples() {
        let cases = [
            (1i64, 1i64, 0u32),
            (2, 1, 1),
            (12, 3, 2),
            (7, 7, 0),
            (96, 3, 5),
            (1024, 1, 10),
            (-12, -3, 2),
            (-1, -1, 0),
        ];
        for (s, sigma, x) in cases {
            let stride = Stride::new(s).unwrap();
            assert_eq!(stride.odd_part(), sigma, "odd part of {s}");
            assert_eq!(stride.family().exponent(), x, "family of {s}");
            assert_eq!(stride.magnitude(), s.unsigned_abs(), "magnitude of {s}");
        }
    }

    #[test]
    fn zero_stride_rejected() {
        assert_eq!(Stride::new(0), Err(ConfigError::ZeroStride));
    }

    #[test]
    fn from_parts_round_trips() {
        for sigma in [-7i64, -3, -1, 1, 3, 5, 9] {
            for x in 0..10 {
                let s = Stride::from_parts(sigma, x).unwrap();
                assert_eq!(s.odd_part(), sigma);
                assert_eq!(s.family().exponent(), x);
            }
        }
    }

    #[test]
    fn from_parts_rejects_even_sigma() {
        assert!(matches!(
            Stride::from_parts(4, 0),
            Err(ConfigError::OutOfRange { .. })
        ));
        assert_eq!(Stride::from_parts(0, 3), Err(ConfigError::ZeroStride));
    }

    #[test]
    fn from_parts_rejects_overflow() {
        assert!(Stride::from_parts(3, 63).is_err());
        assert!(Stride::from_parts(i64::MAX, 1).is_err());
    }

    #[test]
    fn is_odd_matches_family_zero() {
        assert!(Stride::new(7).unwrap().is_odd());
        assert!(!Stride::new(6).unwrap().is_odd());
    }

    #[test]
    fn family_weights_sum_to_one() {
        let total: f64 = (0..60).map(|x| StrideFamily::new(x).weight()).sum();
        assert!((total - 1.0).abs() < 1e-12, "weights sum to {total}");
    }

    #[test]
    fn strides_up_to_enumerates_family_members() {
        let f = StrideFamily::new(3);
        let strides: Vec<i64> = f.strides_up_to(100).collect();
        assert_eq!(strides, vec![8, 24, 40, 56, 72, 88]);
        for s in strides {
            assert_eq!(Stride::new(s).unwrap().family(), f);
        }
    }

    #[test]
    fn strides_up_to_empty_when_limit_small() {
        assert_eq!(StrideFamily::new(5).strides_up_to(31).count(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Stride::new(12).unwrap().to_string(), "12 (= 3·2^2)");
        assert_eq!(StrideFamily::new(4).to_string(), "family x = 4");
    }

    #[test]
    fn try_from_and_from_conversions() {
        let s: Stride = 24i64.try_into().unwrap();
        assert_eq!(s.get(), 24);
        let f: StrideFamily = 3u32.into();
        assert_eq!(f.exponent(), 3);
    }
}
