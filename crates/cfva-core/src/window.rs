//! Conflict-free stride-family windows (Theorems 1 and 3) and parameter
//! selection (Sections 3.3 and 4.3).

use std::fmt;

use crate::stride::StrideFamily;

/// The matched-memory conflict-free window of Theorem 1.
///
/// For a matched memory (`M = T = 2^t`) with the XOR map shifted by `s`
/// and vectors of length `L = 2^λ`, out-of-order access is conflict free
/// exactly for the families
///
/// ```text
/// s − N ≤ x ≤ s,    N = min(λ − t, s)
/// ```
///
/// In-order access (the prior state of the art) serves only `x = s`.
///
/// # Examples
///
/// The paper's Section 3.3 example — `L = 128`, `m = t = 3`, `s = 4`
/// gives the window `x ∈ [0, 4]`:
///
/// ```
/// use cfva_core::window::MatchedWindow;
///
/// let w = MatchedWindow::new(3, 4, 7); // t, s, λ
/// assert_eq!(w.lo(), 0);
/// assert_eq!(w.hi(), 4);
/// assert_eq!(w.family_count(), 5);
/// assert!(w.contains(2.into()));
/// assert!(!w.contains(5.into()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchedWindow {
    t: u32,
    s: u32,
    lambda: u32,
}

impl MatchedWindow {
    /// Creates the window for latency exponent `t`, map shift `s` and
    /// vector-length exponent `lambda`.
    pub const fn new(t: u32, s: u32, lambda: u32) -> Self {
        MatchedWindow { t, s, lambda }
    }

    /// `N = min(λ − t, s)` — the number of families below `s` that join
    /// the window (Theorem 1). Zero when `λ ≤ t`.
    pub const fn n(&self) -> u32 {
        let by_length = self.lambda.saturating_sub(self.t);
        if by_length < self.s {
            by_length
        } else {
            self.s
        }
    }

    /// Lowest conflict-free family, `s − N`.
    pub const fn lo(&self) -> u32 {
        self.s - self.n()
    }

    /// Highest conflict-free family, `s`.
    pub const fn hi(&self) -> u32 {
        self.s
    }

    /// Number of conflict-free families, `N + 1`.
    pub const fn family_count(&self) -> u32 {
        self.n() + 1
    }

    /// Whether family `x` is inside the conflict-free window.
    pub fn contains(&self, family: StrideFamily) -> bool {
        let x = family.exponent();
        self.lo() <= x && x <= self.hi()
    }

    /// Whether family `x` produces T-matched vectors (Lemma 3 +
    /// Theorem 1): requires `x ≤ s` *and* the period to divide `L`.
    pub fn is_t_matched_family(&self, family: StrideFamily) -> bool {
        self.contains(family)
    }
}

impl fmt::Display for MatchedWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matched window x ∈ [{}, {}]", self.lo(), self.hi())
    }
}

/// The unmatched-memory conflict-free windows of Theorem 3.
///
/// For `M = T² = 2^{2t}` modules under the two-level map, out-of-order
/// access is conflict free for two windows of families:
///
/// ```text
/// s − N ≤ x ≤ s,    N = min(λ − t, s)     (supermodule replay)
/// y − R ≤ x ≤ y,    R = min(λ − t, y)     (section replay)
/// ```
///
/// With `y − R = s + 1` the two windows fuse into one of `N + R + 2`
/// families (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnmatchedWindow {
    t: u32,
    s: u32,
    y: u32,
    lambda: u32,
}

impl UnmatchedWindow {
    /// Creates the windows for latency exponent `t`, shifts `s`, `y`, and
    /// vector-length exponent `lambda`.
    pub const fn new(t: u32, s: u32, y: u32, lambda: u32) -> Self {
        UnmatchedWindow { t, s, y, lambda }
    }

    /// `N = min(λ − t, s)`.
    pub const fn n(&self) -> u32 {
        let by_length = self.lambda.saturating_sub(self.t);
        if by_length < self.s {
            by_length
        } else {
            self.s
        }
    }

    /// `R = min(λ − t, y)`.
    pub const fn r(&self) -> u32 {
        let by_length = self.lambda.saturating_sub(self.t);
        if by_length < self.y {
            by_length
        } else {
            self.y
        }
    }

    /// The lower window `[s − N, s]` (handled by supermodule replay).
    pub const fn lower(&self) -> (u32, u32) {
        (self.s - self.n(), self.s)
    }

    /// The upper window `[y − R, y]` (handled by section replay).
    pub const fn upper(&self) -> (u32, u32) {
        (self.y - self.r(), self.y)
    }

    /// Whether the two windows fuse into a single contiguous window
    /// (`y − R ≤ s + 1`).
    pub const fn is_contiguous(&self) -> bool {
        self.y - self.r() <= self.s + 1
    }

    /// Whether family `x` is conflict free under out-of-order access.
    pub fn contains(&self, family: StrideFamily) -> bool {
        let x = family.exponent();
        let (ll, lh) = self.lower();
        let (ul, uh) = self.upper();
        (ll <= x && x <= lh) || (ul <= x && x <= uh)
    }

    /// Which replay keying serves family `x`, if any.
    pub fn replay_kind(&self, family: StrideFamily) -> Option<ReplayKind> {
        let x = family.exponent();
        let (ll, lh) = self.lower();
        let (ul, uh) = self.upper();
        if ll <= x && x <= lh {
            Some(ReplayKind::Supermodule)
        } else if ul <= x && x <= uh {
            Some(ReplayKind::Section)
        } else {
            None
        }
    }

    /// Total number of conflict-free families (counting overlap once).
    pub fn family_count(&self) -> u32 {
        let (ll, lh) = self.lower();
        let (ul, uh) = self.upper();
        let lower = lh - ll + 1;
        let upper = uh - ul + 1;
        let overlap = if ul <= lh {
            lh.min(uh) - ul.max(ll) + 1
        } else {
            0
        };
        lower + upper - overlap
    }
}

impl fmt::Display for UnmatchedWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ll, lh) = self.lower();
        let (ul, uh) = self.upper();
        if self.is_contiguous() {
            write!(f, "unmatched window x ∈ [{}, {}]", ll, uh)
        } else {
            write!(
                f,
                "unmatched windows x ∈ [{}, {}] ∪ [{}, {}]",
                ll, lh, ul, uh
            )
        }
    }
}

/// How an out-of-order subsequence replay is keyed (Section 4.2): by
/// supermodule number for the lower window, by section number for the
/// upper window. A matched memory always replays by full module number
/// (equivalently: its supermodules are single modules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayKind {
    /// Key requests by the lower `t` module bits (paper Section 4.2 i).
    Supermodule,
    /// Key requests by the upper `t` module bits (paper Section 4.2 ii).
    Section,
}

impl fmt::Display for ReplayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayKind::Supermodule => write!(f, "supermodule"),
            ReplayKind::Section => write!(f, "section"),
        }
    }
}

/// The recommended shift for a matched memory, `s = λ − t`
/// (Section 3.3): includes family 0 (all odd strides, including stride
/// one) and maximises the window.
pub const fn recommended_s(lambda: u32, t: u32) -> u32 {
    lambda.saturating_sub(t)
}

/// The recommended section shift for an unmatched memory,
/// `y = 2(λ−t) + 1` (Section 4.3): fuses the two windows into
/// `0 ≤ x ≤ 2(λ−t)+1`.
pub const fn recommended_y(lambda: u32, t: u32) -> u32 {
    2 * lambda.saturating_sub(t) + 1
}

/// Conflict-free families for *in-order* access (the prior art the paper
/// compares against): a single family `x = s` for a matched memory, and
/// the `m − t + 1` families `s ≤ x ≤ s + m − t` for an unmatched memory
/// with the one-level map of Section 4's opening.
pub const fn ordered_window(s: u32, m: u32, t: u32) -> (u32, u32) {
    (s, s + m - t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section_3_3_example() {
        // L = 128 (λ=7), m = t = 3, s = 4: window x ∈ [0, 4].
        let w = MatchedWindow::new(3, 4, 7);
        assert_eq!(w.n(), 4);
        assert_eq!((w.lo(), w.hi()), (0, 4));
        assert_eq!(w.family_count(), 5);
        for x in 0..=4 {
            assert!(w.contains(x.into()), "x = {x}");
        }
        assert!(!w.contains(5.into()));
    }

    #[test]
    fn n_limited_by_short_vectors() {
        // λ - t < s: window shrinks and no longer reaches x = 0.
        let w = MatchedWindow::new(3, 4, 5); // λ - t = 2 < s = 4
        assert_eq!(w.n(), 2);
        assert_eq!((w.lo(), w.hi()), (2, 4));
    }

    #[test]
    fn n_zero_when_vector_fits_in_t() {
        let w = MatchedWindow::new(3, 3, 3); // λ = t
        assert_eq!(w.n(), 0);
        assert_eq!(w.family_count(), 1);
        assert!(w.contains(3.into()));
        assert!(!w.contains(2.into()));
    }

    #[test]
    fn paper_section_4_3_example() {
        // L = 128, T = 8, M = 64: s = 4, y = 9 -> x ∈ [0, 9].
        let w = UnmatchedWindow::new(3, 4, 9, 7);
        assert_eq!(w.n(), 4);
        assert_eq!(w.r(), 4);
        assert_eq!(w.lower(), (0, 4));
        assert_eq!(w.upper(), (5, 9));
        assert!(w.is_contiguous());
        assert_eq!(w.family_count(), 10);
        for x in 0..=9u32 {
            assert!(w.contains(x.into()), "x = {x}");
        }
        assert!(!w.contains(10.into()));
    }

    #[test]
    fn replay_kind_selection() {
        let w = UnmatchedWindow::new(3, 4, 9, 7);
        assert_eq!(w.replay_kind(0.into()), Some(ReplayKind::Supermodule));
        assert_eq!(w.replay_kind(4.into()), Some(ReplayKind::Supermodule));
        assert_eq!(w.replay_kind(5.into()), Some(ReplayKind::Section));
        assert_eq!(w.replay_kind(9.into()), Some(ReplayKind::Section));
        assert_eq!(w.replay_kind(10.into()), None);
    }

    #[test]
    fn disjoint_windows_when_y_large() {
        // y - R > s + 1: a gap of uncovered families remains.
        let w = UnmatchedWindow::new(2, 2, 12, 6); // λ-t = 4, R = 4, y-R = 8 > 3
        assert!(!w.is_contiguous());
        assert_eq!(w.lower(), (0, 2));
        assert_eq!(w.upper(), (8, 12));
        assert_eq!(w.family_count(), 8);
        assert!(!w.contains(5.into()));
        assert_eq!(w.to_string(), "unmatched windows x ∈ [0, 2] ∪ [8, 12]");
    }

    #[test]
    fn family_count_handles_overlap() {
        // Fully overlapping windows should not double count.
        let w = UnmatchedWindow::new(2, 6, 8, 20); // N = 6, R = 8
                                                   // lower [0,6], upper [0,8] -> union [0,8] = 9 families.
        assert_eq!(w.lower(), (0, 6));
        assert_eq!(w.upper(), (0, 8));
        assert_eq!(w.family_count(), 9);
    }

    #[test]
    fn recommended_parameters_match_paper() {
        // Section 3.3: L = 128, t = 3 -> s = 4.
        assert_eq!(recommended_s(7, 3), 4);
        // Section 4.3: y = 2(λ-t)+1 = 9.
        assert_eq!(recommended_y(7, 3), 9);
        // Composite check: recommended parameters fuse the windows.
        let w = UnmatchedWindow::new(3, recommended_s(7, 3), recommended_y(7, 3), 7);
        assert!(w.is_contiguous());
        assert_eq!(w.family_count(), 2 * (7 - 3) + 2);
    }

    #[test]
    fn ordered_window_formula() {
        // Matched in-order: a single family.
        assert_eq!(ordered_window(4, 3, 3), (4, 4));
        // Unmatched in-order (m = 6, t = 3): m - t + 1 = 4 families.
        let (lo, hi) = ordered_window(0, 6, 3);
        assert_eq!(hi - lo + 1, 4);
    }

    #[test]
    fn display_matched() {
        assert_eq!(
            MatchedWindow::new(3, 4, 7).to_string(),
            "matched window x ∈ [0, 4]"
        );
        let w = UnmatchedWindow::new(3, 4, 9, 7);
        assert_eq!(w.to_string(), "unmatched window x ∈ [0, 9]");
    }

    #[test]
    fn replay_kind_display() {
        assert_eq!(ReplayKind::Supermodule.to_string(), "supermodule");
        assert_eq!(ReplayKind::Section.to_string(), "section");
    }
}
