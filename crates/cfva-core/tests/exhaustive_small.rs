//! Exhaustive verification on small configurations: not sampled —
//! EVERY odd σ up to a bound and EVERY base inside one full mapping
//! period, for every family in the window. Small `t` keeps the space
//! tractable while exercising all the index arithmetic.

use cfva_core::dist::{is_conflict_free, temporal_distribution, SpatialDistribution};
use cfva_core::mapping::{ModuleMap, XorMatched, XorUnmatched};
use cfva_core::order::{replay_order, ReplayKey, SubseqStructure};
use cfva_core::{Stride, VectorSpec};

/// Matched memory, t = 1 and t = 2: every in-window access of every
/// base in a full address period is conflict free under replay.
#[test]
fn matched_exhaustive_t1_t2() {
    for (t, s, lambda) in [(1u32, 2u32, 3u32), (1, 3, 4), (2, 3, 5), (2, 4, 6)] {
        let map = XorMatched::new(t, s).unwrap();
        let t_cycles = 1u64 << t;
        let len = 1u64 << lambda;
        let n = (lambda - t).min(s);
        let period_span = 1u64 << map.address_bits_used();

        for x in (s - n)..=s {
            let st = SubseqStructure::for_matched(&map, x.into()).unwrap();
            for sigma in (1..=7i64).step_by(2) {
                let stride = Stride::from_parts(sigma, x).unwrap();
                for base in 0..period_span {
                    let vec = VectorSpec::with_stride(base.into(), stride, len).unwrap();
                    let order = replay_order(&map, &vec, &st, ReplayKey::Module)
                        .unwrap_or_else(|e| panic!("t={t} s={s} x={x} σ={sigma} A1={base}: {e}"));
                    let td = temporal_distribution(&map, &vec, &order);
                    assert!(
                        is_conflict_free(&td, t_cycles),
                        "t={t} s={s} x={x} σ={sigma} A1={base}"
                    );
                }
            }
        }
    }
}

/// Unmatched memory, t = 1 (M = 4): both windows, every base in a full
/// period, every odd σ ≤ 7.
#[test]
fn unmatched_exhaustive_t1() {
    let t = 1u32;
    let s = 2u32;
    let y = 4u32;
    let lambda = 4u32; // L = 16; R = 3, upper window [1, 4]; lower [0, 2]
    let map = XorUnmatched::new(t, s, y).unwrap();
    let t_cycles = 1u64 << t;
    let len = 1u64 << lambda;
    let period_span = 1u64 << map.address_bits_used();

    for x in 0..=y {
        let (st, key) = if x <= s {
            (
                SubseqStructure::for_unmatched_lower(&map, x.into()).unwrap(),
                ReplayKey::Supermodule { t },
            )
        } else {
            (
                SubseqStructure::for_unmatched_upper(&map, x.into()).unwrap(),
                ReplayKey::Section { t },
            )
        };
        if st.periods_in(len).is_err() {
            continue; // family outside the length-compatible window
        }
        for sigma in (1..=7i64).step_by(2) {
            let stride = Stride::from_parts(sigma, x).unwrap();
            for base in 0..period_span {
                let vec = VectorSpec::with_stride(base.into(), stride, len).unwrap();
                let order = replay_order(&map, &vec, &st, key)
                    .unwrap_or_else(|e| panic!("x={x} σ={sigma} A1={base}: {e}"));
                let td = temporal_distribution(&map, &vec, &order);
                assert!(is_conflict_free(&td, t_cycles), "x={x} σ={sigma} A1={base}");
            }
        }
    }
}

/// The Lemma 3 boundary is tight: for x = s+1 on a matched memory, NO
/// base yields a T-matched vector (so no conflict-free order exists).
#[test]
fn lemma_3_boundary_is_tight() {
    let map = XorMatched::new(2, 3).unwrap();
    let len = 32u64;
    let period_span = 1u64 << map.address_bits_used();
    for sigma in (1..=7i64).step_by(2) {
        let stride = Stride::from_parts(sigma, 4).unwrap(); // x = s+1
        for base in 0..period_span {
            let vec = VectorSpec::with_stride(base.into(), stride, len).unwrap();
            let sd = SpatialDistribution::compute(&map, &vec);
            assert!(
                !sd.is_t_matched(4),
                "σ={sigma} A1={base} unexpectedly T-matched"
            );
        }
    }
}

/// Theorem 1's N = min(λ−t, s) bound is tight from below too: for
/// x = s−N−1 (when it exists), L is not a multiple of the period, and
/// T-matchedness indeed depends on the base — some bases fail.
#[test]
fn theorem_1_length_bound_is_tight() {
    // t = 2, s = 4, λ = 5: N = min(3, 4) = 3, window [1, 4]; x = 0 has
    // period 64 > L = 32.
    let map = XorMatched::new(2, 4).unwrap();
    let len = 32u64;
    let mut t_matched = 0u32;
    let mut not_matched = 0u32;
    for base in 0..(1u64 << map.address_bits_used()) {
        let vec = VectorSpec::new(base, 1, len).unwrap();
        let sd = SpatialDistribution::compute(&map, &vec);
        if sd.is_t_matched(4) {
            t_matched += 1;
        } else {
            not_matched += 1;
        }
    }
    // The paper: "it is possible for a vector to be T-matched, but this
    // depends on its initial address" — both outcomes must occur.
    assert!(t_matched > 0, "no base was T-matched");
    assert!(not_matched > 0, "every base was T-matched");
}

/// Periods are exact for the XOR maps: the canonical module sequence
/// repeats at P_x and at no earlier power-of-two shift, for generic
/// bases.
#[test]
fn periods_are_minimal_for_generic_bases() {
    let map = XorMatched::new(2, 3).unwrap();
    for x in 0..=3u32 {
        let p = map.period(x.into());
        let stride = Stride::from_parts(3, x).unwrap();
        let vec = VectorSpec::with_stride(1u64.into(), stride, 4 * p).unwrap();
        let seq: Vec<_> = vec.iter().map(|a| map.module_of(a)).collect();
        // Repeats at P.
        for i in 0..(seq.len() - p as usize) {
            assert_eq!(seq[i], seq[i + p as usize], "x={x}");
        }
        // Does not repeat at P/2.
        if p >= 2 {
            let half = (p / 2) as usize;
            assert!(
                (0..(seq.len() - half)).any(|i| seq[i] != seq[i + half]),
                "x={x}: sequence repeats at P/2"
            );
        }
    }
}
