//! The equivalence contract behind the serving layer's result cache:
//! reducing an access to its [`StrideClass`] and replacing it by the
//! class representative is **invisible** — identical module sequences
//! and identical plans, for every registered map.

use cfva_core::equiv::StrideClass;
use cfva_core::mapping::{ModuleMap, Registry};
use cfva_core::plan::Strategy;
use cfva_core::{ModuleId, Stride, VectorSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole property: across `Registry::builtin().all_specs()`,
    /// the class representative produces a bit-identical module
    /// sequence and a bit-identical plan (element order and module
    /// sequence) under every planning strategy the spec supports.
    #[test]
    fn representative_is_bit_identical_across_all_registered_maps(
        kind in 0usize..64,
        sigma_idx in 0i64..64,
        negate in 0u32..2,
        x in 0u32..12,
        base in 0u64..u64::MAX / 4,
        len_pow in 0u32..9,
        strategy_idx in 0usize..4,
    ) {
        let registry = Registry::builtin();
        let specs = registry.all_specs();
        let spec = &specs[kind % specs.len()];
        let map = registry.build(spec).expect("coverage specs build");
        let planner = registry.planner(spec).expect("coverage specs plan");

        let sigma = (2 * sigma_idx + 1) * if negate == 1 { -1 } else { 1 };
        let stride = Stride::from_parts(sigma, x).expect("odd sigma");
        let vec = VectorSpec::with_stride(base.into(), stride, 1 << len_pow)
            .expect("bounded base");

        let class = StrideClass::reduce(map.as_ref(), &vec);
        // A map consuming the full address width (the overridden region
        // map) reduces a negative odd part to a residue mod 2^64 too
        // large to rebuild as a stride: the class is still a sound
        // cache key, but has no constructible representative to compare
        // against — skip those draws.
        let rep = class.representative();
        prop_assume!(rep.is_some());
        let rep = rep.unwrap();

        // Reduction is a projection: the representative reduces to
        // itself.
        prop_assert_eq!(StrideClass::reduce(map.as_ref(), &rep), class);

        // Identical module sequences, element for element.
        let n = vec.len() as usize;
        let mut original = vec![ModuleId::new(0); n];
        let mut reduced = vec![ModuleId::new(0); n];
        map.map_stride_into(vec.base(), vec.stride().get(), &mut original);
        map.map_stride_into(rep.base(), rep.stride().get(), &mut reduced);
        prop_assert_eq!(&original, &reduced, "{}: {} vs {}", spec, vec, rep);

        // Identical plans: the planner must make the same strategy
        // decisions (same element order) for every member of the class.
        let strategy = [
            Strategy::Auto,
            Strategy::Canonical,
            Strategy::Subsequence,
            Strategy::ConflictFree,
        ][strategy_idx];
        match (planner.plan(&vec, strategy), planner.plan(&rep, strategy)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    a.element_order(),
                    b.element_order(),
                    "{}: {} order", spec, strategy
                );
                prop_assert_eq!(
                    a.module_sequence(),
                    b.module_sequence(),
                    "{}: {} modules", spec, strategy
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "{}: same rejection", spec),
            (a, b) => prop_assert!(
                false,
                "{}: planner disagreed across the class: {:?} vs {:?}",
                spec, a.is_ok(), b.is_ok()
            ),
        }
    }
}

/// Canonicalized `MapSpec`s round-trip `parse`/`Display` for arbitrary
/// spellings, and equivalent spellings collapse to one canonical form.
#[test]
fn canonical_specs_round_trip_for_scrambled_spellings() {
    use cfva_core::mapping::MapSpec;
    for (scrambled, expected) in [
        ("xor-matched:s=0x4,t=0b11", "xor-matched:s=4,t=3"),
        ("skewed:d=0b11,m=3", "skewed:d=3,m=3"),
        (
            "linear:rows=0b1_0010_1101|0b0_1101_1010|391",
            "linear:rows=301|218|391",
        ),
        (
            "region:s=3,regions=0x1:6,bits=0b1010,t=3",
            "region:bits=10,regions=1:6,s=3,t=3",
        ),
    ] {
        let canon = MapSpec::parse(scrambled).unwrap().canonical();
        assert_eq!(canon.to_string(), expected);
        let reparsed: MapSpec = canon.to_string().parse().unwrap();
        assert_eq!(reparsed, canon);
        assert_eq!(reparsed.canonical(), canon);
    }
}
