//! Cycle-by-cycle event traces for debugging and white-box tests.

use std::fmt;

use cfva_core::ModuleId;

/// One simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The processor put a request on the address bus.
    Issue {
        /// Cycle of the event.
        cycle: u64,
        /// Element requested.
        element: u64,
        /// Target module.
        module: ModuleId,
    },
    /// The processor wanted to issue but the target input queue was
    /// full.
    Stall {
        /// Cycle of the event.
        cycle: u64,
        /// The module whose queue was full.
        module: ModuleId,
    },
    /// A module moved a request from its input queue into service.
    ServiceStart {
        /// Cycle of the event.
        cycle: u64,
        /// Serving module.
        module: ModuleId,
        /// Element served.
        element: u64,
    },
    /// A module finished service and queued the datum for the bus.
    Complete {
        /// Cycle of the event.
        cycle: u64,
        /// Completing module.
        module: ModuleId,
        /// Element completed.
        element: u64,
    },
    /// The return bus delivered an element to the processor.
    Deliver {
        /// Cycle the processor received the datum.
        cycle: u64,
        /// Element delivered.
        element: u64,
    },
}

impl Event {
    /// The cycle the event happened.
    pub const fn cycle(&self) -> u64 {
        match *self {
            Event::Issue { cycle, .. }
            | Event::Stall { cycle, .. }
            | Event::ServiceStart { cycle, .. }
            | Event::Complete { cycle, .. }
            | Event::Deliver { cycle, .. } => cycle,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Issue {
                cycle,
                element,
                module,
            } => write!(f, "[{cycle:>5}] issue    e{element} -> m{module}"),
            Event::Stall { cycle, module } => {
                write!(f, "[{cycle:>5}] stall    (m{module} full)")
            }
            Event::ServiceStart {
                cycle,
                module,
                element,
            } => write!(f, "[{cycle:>5}] service  e{element} @ m{module}"),
            Event::Complete {
                cycle,
                module,
                element,
            } => write!(f, "[{cycle:>5}] complete e{element} @ m{module}"),
            Event::Deliver { cycle, element } => {
                write!(f, "[{cycle:>5}] deliver  e{element}")
            }
        }
    }
}

/// An event log. Collection is off by default; enable it with
/// [`MemorySystem::enable_trace`](crate::MemorySystem::enable_trace).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled (non-recording) trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether events are being recorded.
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op while disabled).
    pub fn push(&mut self, event: Event) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.push(Event::Deliver {
            cycle: 1,
            element: 0,
        });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.push(Event::Deliver {
            cycle: 1,
            element: 0,
        });
        t.push(Event::Stall {
            cycle: 2,
            module: ModuleId::new(3),
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].cycle(), 1);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn event_display() {
        let e = Event::Issue {
            cycle: 7,
            element: 3,
            module: ModuleId::new(2),
        };
        assert_eq!(e.to_string(), "[    7] issue    e3 -> m2");
        let d = Event::Deliver {
            cycle: 73,
            element: 63,
        };
        assert_eq!(d.to_string(), "[   73] deliver  e63");
    }
}
