//! Access statistics reported by the simulator.

use std::fmt;

/// Measurements of one simulated vector access.
///
/// Doubles as a reusable buffer:
/// [`MemorySystem::run_plan_into`](crate::MemorySystem::run_plan_into)
/// clears and refills the per-element and per-module vectors in place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Total latency in processor cycles: from the cycle the first
    /// address is sent until the cycle the last element is received,
    /// inclusive (the paper's Section 2 definition, `T + L + 1` for a
    /// conflict-free access).
    pub latency: u64,
    /// Number of elements transferred.
    pub elements: u64,
    /// Cycles the processor spent stalled because the target module's
    /// input buffer was full.
    pub stall_cycles: u64,
    /// Requests that had to wait in an input queue before service
    /// (zero ⇔ the access was conflict free in the paper's sense).
    pub conflicts: u64,
    /// Per-element arrival cycle, indexed by element number.
    pub arrival: Vec<u64>,
    /// Per-module busy cycles.
    pub module_busy: Vec<u64>,
    /// Highest input-queue occupancy observed on any module.
    pub max_in_q: usize,
}

impl AccessStats {
    /// Elements delivered per cycle over the whole access,
    /// `L / latency`. The steady-state maximum is just below 1.
    pub fn throughput(&self) -> f64 {
        self.elements as f64 / self.latency as f64
    }

    /// Efficiency relative to the conflict-free minimum
    /// `T + L + 1` (= 1.0 when the access is conflict free).
    pub fn efficiency(&self, t_cycles: u64) -> f64 {
        (t_cycles + self.elements + 1) as f64 / self.latency as f64
    }

    /// Whether the access ran without any queueing or stalls.
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts == 0 && self.stall_cycles == 0
    }

    /// Extra cycles over the conflict-free minimum.
    pub fn excess_latency(&self, t_cycles: u64) -> u64 {
        self.latency.saturating_sub(t_cycles + self.elements + 1)
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} elements in {} cycles ({} stalls, {} conflicts)",
            self.elements, self.latency, self.stall_cycles, self.conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> AccessStats {
        AccessStats {
            latency: 73,
            elements: 64,
            stall_cycles: 0,
            conflicts: 0,
            arrival: vec![],
            module_busy: vec![],
            max_in_q: 1,
        }
    }

    #[test]
    fn throughput_and_efficiency() {
        let s = stats();
        assert!((s.throughput() - 64.0 / 73.0).abs() < 1e-12);
        assert_eq!(s.efficiency(8), 1.0);
        assert!(s.is_conflict_free());
        assert_eq!(s.excess_latency(8), 0);
    }

    #[test]
    fn excess_latency_counts_overrun() {
        let mut s = stats();
        s.latency = 80;
        s.conflicts = 3;
        assert_eq!(s.excess_latency(8), 7);
        assert!(!s.is_conflict_free());
        assert!(s.efficiency(8) < 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(
            stats().to_string(),
            "64 elements in 73 cycles (0 stalls, 0 conflicts)"
        );
    }
}
