//! Access statistics reported by the simulator.

use std::fmt;

/// Measurements of one simulated vector access.
///
/// Doubles as a reusable buffer:
/// [`MemorySystem::run_plan_into`](crate::MemorySystem::run_plan_into)
/// clears and refills the per-element and per-module vectors in place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Total latency in processor cycles: from the cycle the first
    /// address is sent until the cycle the last element is received,
    /// inclusive (the paper's Section 2 definition, `T + L + 1` for a
    /// conflict-free access).
    pub latency: u64,
    /// Number of elements transferred.
    pub elements: u64,
    /// Cycles the processor spent stalled because the target module's
    /// input buffer was full.
    pub stall_cycles: u64,
    /// Requests that had to wait in an input queue before service
    /// (zero ⇔ the access was conflict free in the paper's sense).
    pub conflicts: u64,
    /// Per-element arrival cycle, indexed by element number.
    pub arrival: Vec<u64>,
    /// Per-module busy cycles.
    pub module_busy: Vec<u64>,
    /// Highest input-queue occupancy observed on any module.
    pub max_in_q: usize,
}

impl AccessStats {
    /// Elements delivered per cycle over the whole access,
    /// `L / latency`. The steady-state maximum is just below 1.
    ///
    /// Returns 0.0 for an empty access (zero elements, or a
    /// default-constructed record whose latency is still zero), never
    /// `NaN` or `inf`.
    pub fn throughput(&self) -> f64 {
        if self.elements == 0 || self.latency == 0 {
            return 0.0;
        }
        self.elements as f64 / self.latency as f64
    }

    /// The conflict-free minimum latency for this access under module
    /// service time `t_cycles`: `T + L + 1` (paper Section 2). The
    /// single formula [`efficiency`](Self::efficiency) and
    /// [`excess_latency`](Self::excess_latency) are both defined
    /// against.
    pub const fn min_latency(&self, t_cycles: u64) -> u64 {
        t_cycles + self.elements + 1
    }

    /// Efficiency relative to the **single-port** conflict-free
    /// minimum [`min_latency`](Self::min_latency) (= 1.0 when the
    /// access is conflict free).
    ///
    /// Returns 0.0 for an empty access, and is clamped to at most 1.0
    /// so that a mismatched `t_cycles` (a value other than the one the
    /// access was simulated with) cannot silently poison downstream
    /// averages with an "efficiency" above unity. The clamp also means
    /// a multi-port access that legitimately beats the single-port
    /// floor saturates at 1.0 — this metric is a single-port-model
    /// quantity (the paper's Section 5B `η`); compare multi-port
    /// configurations with [`throughput`](Self::throughput) instead.
    pub fn efficiency(&self, t_cycles: u64) -> f64 {
        if self.elements == 0 || self.latency == 0 {
            return 0.0;
        }
        (self.min_latency(t_cycles) as f64 / self.latency as f64).min(1.0)
    }

    /// Whether the access ran without any queueing or stalls.
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts == 0 && self.stall_cycles == 0
    }

    /// Extra cycles over the conflict-free minimum
    /// [`min_latency`](Self::min_latency); zero when the access ran at
    /// (or, with a mismatched `t_cycles`, below) the floor.
    pub fn excess_latency(&self, t_cycles: u64) -> u64 {
        self.latency.saturating_sub(self.min_latency(t_cycles))
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} elements in {} cycles ({} stalls, {} conflicts)",
            self.elements, self.latency, self.stall_cycles, self.conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> AccessStats {
        AccessStats {
            latency: 73,
            elements: 64,
            stall_cycles: 0,
            conflicts: 0,
            arrival: vec![],
            module_busy: vec![],
            max_in_q: 1,
        }
    }

    #[test]
    fn throughput_and_efficiency() {
        let s = stats();
        assert!((s.throughput() - 64.0 / 73.0).abs() < 1e-12);
        assert_eq!(s.efficiency(8), 1.0);
        assert!(s.is_conflict_free());
        assert_eq!(s.excess_latency(8), 0);
    }

    #[test]
    fn excess_latency_counts_overrun() {
        let mut s = stats();
        s.latency = 80;
        s.conflicts = 3;
        assert_eq!(s.excess_latency(8), 7);
        assert!(!s.is_conflict_free());
        assert!(s.efficiency(8) < 1.0);
    }

    #[test]
    fn empty_access_has_zero_throughput_and_efficiency() {
        // A zero-element plan or a default-constructed record must not
        // produce NaN (0/0) or inf ((T+1)/0).
        let empty = AccessStats::default();
        assert_eq!(empty.elements, 0);
        assert_eq!(empty.latency, 0);
        assert_eq!(empty.throughput(), 0.0);
        assert_eq!(empty.efficiency(8), 0.0);
        assert!(empty.throughput().is_finite());
        assert!(empty.efficiency(8).is_finite());

        // A simulated empty plan reports latency 1 and zero elements.
        let ran_empty = AccessStats {
            latency: 1,
            ..Default::default()
        };
        assert_eq!(ran_empty.throughput(), 0.0);
        assert_eq!(ran_empty.efficiency(8), 0.0);
        assert_eq!(ran_empty.excess_latency(8), 0);
    }

    #[test]
    fn efficiency_is_clamped_at_one() {
        // Caller passes the wrong t_cycles (here 16 instead of the 8
        // the access was simulated with): the minimum-latency formula
        // exceeds the measured latency, which must clamp, not report
        // an efficiency > 1.
        let s = stats();
        assert!(s.min_latency(16) > s.latency);
        assert_eq!(s.efficiency(16), 1.0);
        // And excess_latency agrees on the same formula: saturates at 0.
        assert_eq!(s.excess_latency(16), 0);
    }

    #[test]
    fn efficiency_and_excess_latency_share_the_minimum_formula() {
        let mut s = stats();
        s.latency = 100;
        assert_eq!(s.min_latency(8), 73);
        assert_eq!(s.excess_latency(8), 100 - 73);
        assert!((s.efficiency(8) - 73.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(
            stats().to_string(),
            "64 elements in 73 cycles (0 stalls, 0 conflicts)"
        );
    }
}
