//! Multi-vector access: several plans sharing one memory — the paper's
//! Section 6 open question ("the case in which several vectors are
//! accessed simultaneously"), modelled end to end.
//!
//! The model keeps the paper's single address bus (one request per
//! cycle) and single return bus, and adds an arbiter in front of the
//! address bus that picks which stream issues next. Three
//! [`IssuePolicy`] arbiters are provided:
//!
//! * [`IssuePolicy::RoundRobin`] — streams take turns; a stream whose
//!   turn it is blocks the bus if its target module is full
//!   (head-of-line, like a real in-order address bus).
//! * [`IssuePolicy::Priority`] — lower stream index always wins: the
//!   whole of stream 0 issues before stream 1 starts, but drain phases
//!   overlap (stream 1 issues while stream 0's last requests are still
//!   in service).
//! * [`IssuePolicy::WorkConserving`] — round-robin, but a stream whose
//!   head request targets a full module is *skipped* instead of
//!   stalling the bus; the processor stalls only when every pending
//!   stream is blocked.
//!
//! Accounting is per stream, [`AccessStats`](crate::AccessStats)-grade:
//! each [`StreamStats`] carries the stream's arrival cycles, first
//! issue, latency, spread, and — attributed to the stream that *lost*
//! arbitration — its queueing conflicts and bus stalls. Cross-stream
//! conflicts appear even when each stream is conflict free alone;
//! quantifying that is exactly the open question the authors pose, and
//! [`crate::multi`] plus the predictor in `cfva_core::equiv` answer it.
//!
//! ## Engines
//!
//! The static policies (`RoundRobin`, `Priority`) reduce to a merged
//! request stream and reuse the simulator's engine chain:
//!
//! * [`Engine::Cycle`] (the default config) runs the merged stream
//!   through the per-cycle oracle with tracing on and de-multiplexes
//!   per-stream statistics from the event trace.
//! * Any other engine selects the **fast path**: a merged stream that
//!   satisfies the paper's conflict-free window property is fully
//!   determined and finished in closed form (no simulation at all);
//!   anything else runs on the event-queue engine
//!   ([`Engine::Event`]) and demuxes its — provably bit-identical —
//!   trace. `tests` prove `run_multi` bit-identical across the two
//!   paths for every registered map.
//!
//! [`IssuePolicy::WorkConserving`] issues based on live module state,
//! so it always runs its own cycle-accurate arbitration loop.
//!
//! ## Errors
//!
//! Unlike the early stub, nothing here panics: oversized stream counts,
//! oversized merged streams and out-of-range plan modules all surface
//! as [`ConfigError::OutOfRange`].

use cfva_core::plan::AccessPlan;
use cfva_core::{Addr, ConfigError, ModuleId};

use crate::config::MemConfig;
use crate::event::Engine;
use crate::module::MemModule;
use crate::system::{MemorySystem, Request};
use crate::trace::Event;

/// How the address-bus arbiter picks the next stream to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssuePolicy {
    /// Streams take turns; the stream whose turn it is blocks the bus
    /// when its target module is full (head-of-line stall).
    RoundRobin,
    /// Lower stream index always wins — equivalent to issuing the
    /// streams back to back, with overlapping drain phases.
    Priority,
    /// Round-robin that skips streams whose head request is blocked;
    /// the bus stalls only when every pending stream is blocked.
    WorkConserving,
}

impl std::fmt::Display for IssuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IssuePolicy::RoundRobin => "round-robin",
            IssuePolicy::Priority => "priority",
            IssuePolicy::WorkConserving => "work-conserving",
        })
    }
}

/// Per-stream measurements of a multi-vector run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiStats {
    /// Per-stream views, indexed like the `plans` argument.
    pub streams: Vec<StreamStats>,
    /// Cycles from the first issue of any stream to the last arrival of
    /// any stream (the combined access time). `0` when no stream has
    /// elements.
    pub makespan: u64,
    /// Conflicts across the whole combined run (equals the sum of the
    /// per-stream conflicts).
    pub conflicts: u64,
    /// Processor stalls across the whole combined run (equals the sum
    /// of the per-stream stalls).
    pub stall_cycles: u64,
}

/// One stream's share of a multi-vector run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of elements in the stream.
    pub elements: u64,
    /// Arrival cycle of each element, indexed by element id.
    pub arrival: Vec<u64>,
    /// Cycle the stream's first request won the address bus. `0` for an
    /// empty stream.
    pub first_issue: u64,
    /// Cycles from the stream's first issue to its last arrival,
    /// inclusive — the stream's own access time inside the combined
    /// run. `0` for an empty stream.
    pub latency: u64,
    /// Cycles from the stream's first to last arrival, inclusive; `0`
    /// for an empty stream.
    pub spread: u64,
    /// Requests of *this* stream that had to queue behind a busy module
    /// — the conflicts this stream lost to the combined traffic.
    pub conflicts: u64,
    /// Address-bus stalls charged to this stream (its head request — or,
    /// under [`IssuePolicy::WorkConserving`], the rotation head while
    /// every stream was blocked — could not issue).
    pub stall_cycles: u64,
}

impl MultiStats {
    /// Sequential-execution baseline: the makespan if the same plans ran
    /// one after another, each at its measured-alone latency.
    pub fn sequential_baseline(latencies: &[u64]) -> u64 {
        latencies.iter().sum()
    }
}

/// One request of the merged stream: dense id `0..total` in issue
/// order, plus the side tables back to (stream, element).
struct Merged {
    requests: Vec<(u64, Addr, ModuleId)>,
    stream_of: Vec<u32>,
    elem_of: Vec<u64>,
}

/// Upper bound on concurrent streams (the stream side-table is `u32`;
/// the practical bound is far lower).
const MAX_STREAMS: u64 = 1 << 15;
/// Upper bound on the merged request stream.
const MAX_TOTAL_ELEMENTS: u64 = 1 << 32;

/// Validates stream count, combined length and module range up front so
/// the engines below cannot hit their internal contract panics.
fn validate(cfg: &MemConfig, plans: &[&AccessPlan]) -> Result<u64, ConfigError> {
    if plans.len() as u64 >= MAX_STREAMS {
        return Err(ConfigError::OutOfRange {
            what: "streams",
            value: plans.len() as u64,
            constraint: "fewer than 2^15 concurrent streams",
        });
    }
    let mut total: u64 = 0;
    for plan in plans {
        total = total.saturating_add(plan.len());
    }
    if total >= MAX_TOTAL_ELEMENTS {
        return Err(ConfigError::OutOfRange {
            what: "total elements",
            value: total,
            constraint: "fewer than 2^32 elements across all streams",
        });
    }
    let module_count = cfg.module_count();
    for plan in plans {
        for entry in plan.entries() {
            if entry.module().get() >= module_count {
                return Err(ConfigError::OutOfRange {
                    what: "module",
                    value: entry.module().get(),
                    constraint: "every plan module within the memory's range",
                });
            }
        }
    }
    Ok(total)
}

/// Runs several plans through one memory under an issue policy.
///
/// The config's [`Engine`] selects the execution path for the static
/// policies: [`Engine::Cycle`] is the traced per-cycle oracle, anything
/// else takes the verified fast path (closed form for conflict-free
/// merges, event engine otherwise) — see the [module docs](self).
///
/// # Errors
///
/// [`ConfigError::OutOfRange`] on more than `2^15` streams, more than
/// `2^32` combined elements, or a plan module outside the memory.
pub fn run_multi(
    cfg: MemConfig,
    plans: &[&AccessPlan],
    policy: IssuePolicy,
) -> Result<MultiStats, ConfigError> {
    let total = validate(&cfg, plans)?;
    if total == 0 {
        return Ok(MultiStats {
            streams: plans.iter().map(|_| StreamStats::default()).collect(),
            makespan: 0,
            conflicts: 0,
            stall_cycles: 0,
        });
    }
    match policy {
        IssuePolicy::WorkConserving => Ok(run_work_conserving(cfg, plans, total)),
        IssuePolicy::RoundRobin | IssuePolicy::Priority => {
            let merged = merge(plans, total, policy);
            if matches!(cfg.engine(), Engine::Cycle) {
                Ok(run_traced(cfg, plans, &merged, Engine::Cycle))
            } else if cfg.ports() == 1 && window_conflict_free(&merged, &cfg) {
                Ok(finish_conflict_free(&cfg, plans, &merged))
            } else {
                Ok(run_traced(cfg, plans, &merged, Engine::Event))
            }
        }
    }
}

/// Runs several plans with round-robin issue — the historical entry
/// point, now a thin wrapper over [`run_multi`] with
/// [`IssuePolicy::RoundRobin`].
///
/// # Errors
///
/// Same conditions as [`run_multi`].
pub fn run_interleaved(cfg: MemConfig, plans: &[&AccessPlan]) -> Result<MultiStats, ConfigError> {
    run_multi(cfg, plans, IssuePolicy::RoundRobin)
}

/// Builds the merged issue order of a static policy: dense ids
/// `0..total` plus side tables — no bit-tagging of element ids.
fn merge(plans: &[&AccessPlan], total: u64, policy: IssuePolicy) -> Merged {
    let total = total as usize;
    let mut requests = Vec::with_capacity(total);
    let mut stream_of = Vec::with_capacity(total);
    let mut elem_of = Vec::with_capacity(total);
    fn push(
        requests: &mut Vec<(u64, Addr, ModuleId)>,
        stream_of: &mut Vec<u32>,
        elem_of: &mut Vec<u64>,
        s: usize,
        entry: &cfva_core::plan::PlanEntry,
    ) {
        requests.push((requests.len() as u64, entry.addr(), entry.module()));
        stream_of.push(s as u32);
        elem_of.push(entry.element());
    }
    match policy {
        IssuePolicy::Priority => {
            for (s, plan) in plans.iter().enumerate() {
                for entry in plan.entries() {
                    push(&mut requests, &mut stream_of, &mut elem_of, s, entry);
                }
            }
        }
        _ => {
            let mut cursors = vec![0usize; plans.len()];
            let mut turn = 0usize;
            while requests.len() < total {
                let s = turn % plans.len();
                turn += 1;
                let Some(entry) = plans[s].entries().get(cursors[s]) else {
                    continue;
                };
                push(&mut requests, &mut stream_of, &mut elem_of, s, entry);
                cursors[s] += 1;
            }
        }
    }
    Merged {
        requests,
        stream_of,
        elem_of,
    }
}

/// The paper's window property on the merged stream: every window of
/// `T` consecutive requests touches `T` distinct modules. When it
/// holds (and the memory has one port), the run is fully determined —
/// request `k` issues at cycle `k`, starts service immediately and
/// arrives at `k + T + 1` — which is exactly what the cycle engine
/// produces (`tests/fast_path.rs`).
fn window_conflict_free(merged: &Merged, cfg: &MemConfig) -> bool {
    let t = cfg.t_cycles();
    let mut last_start = vec![u64::MAX; cfg.module_count() as usize];
    for (k, &(_, _, module)) in merged.requests.iter().enumerate() {
        let midx = module.get() as usize;
        let k = k as u64;
        match last_start.get_mut(midx) {
            Some(last) => {
                if *last != u64::MAX && k - *last < t {
                    return false;
                }
                *last = k;
            }
            None => return false, // validated earlier; defensive
        }
    }
    true
}

/// Closed-form statistics of a conflict-free merged stream (no
/// simulation).
fn finish_conflict_free(cfg: &MemConfig, plans: &[&AccessPlan], merged: &Merged) -> MultiStats {
    let t = cfg.t_cycles();
    let total = merged.requests.len() as u64;
    let mut streams = empty_streams(plans);
    let mut first_issue = vec![u64::MAX; plans.len()];
    for k in 0..merged.requests.len() {
        let s = merged.stream_of[k] as usize;
        let elem = merged.elem_of[k] as usize;
        let k = k as u64;
        if let Some(first) = first_issue.get_mut(s) {
            if *first == u64::MAX {
                *first = k;
            }
        }
        if let Some(stream) = streams.get_mut(s) {
            if let Some(slot) = stream.arrival.get_mut(elem) {
                *slot = k + t + 1;
            }
        }
    }
    for (stream, first) in streams.iter_mut().zip(&first_issue) {
        finalize_stream(
            stream,
            if *first == u64::MAX {
                None
            } else {
                Some(*first)
            },
        );
    }
    MultiStats {
        streams,
        makespan: t + total + 1,
        conflicts: 0,
        stall_cycles: 0,
    }
}

/// Runs the merged stream on `engine` with tracing enabled and
/// de-multiplexes per-stream statistics from the (bit-identical across
/// engines) event trace.
fn run_traced(
    cfg: MemConfig,
    plans: &[&AccessPlan],
    merged: &Merged,
    engine: Engine,
) -> MultiStats {
    let mut sim = MemorySystem::new(cfg.with_engine(engine));
    sim.enable_trace();
    let combined = sim.run_requests(&merged.requests);

    let total = merged.requests.len();
    let mut streams = empty_streams(plans);
    let mut first_issue = vec![u64::MAX; plans.len()];
    let mut issue_cycle = vec![0u64; total];
    let mut issued = 0usize;
    for event in sim.trace().events() {
        match *event {
            Event::Issue { cycle, element, .. } => {
                let k = element as usize;
                if let Some(slot) = issue_cycle.get_mut(k) {
                    *slot = cycle;
                }
                let s = merged.stream_of.get(k).copied().unwrap_or(0) as usize;
                if let Some(first) = first_issue.get_mut(s) {
                    if *first == u64::MAX {
                        *first = cycle;
                    }
                }
                issued += 1;
            }
            Event::Stall { .. } => {
                // The stalled request is the next un-issued one.
                let s = merged.stream_of.get(issued).copied().unwrap_or(0) as usize;
                if let Some(stream) = streams.get_mut(s) {
                    stream.stall_cycles += 1;
                }
            }
            Event::ServiceStart { cycle, element, .. } => {
                let k = element as usize;
                if cycle > issue_cycle.get(k).copied().unwrap_or(0) {
                    let s = merged.stream_of.get(k).copied().unwrap_or(0) as usize;
                    if let Some(stream) = streams.get_mut(s) {
                        stream.conflicts += 1;
                    }
                }
            }
            _ => {}
        }
    }
    for k in 0..total {
        let s = merged.stream_of[k] as usize;
        let elem = merged.elem_of[k] as usize;
        let when = combined.arrival.get(k).copied().unwrap_or(0);
        if let Some(stream) = streams.get_mut(s) {
            if let Some(slot) = stream.arrival.get_mut(elem) {
                *slot = when;
            }
        }
    }
    for (stream, first) in streams.iter_mut().zip(&first_issue) {
        finalize_stream(
            stream,
            if *first == u64::MAX {
                None
            } else {
                Some(*first)
            },
        );
    }
    MultiStats {
        streams,
        makespan: combined.latency,
        conflicts: combined.conflicts,
        stall_cycles: combined.stall_cycles,
    }
}

/// The work-conserving arbiter: its issue order depends on live module
/// state, so it runs its own cycle-accurate loop over the module array
/// (the same four phases as the cycle engine) and accounts per stream
/// directly at issue/service/delivery time.
fn run_work_conserving(cfg: MemConfig, plans: &[&AccessPlan], total: u64) -> MultiStats {
    let m_count = cfg.module_count() as usize;
    let t = cfg.t_cycles();
    let mut modules: Vec<MemModule> = (0..m_count)
        .map(|_| MemModule::new(t, cfg.q_in(), cfg.q_out()))
        .collect();
    let mut active: Vec<usize> = Vec::new();
    let mut cursors = vec![0usize; plans.len()];
    let mut streams = empty_streams(plans);
    let mut first_issue = vec![u64::MAX; plans.len()];
    // Side tables indexed by dense issue id (issue order).
    let mut issued_stream: Vec<u32> = Vec::with_capacity(total as usize);
    let mut issued_elem: Vec<u64> = Vec::with_capacity(total as usize);
    let mut rotation = 0usize;
    let mut delivered: u64 = 0;
    let mut first_issue_any: Option<u64> = None;
    let mut last_arrival: u64 = 0;
    let mut stall_total: u64 = 0;

    let safety_bound = 1_000_000u64.max(total * t * 4 + 10_000);
    let mut cycle: u64 = 0;
    while delivered < total {
        assert!(
            cycle < safety_bound,
            "multi-stream simulation exceeded {safety_bound} cycles — engine bug"
        );

        // Phase 1: service completions.
        for &idx in active.iter() {
            if let Some(module) = modules.get_mut(idx) {
                module.tick_complete(cycle);
            }
        }

        // Phase 2: bus grants — oldest issue first, lowest module on
        // ties; one grant per port.
        for _ in 0..cfg.ports() {
            let grant = active
                .iter()
                .filter_map(|&idx| {
                    modules
                        .get(idx)
                        .and_then(|m| m.output_ready().map(|r| (r, idx)))
                })
                .min();
            let Some((_, idx)) = grant else { break };
            let Some(req) = modules.get_mut(idx).and_then(MemModule::take_output) else {
                break;
            };
            let when = cycle + 1; // one-cycle bus
            let k = req.element as usize;
            let s = issued_stream.get(k).copied().unwrap_or(0) as usize;
            let elem = issued_elem.get(k).copied().unwrap_or(0) as usize;
            if let Some(stream) = streams.get_mut(s) {
                if let Some(slot) = stream.arrival.get_mut(elem) {
                    *slot = when;
                }
            }
            last_arrival = last_arrival.max(when);
            delivered += 1;
        }

        // Phase 3: work-conserving issue — scan streams from the
        // rotation pointer, skipping exhausted and blocked streams.
        for _ in 0..cfg.ports() {
            let mut issued_this_port = false;
            let mut first_pending: Option<usize> = None;
            for off in 0..plans.len() {
                let s = (rotation + off) % plans.len();
                let Some(entry) = plans[s].entries().get(cursors[s]) else {
                    continue;
                };
                if first_pending.is_none() {
                    first_pending = Some(s);
                }
                let midx = entry.module().get() as usize;
                let Some(module) = modules.get_mut(midx) else {
                    continue; // validated earlier; defensive
                };
                if !module.can_accept() {
                    continue;
                }
                let dense = issued_stream.len() as u64;
                module.accept(Request {
                    element: dense,
                    addr: entry.addr(),
                    module: entry.module(),
                    issue_cycle: cycle,
                });
                if let Err(pos) = active.binary_search(&midx) {
                    active.insert(pos, midx);
                }
                issued_stream.push(s as u32);
                issued_elem.push(entry.element());
                if let Some(first) = first_issue.get_mut(s) {
                    if *first == u64::MAX {
                        *first = cycle;
                    }
                }
                first_issue_any.get_or_insert(cycle);
                cursors[s] += 1;
                rotation = (s + 1) % plans.len();
                issued_this_port = true;
                break;
            }
            if !issued_this_port {
                if let Some(s) = first_pending {
                    // Every pending stream is blocked: a true stall,
                    // charged to the rotation head.
                    stall_total += 1;
                    if let Some(stream) = streams.get_mut(s) {
                        stream.stall_cycles += 1;
                    }
                }
                break;
            }
        }

        // Phase 4: service starts (+ per-stream conflict attribution).
        for &idx in active.iter() {
            let Some(module) = modules.get_mut(idx) else {
                continue;
            };
            let served_before = module.served();
            module.tick_start(cycle);
            if module.served() > served_before {
                if let Some(req) = module.in_service() {
                    if cycle > req.issue_cycle {
                        let k = req.element as usize;
                        let s = issued_stream.get(k).copied().unwrap_or(0) as usize;
                        if let Some(stream) = streams.get_mut(s) {
                            stream.conflicts += 1;
                        }
                    }
                }
            }
        }

        active.retain(|&idx| modules.get(idx).is_some_and(MemModule::is_active));
        cycle += 1;
    }

    for (stream, first) in streams.iter_mut().zip(&first_issue) {
        finalize_stream(
            stream,
            if *first == u64::MAX {
                None
            } else {
                Some(*first)
            },
        );
    }
    let conflicts = streams.iter().map(|s| s.conflicts).sum();
    MultiStats {
        streams,
        makespan: last_arrival - first_issue_any.unwrap_or(0) + 1,
        conflicts,
        stall_cycles: stall_total,
    }
}

/// Fresh zeroed per-stream stats, arrival buffers sized to the plans.
fn empty_streams(plans: &[&AccessPlan]) -> Vec<StreamStats> {
    plans
        .iter()
        .map(|p| StreamStats {
            elements: p.len(),
            arrival: vec![0; p.len() as usize],
            ..StreamStats::default()
        })
        .collect()
}

/// Derives `first_issue`, `latency` and `spread` from the filled
/// arrival buffer. An empty stream reports all three as `0` (the
/// regression the old stub got wrong: `last - first + 1` on default
/// zeros reported a spread of 1).
fn finalize_stream(stream: &mut StreamStats, first_issue: Option<u64>) {
    let Some(first_issue) = first_issue else {
        stream.first_issue = 0;
        stream.latency = 0;
        stream.spread = 0;
        return;
    };
    let first = stream.arrival.iter().copied().min().unwrap_or(0);
    let last = stream.arrival.iter().copied().max().unwrap_or(0);
    stream.first_issue = first_issue;
    stream.latency = last - first_issue + 1;
    stream.spread = last - first + 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfva_core::mapping::XorMatched;
    use cfva_core::plan::{Planner, Strategy};
    use cfva_core::VectorSpec;

    fn cf_plan(base: u64, stride: i64) -> AccessPlan {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let vec = VectorSpec::new(base, stride, 128).unwrap();
        planner.plan(&vec, Strategy::ConflictFree).unwrap()
    }

    fn fast(cfg: MemConfig) -> MemConfig {
        cfg.with_engine(Engine::FastPath)
    }

    #[test]
    fn single_stream_reduces_to_run_plan() {
        let plan = cf_plan(16, 12);
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_interleaved(cfg, &[&plan]).unwrap();
        assert_eq!(multi.streams.len(), 1);
        assert_eq!(multi.makespan, 8 + 128 + 1);
        assert_eq!(multi.conflicts, 0);
        assert_eq!(multi.streams[0].latency, 8 + 128 + 1);
        assert_eq!(multi.streams[0].first_issue, 0);
    }

    #[test]
    fn two_streams_beat_sequential_execution() {
        let a = cf_plan(16, 12);
        let b = cf_plan(4096, 24);
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_interleaved(cfg, &[&a, &b]).unwrap();
        let sequential = MultiStats::sequential_baseline(&[137, 137]);
        assert!(
            multi.makespan < sequential,
            "makespan {} not better than sequential {}",
            multi.makespan,
            sequential
        );
        for s in &multi.streams {
            assert_eq!(s.elements, 128);
            assert!(s.arrival.iter().all(|&a| a > 0));
            assert!(s.latency >= s.spread);
        }
    }

    #[test]
    fn uneven_stream_lengths_complete() {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let a = planner
            .plan(&VectorSpec::new(0, 8, 128).unwrap(), Strategy::ConflictFree)
            .unwrap();
        let b = planner
            .plan(&VectorSpec::new(9999, 16, 32).unwrap(), Strategy::Canonical)
            .unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_interleaved(cfg, &[&a, &b]).unwrap();
        assert_eq!(multi.streams[0].elements, 128);
        assert_eq!(multi.streams[1].elements, 32);
        assert!(multi.makespan >= 160);
    }

    #[test]
    fn four_streams_complete() {
        let plans: Vec<AccessPlan> = (0..4).map(|i| cf_plan(10_000 * i + 3, 8)).collect();
        let refs: Vec<&AccessPlan> = plans.iter().collect();
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_interleaved(cfg, &refs).unwrap();
        assert_eq!(multi.streams.len(), 4);
        assert!(multi.makespan >= 512);
    }

    #[test]
    fn empty_stream_reports_zero_spread_and_latency() {
        // Regression: the old stub reported spread = 1 for an empty
        // stream (`last - first + 1` on unwrap_or(0) defaults).
        let empty = AccessPlan::default();
        let plan = cf_plan(16, 12);
        let cfg = MemConfig::new(3, 3).unwrap();
        for policy in [
            IssuePolicy::RoundRobin,
            IssuePolicy::Priority,
            IssuePolicy::WorkConserving,
        ] {
            let multi = run_multi(cfg, &[&empty, &plan], policy).unwrap();
            assert_eq!(multi.streams[0].elements, 0);
            assert_eq!(multi.streams[0].spread, 0, "{policy}");
            assert_eq!(multi.streams[0].latency, 0, "{policy}");
            assert_eq!(multi.streams[0].first_issue, 0, "{policy}");
            assert!(multi.streams[1].spread > 0, "{policy}");
        }
        // All-empty runs are well-defined too.
        let multi = run_multi(cfg, &[&empty], IssuePolicy::RoundRobin).unwrap();
        assert_eq!(multi.makespan, 0);
        assert_eq!(multi.streams[0].spread, 0);
    }

    #[test]
    fn out_of_range_module_is_a_typed_error() {
        let plan = cf_plan(16, 12); // 8-module plan
        let cfg = MemConfig::new(2, 2).unwrap(); // 4-module memory
        let err = run_interleaved(cfg, &[&plan]).unwrap_err();
        assert!(
            matches!(err, ConfigError::OutOfRange { what: "module", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn oversized_stream_count_is_a_typed_error() {
        let plan = AccessPlan::default();
        let plans: Vec<&AccessPlan> = (0..(1 << 15)).map(|_| &plan).collect();
        let cfg = MemConfig::new(3, 3).unwrap();
        let err = run_interleaved(cfg, &plans).unwrap_err();
        assert!(
            matches!(
                err,
                ConfigError::OutOfRange {
                    what: "streams",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn priority_policy_orders_streams_back_to_back() {
        let a = cf_plan(16, 12);
        let b = cf_plan(4096, 24);
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_multi(cfg, &[&a, &b], IssuePolicy::Priority).unwrap();
        // Stream 0 issues its whole plan first, so its stats match a
        // solo run; stream 1 starts 128 cycles later.
        assert_eq!(multi.streams[0].first_issue, 0);
        assert_eq!(multi.streams[0].latency, 137);
        assert_eq!(multi.streams[1].first_issue, 128);
        // Drain overlap: the combined run still beats sequential.
        assert!(multi.makespan < 137 * 2);
    }

    #[test]
    fn work_conserving_skips_blocked_streams() {
        // Stream A hammers one module (stride 0 ⇒ same address); stream
        // B is conflict free. Round-robin head-of-line blocks B behind
        // A's stalls; work-conserving issues B's requests while A waits.
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let a = planner
            .plan(
                &VectorSpec::new(3, 1 << 7, 64).unwrap(),
                Strategy::Canonical,
            )
            .unwrap();
        let b = cf_plan(16, 12);
        let cfg = MemConfig::new(3, 3).unwrap();
        let rr = run_multi(cfg, &[&a, &b], IssuePolicy::RoundRobin).unwrap();
        let wc = run_multi(cfg, &[&a, &b], IssuePolicy::WorkConserving).unwrap();
        assert!(
            wc.streams[1].latency < rr.streams[1].latency,
            "work-conserving {} !< round-robin {}",
            wc.streams[1].latency,
            rr.streams[1].latency
        );
        // The clustered stream bears the brunt of the queueing it
        // causes; the conflict-free stream only collides where its
        // rotation crosses the hammered module.
        assert!(wc.streams[0].conflicts > 0);
        assert!(wc.streams[0].conflicts > wc.streams[1].conflicts);
    }

    #[test]
    fn per_stream_totals_add_up() {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let a = planner
            .plan(&VectorSpec::new(0, 8, 96).unwrap(), Strategy::Canonical)
            .unwrap();
        let b = planner
            .plan(&VectorSpec::new(5, 8, 96).unwrap(), Strategy::Canonical)
            .unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        for policy in [
            IssuePolicy::RoundRobin,
            IssuePolicy::Priority,
            IssuePolicy::WorkConserving,
        ] {
            let multi = run_multi(cfg, &[&a, &b], policy).unwrap();
            assert_eq!(
                multi.conflicts,
                multi.streams.iter().map(|s| s.conflicts).sum::<u64>(),
                "{policy}"
            );
            assert_eq!(
                multi.stall_cycles,
                multi.streams.iter().map(|s| s.stall_cycles).sum::<u64>(),
                "{policy}"
            );
        }
    }

    #[test]
    fn fast_path_matches_cycle_oracle_on_conflicted_and_free_streams() {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let free_a = cf_plan(16, 12);
        let free_b = cf_plan(4096, 24);
        let clustered = planner
            .plan(
                &VectorSpec::new(0, 1 << 7, 48).unwrap(),
                Strategy::Canonical,
            )
            .unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        for policy in [IssuePolicy::RoundRobin, IssuePolicy::Priority] {
            for plans in [vec![&free_a, &free_b], vec![&free_a, &clustered]] {
                let oracle = run_multi(cfg, &plans, policy).unwrap();
                let fast_path = run_multi(fast(cfg), &plans, policy).unwrap();
                assert_eq!(oracle, fast_path, "{policy}");
            }
        }
    }
}
