//! Multi-vector access: several plans sharing one memory — the paper's
//! Section 6 future-work item ("the case in which several vectors are
//! accessed simultaneously").
//!
//! The model keeps the paper's single address bus (one request per
//! cycle) and single return bus: streams interleave their requests
//! round-robin, so each stream issues at `1/k` rate but their startups
//! and drain phases overlap. Cross-stream conflicts can appear even
//! when each stream is conflict free alone — quantifying that is
//! exactly the open question the authors pose.

use cfva_core::plan::AccessPlan;
use cfva_core::{Addr, ModuleId};

use crate::config::MemConfig;
use crate::system::MemorySystem;

/// Per-stream measurements of a multi-vector run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiStats {
    /// Per-stream views: element arrival cycles and latency from the
    /// stream's first arrival-implied issue to its last arrival.
    pub streams: Vec<StreamStats>,
    /// Cycles from the first issue of any stream to the last arrival of
    /// any stream (the combined access time).
    pub makespan: u64,
    /// Conflicts across the whole combined run.
    pub conflicts: u64,
    /// Processor stalls across the whole combined run.
    pub stall_cycles: u64,
}

/// One stream's share of a multi-vector run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of elements in the stream.
    pub elements: u64,
    /// Arrival cycle of each element, indexed by element id.
    pub arrival: Vec<u64>,
    /// Cycles from the stream's first to last arrival, inclusive.
    pub spread: u64,
}

impl MultiStats {
    /// Sequential-execution baseline: the makespan if the same plans ran
    /// one after another, each at its measured-alone latency.
    pub fn sequential_baseline(latencies: &[u64]) -> u64 {
        latencies.iter().sum()
    }
}

/// Runs several plans through one memory with round-robin issue.
///
/// Each cycle the processor issues the next request of the next
/// non-exhausted stream in rotation; the single-bus constraint (one
/// request per cycle in, one element per cycle out) is preserved.
///
/// # Panics
///
/// Panics if any plan targets a module outside the memory's range, or
/// on more than `2^15` streams / `2^40` elements per stream.
pub fn run_interleaved(cfg: MemConfig, plans: &[&AccessPlan]) -> MultiStats {
    const STREAM_SHIFT: u32 = 40;
    assert!(plans.len() < 1 << 15, "too many streams");
    for p in plans {
        assert!(p.len() < 1 << STREAM_SHIFT, "plan too long");
    }

    // Round-robin merge, tagging element ids with their stream.
    let total: usize = plans.iter().map(|p| p.entries().len()).sum();
    let mut merged: Vec<(u64, Addr, ModuleId)> = Vec::with_capacity(total);
    let mut cursors = vec![0usize; plans.len()];
    let mut turn = 0usize;
    while merged.len() < total {
        let s = turn % plans.len();
        turn += 1;
        if cursors[s] >= plans[s].entries().len() {
            continue;
        }
        // cfva-lint: allow(L002, reason = "s = turn % plans.len() is in range and the cursor was bounds-checked against the stream length just above")
        let entry = &plans[s].entries()[cursors[s]];
        merged.push((
            ((s as u64) << STREAM_SHIFT) | entry.element(),
            entry.addr(),
            entry.module(),
        ));
        cursors[s] += 1;
    }

    // Dense ids for the engine, with a side table back to streams.
    let dense: Vec<(u64, Addr, ModuleId)> = merged
        .iter()
        .enumerate()
        .map(|(k, &(_, addr, module))| (k as u64, addr, module))
        .collect();
    let mut sim = MemorySystem::new(cfg);
    let combined = sim.run_requests(&dense);

    // De-multiplex arrivals.
    let mut streams: Vec<StreamStats> = plans
        .iter()
        .map(|p| StreamStats {
            elements: p.len(),
            arrival: vec![0; p.len() as usize],
            spread: 0,
        })
        .collect();
    for (k, &(tagged, _, _)) in merged.iter().enumerate() {
        let s = (tagged >> STREAM_SHIFT) as usize;
        let element = (tagged & ((1 << STREAM_SHIFT) - 1)) as usize;
        streams[s].arrival[element] = combined.arrival[k];
    }
    for s in &mut streams {
        let first = s.arrival.iter().copied().min().unwrap_or(0);
        let last = s.arrival.iter().copied().max().unwrap_or(0);
        s.spread = last - first + 1;
    }

    MultiStats {
        streams,
        makespan: combined.latency,
        conflicts: combined.conflicts,
        stall_cycles: combined.stall_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfva_core::mapping::XorMatched;
    use cfva_core::plan::{Planner, Strategy};
    use cfva_core::VectorSpec;

    fn cf_plan(base: u64, stride: i64) -> AccessPlan {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let vec = VectorSpec::new(base, stride, 128).unwrap();
        planner.plan(&vec, Strategy::ConflictFree).unwrap()
    }

    #[test]
    fn single_stream_reduces_to_run_plan() {
        let plan = cf_plan(16, 12);
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_interleaved(cfg, &[&plan]);
        assert_eq!(multi.streams.len(), 1);
        assert_eq!(multi.makespan, 8 + 128 + 1);
        assert_eq!(multi.conflicts, 0);
    }

    #[test]
    fn two_streams_beat_sequential_execution() {
        let a = cf_plan(16, 12);
        let b = cf_plan(4096, 24);
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_interleaved(cfg, &[&a, &b]);
        let sequential = MultiStats::sequential_baseline(&[137, 137]);
        assert!(
            multi.makespan < sequential,
            "makespan {} not better than sequential {}",
            multi.makespan,
            sequential
        );
        for s in &multi.streams {
            assert_eq!(s.elements, 128);
            assert!(s.arrival.iter().all(|&a| a > 0));
        }
    }

    #[test]
    fn uneven_stream_lengths_complete() {
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let a = planner
            .plan(&VectorSpec::new(0, 8, 128).unwrap(), Strategy::ConflictFree)
            .unwrap();
        let b = planner
            .plan(&VectorSpec::new(9999, 16, 32).unwrap(), Strategy::Canonical)
            .unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_interleaved(cfg, &[&a, &b]);
        assert_eq!(multi.streams[0].elements, 128);
        assert_eq!(multi.streams[1].elements, 32);
        assert!(multi.makespan >= 160);
    }

    #[test]
    fn four_streams_complete() {
        let plans: Vec<AccessPlan> = (0..4).map(|i| cf_plan(10_000 * i + 3, 8)).collect();
        let refs: Vec<&AccessPlan> = plans.iter().collect();
        let cfg = MemConfig::new(3, 3).unwrap();
        let multi = run_interleaved(cfg, &refs);
        assert_eq!(multi.streams.len(), 4);
        assert!(multi.makespan >= 512);
    }
}
