//! One memory module: service stage plus bounded input/output queues.

use std::collections::VecDeque;

use crate::system::Request;

/// A single memory module.
///
/// Pipeline: `input queue (q) → service (T cycles) → output queue (q')`.
/// A module accepts one request into service per `T` cycles; when its
/// output queue is full at completion time the finished request blocks
/// the service stage (back-pressure), exactly like a real bank whose
/// read latch has not been drained.
#[derive(Debug, Clone)]
pub struct MemModule {
    t_cycles: u64,
    q_in_cap: usize,
    q_out_cap: usize,
    in_q: VecDeque<Request>,
    /// Request in service and the cycle its service completes.
    service: Option<(Request, u64)>,
    out_q: VecDeque<Request>,
    // Statistics.
    busy_cycles: u64,
    served: u64,
    queued_conflicts: u64,
    max_in_q: usize,
}

impl MemModule {
    /// Creates an idle module with the given service time and queue
    /// capacities.
    pub fn new(t_cycles: u64, q_in_cap: usize, q_out_cap: usize) -> Self {
        MemModule {
            t_cycles,
            q_in_cap,
            q_out_cap,
            in_q: VecDeque::with_capacity(q_in_cap),
            service: None,
            out_q: VecDeque::with_capacity(q_out_cap),
            busy_cycles: 0,
            served: 0,
            queued_conflicts: 0,
            max_in_q: 0,
        }
    }

    /// Returns the module to its just-constructed idle state, keeping
    /// the queue allocations for reuse (the batch-runner hot path resets
    /// a long-lived module array instead of reallocating it).
    pub fn reset(&mut self) {
        self.in_q.clear();
        self.service = None;
        self.out_q.clear();
        self.busy_cycles = 0;
        self.served = 0;
        self.queued_conflicts = 0;
        self.max_in_q = 0;
    }

    /// Whether the input queue can accept another request.
    pub fn can_accept(&self) -> bool {
        self.in_q.len() < self.q_in_cap
    }

    /// Enqueues a request into the input buffer.
    ///
    /// # Panics
    ///
    /// Panics if the input queue is full; callers check
    /// [`can_accept`](Self::can_accept) first (the processor stalls
    /// instead of overflowing the buffer).
    pub fn accept(&mut self, req: Request) {
        assert!(self.can_accept(), "input queue overflow");
        self.in_q.push_back(req);
        self.max_in_q = self.max_in_q.max(self.in_q.len());
    }

    /// Phase 1 of a cycle: completes the in-service request if its time
    /// has come and the output queue has space.
    pub fn tick_complete(&mut self, cycle: u64) {
        if let Some((req, ready_at)) = self.service {
            if cycle >= ready_at && self.out_q.len() < self.q_out_cap {
                self.out_q.push_back(req);
                self.service = None;
            }
        }
    }

    /// Phase 3 of a cycle: starts serving the next queued request if the
    /// service stage is free.
    pub fn tick_start(&mut self, cycle: u64) {
        if self.service.is_none() {
            if let Some(req) = self.in_q.pop_front() {
                if cycle > req.issue_cycle {
                    self.queued_conflicts += 1;
                }
                self.service = Some((req, cycle + self.t_cycles));
                self.busy_cycles += self.t_cycles;
                self.served += 1;
            }
        }
    }

    /// Completion cycle of the oldest finished request waiting on the
    /// return bus, if any.
    pub fn output_ready(&self) -> Option<u64> {
        self.out_q.front().map(|r| r.issue_cycle)
    }

    /// Whether the output queue holds at least one finished request.
    pub fn has_output(&self) -> bool {
        !self.out_q.is_empty()
    }

    /// The oldest finished request waiting on the bus, if any.
    pub fn output_front(&self) -> Option<&Request> {
        self.out_q.front()
    }

    /// The request currently in service, if any.
    pub fn in_service(&self) -> Option<&Request> {
        self.service.as_ref().map(|(req, _)| req)
    }

    /// The cycle the in-service request finishes (the completion may
    /// still be deferred past it by output-buffer back-pressure), if a
    /// request is in service. The event engine keys its completion
    /// queue on this.
    pub fn service_ready_at(&self) -> Option<u64> {
        self.service.as_ref().map(|&(_, ready_at)| ready_at)
    }

    /// Removes and returns the oldest finished request (bus grant).
    pub fn take_output(&mut self) -> Option<Request> {
        self.out_q.pop_front()
    }

    /// The queued input requests, oldest first (periodic-engine state
    /// signatures).
    pub(crate) fn input_queue(&self) -> &VecDeque<Request> {
        &self.in_q
    }

    /// The finished requests waiting on the bus, oldest first
    /// (periodic-engine state signatures).
    pub(crate) fn output_queue(&self) -> &VecDeque<Request> {
        &self.out_q
    }

    /// The request in service and its completion cycle (periodic-engine
    /// state signatures).
    pub(crate) fn service_slot(&self) -> Option<(&Request, u64)> {
        self.service.as_ref().map(|(req, ready)| (req, *ready))
    }

    /// Fast-forwards the module over extrapolated steady-state periods:
    /// shifts every held request (and the service completion) `dt`
    /// cycles into the future and lets `remap` rewrite each request to
    /// its counterpart later in the stream. Counters are advanced
    /// separately via [`add_counters`](Self::add_counters).
    pub(crate) fn shift_queues(&mut self, dt: u64, mut remap: impl FnMut(&mut Request)) {
        for req in &mut self.in_q {
            req.issue_cycle += dt;
            remap(req);
        }
        if let Some((req, ready)) = &mut self.service {
            req.issue_cycle += dt;
            *ready += dt;
            remap(req);
        }
        for req in &mut self.out_q {
            req.issue_cycle += dt;
            remap(req);
        }
    }

    /// Adds the statistics contribution of extrapolated steady-state
    /// periods (periodic engine).
    pub(crate) fn add_counters(&mut self, busy: u64, conflicts: u64) {
        self.busy_cycles += busy;
        self.queued_conflicts += conflicts;
    }

    /// Whether the module still holds work (queued, in service, or
    /// waiting on the bus).
    pub fn is_active(&self) -> bool {
        !self.in_q.is_empty() || self.service.is_some() || !self.out_q.is_empty()
    }

    /// Total cycles the service stage was occupied.
    pub const fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Requests served by this module.
    pub const fn served(&self) -> u64 {
        self.served
    }

    /// Requests that had to wait in the input queue before service — the
    /// simulator's per-module conflict count.
    pub const fn queued_conflicts(&self) -> u64 {
        self.queued_conflicts
    }

    /// Highest input-queue occupancy observed.
    pub const fn max_in_q(&self) -> usize {
        self.max_in_q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfva_core::{Addr, ModuleId};

    fn req(element: u64, cycle: u64) -> Request {
        Request {
            element,
            addr: Addr::new(element),
            module: ModuleId::new(0),
            issue_cycle: cycle,
        }
    }

    #[test]
    fn service_takes_t_cycles() {
        let mut m = MemModule::new(4, 1, 1);
        m.accept(req(0, 0));
        m.tick_complete(0);
        m.tick_start(0); // service 0..4
        for c in 1..4 {
            m.tick_complete(c);
            assert!(!m.has_output(), "not done at cycle {c}");
            m.tick_start(c);
        }
        m.tick_complete(4);
        assert!(m.has_output());
        assert_eq!(m.take_output().unwrap().element, 0);
    }

    #[test]
    fn back_to_back_service() {
        let mut m = MemModule::new(2, 2, 2);
        m.accept(req(0, 0));
        m.tick_complete(0);
        m.tick_start(0);
        m.accept(req(1, 1));
        // Cycle 2: first completes, second starts immediately.
        m.tick_complete(2);
        m.tick_start(2);
        assert!(m.has_output());
        m.tick_complete(4);
        m.take_output();
        assert!(m.has_output());
        assert_eq!(m.take_output().unwrap().element, 1);
        assert_eq!(m.served(), 2);
        assert_eq!(m.busy_cycles(), 4);
    }

    #[test]
    fn queued_request_counts_as_conflict() {
        let mut m = MemModule::new(4, 2, 2);
        m.accept(req(0, 0));
        m.tick_complete(0);
        m.tick_start(0);
        m.accept(req(1, 1)); // arrives while busy
        for c in 1..=4 {
            m.tick_complete(c);
            m.tick_start(c);
        }
        // Request 1 started at cycle 4 > issue 1: one conflict.
        assert_eq!(m.queued_conflicts(), 1);
    }

    #[test]
    fn output_backpressure_blocks_service() {
        let mut m = MemModule::new(2, 2, 1);
        m.accept(req(0, 0));
        m.tick_complete(0);
        m.tick_start(0);
        m.accept(req(1, 0));
        // Cycle 2: 0 completes into out_q; 1 starts.
        m.tick_complete(2);
        m.tick_start(2);
        // Cycle 4: 1 wants to complete but out_q still holds 0.
        m.tick_complete(4);
        m.tick_start(4);
        assert_eq!(m.out_q.len(), 1);
        assert!(m.service.is_some(), "service stage blocked, not freed");
        // Drain the bus, then completion proceeds.
        m.take_output();
        m.tick_complete(5);
        assert!(m.has_output());
        assert_eq!(m.take_output().unwrap().element, 1);
    }

    #[test]
    fn can_accept_respects_capacity() {
        let mut m = MemModule::new(4, 1, 1);
        assert!(m.can_accept());
        m.accept(req(0, 0));
        assert!(!m.can_accept());
        assert!(m.is_active());
        assert_eq!(m.max_in_q(), 1);
    }

    #[test]
    #[should_panic(expected = "input queue overflow")]
    fn overflow_panics() {
        let mut m = MemModule::new(4, 1, 1);
        m.accept(req(0, 0));
        m.accept(req(1, 0));
    }
}
