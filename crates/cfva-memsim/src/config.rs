//! Memory-system configuration.

use std::fmt;

use cfva_core::ConfigError;

use crate::event::Engine;

/// Configuration of a simulated multi-module memory (paper Figure 2).
///
/// Defaults: one input buffer and one output buffer per module — the
/// bufferless organisation the conflict-free scheme is designed for.
/// The Section 3.1 evaluation uses `q = 2, q' = 1` (see
/// [`with_queues`](MemConfig::with_queues)).
///
/// # Examples
///
/// ```
/// use cfva_memsim::MemConfig;
///
/// let cfg = MemConfig::new(3, 3)?; // M = 8 modules, T = 8 cycles
/// assert_eq!(cfg.module_count(), 8);
/// assert_eq!(cfg.t_cycles(), 8);
///
/// let buffered = MemConfig::new(3, 3)?.with_queues(2, 1)?;
/// assert_eq!(buffered.q_in(), 2);
/// # Ok::<(), cfva_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemConfig {
    m: u32,
    t: u32,
    q_in: usize,
    q_out: usize,
    ports: usize,
    engine: Engine,
}

impl MemConfig {
    /// Creates a configuration with `2^m` modules of latency `2^t`
    /// cycles, one input and one output buffer per module.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] if `m > 20` or `t > 20`
    /// (a million modules is beyond any sensible simulation).
    pub fn new(m: u32, t: u32) -> Result<Self, ConfigError> {
        if m > 20 {
            return Err(ConfigError::OutOfRange {
                what: "m",
                value: m as u64,
                constraint: "m <= 20",
            });
        }
        if t > 20 {
            return Err(ConfigError::OutOfRange {
                what: "t",
                value: t as u64,
                constraint: "t <= 20",
            });
        }
        Ok(MemConfig {
            m,
            t,
            q_in: 1,
            q_out: 1,
            ports: 1,
            engine: Engine::Cycle,
        })
    }

    /// The configuration matching a runtime map spec: `m` is the
    /// spec'd map's module-bit count and `t` its latency exponent
    /// (the XOR maps' own `t`; the spec's `t` key, default matched,
    /// for baselines) — the memory a
    /// [`Planner::from_spec`](cfva_core::plan::Planner::from_spec)
    /// planner expects to run against.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfva_memsim::MemConfig;
    ///
    /// let cfg = MemConfig::from_spec(&"xor-unmatched:t=3,s=4,y=9".parse()?)?;
    /// assert_eq!(cfg.module_count(), 64); // M = 2^{2t}
    /// assert_eq!(cfg.t_cycles(), 8);      // T = 2^t
    /// # Ok::<(), cfva_core::ConfigError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Spec resolution errors from the registry, plus this
    /// constructor's own `m`/`t` bounds.
    pub fn from_spec(spec: &cfva_core::mapping::MapSpec) -> Result<Self, ConfigError> {
        let planner = cfva_core::plan::Planner::from_spec(spec)?;
        MemConfig::new(planner.map().module_bits(), planner.t())
    }

    /// Selects the simulation [`Engine`] systems built from this
    /// configuration use. The default is [`Engine::Cycle`] — the
    /// per-cycle oracle every other engine is verified against.
    pub const fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The simulation engine selected for this configuration.
    pub const fn engine(&self) -> Engine {
        self.engine
    }

    /// Sets the per-module input and output buffer depths.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] if either depth is zero.
    pub fn with_queues(mut self, q_in: usize, q_out: usize) -> Result<Self, ConfigError> {
        if q_in == 0 {
            return Err(ConfigError::OutOfRange {
                what: "q_in",
                value: 0,
                constraint: "q_in >= 1",
            });
        }
        if q_out == 0 {
            return Err(ConfigError::OutOfRange {
                what: "q_out",
                value: 0,
                constraint: "q_out >= 1",
            });
        }
        self.q_in = q_in;
        self.q_out = q_out;
        Ok(self)
    }

    /// Module-count exponent `m`.
    pub const fn m(&self) -> u32 {
        self.m
    }

    /// Latency exponent `t`.
    pub const fn t(&self) -> u32 {
        self.t
    }

    /// Number of modules, `M = 2^m`.
    pub const fn module_count(&self) -> u64 {
        1 << self.m
    }

    /// Module service time in processor cycles, `T = 2^t`.
    pub const fn t_cycles(&self) -> u64 {
        1 << self.t
    }

    /// Sets the number of memory ports: up to `ports` requests issued
    /// and `ports` elements returned per cycle. The paper's model is
    /// single-ported; multi-port is its Section 6 future-work item
    /// ("a single processor with several memory ports").
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] if `ports` is zero or
    /// exceeds the module count.
    pub fn with_ports(mut self, ports: usize) -> Result<Self, ConfigError> {
        if ports == 0 || ports as u64 > self.module_count() {
            return Err(ConfigError::OutOfRange {
                what: "ports",
                value: ports as u64,
                constraint: "1 <= ports <= M",
            });
        }
        self.ports = ports;
        Ok(self)
    }

    /// Input-buffer depth per module.
    pub const fn q_in(&self) -> usize {
        self.q_in
    }

    /// Output-buffer depth per module.
    pub const fn q_out(&self) -> usize {
        self.q_out
    }

    /// Number of memory ports (requests issued / elements returned per
    /// cycle).
    pub const fn ports(&self) -> usize {
        self.ports
    }

    /// Whether the memory is matched (`M = T`, i.e. `m = t`).
    pub const fn is_matched(&self) -> bool {
        self.m == self.t
    }
}

impl fmt::Display for MemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory M={} T={} q={} q'={}",
            self.module_count(),
            self.t_cycles(),
            self.q_in,
            self.q_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_buffers() {
        let cfg = MemConfig::new(3, 3).unwrap();
        assert_eq!(cfg.q_in(), 1);
        assert_eq!(cfg.q_out(), 1);
        assert!(cfg.is_matched());
    }

    #[test]
    fn unmatched_config() {
        let cfg = MemConfig::new(6, 3).unwrap();
        assert_eq!(cfg.module_count(), 64);
        assert_eq!(cfg.t_cycles(), 8);
        assert!(!cfg.is_matched());
    }

    #[test]
    fn queue_validation() {
        assert!(MemConfig::new(3, 3).unwrap().with_queues(0, 1).is_err());
        assert!(MemConfig::new(3, 3).unwrap().with_queues(1, 0).is_err());
        let cfg = MemConfig::new(3, 3).unwrap().with_queues(2, 1).unwrap();
        assert_eq!((cfg.q_in(), cfg.q_out()), (2, 1));
    }

    #[test]
    fn size_limits() {
        assert!(MemConfig::new(21, 3).is_err());
        assert!(MemConfig::new(3, 21).is_err());
        assert!(MemConfig::new(20, 20).is_ok());
    }

    #[test]
    fn display() {
        let cfg = MemConfig::new(3, 2).unwrap().with_queues(2, 1).unwrap();
        assert_eq!(cfg.to_string(), "memory M=8 T=4 q=2 q'=1");
    }

    #[test]
    fn engine_defaults_to_cycle_oracle() {
        let cfg = MemConfig::new(3, 3).unwrap();
        assert_eq!(cfg.engine(), Engine::Cycle);
        assert_eq!(cfg.with_engine(Engine::Event).engine(), Engine::Event);
        assert_eq!(cfg.with_engine(Engine::FastPath).engine(), Engine::FastPath);
    }

    #[test]
    fn from_spec_matches_planner_geometry() {
        // Baselines default to a matched memory...
        let cfg = MemConfig::from_spec(&"interleaved:m=3".parse().unwrap()).unwrap();
        assert_eq!((cfg.m(), cfg.t()), (3, 3));
        // ...unless the spec carries a latency rider.
        let cfg = MemConfig::from_spec(&"interleaved:m=3,t=6".parse().unwrap()).unwrap();
        assert_eq!((cfg.m(), cfg.t()), (3, 6));
        // The XOR maps' own t is the latency exponent.
        let cfg = MemConfig::from_spec(&"xor-matched:t=3,s=4".parse().unwrap()).unwrap();
        assert_eq!((cfg.m(), cfg.t()), (3, 3));
        let cfg = MemConfig::from_spec(&"xor-unmatched:t=3,s=4,y=9".parse().unwrap()).unwrap();
        assert_eq!((cfg.m(), cfg.t()), (6, 3));
        // Spec errors propagate with their diagnostics intact.
        let e = MemConfig::from_spec(&"interleavd:m=3".parse().unwrap()).unwrap_err();
        assert!(e.to_string().contains("interleaved"), "{e}");
    }

    #[test]
    fn port_validation() {
        let cfg = MemConfig::new(3, 3).unwrap();
        assert_eq!(cfg.ports(), 1);
        assert!(cfg.with_ports(0).is_err());
        assert!(cfg.with_ports(9).is_err()); // > M = 8
        assert_eq!(cfg.with_ports(4).unwrap().ports(), 4);
    }
}
