//! The closed-form steady-state estimator behind [`Engine::Analytic`].
//!
//! Long constant-stride streams settle into a steady state in which
//! every period of the module sequence replays the same events shifted
//! by a constant number of cycles (the observation the periodic
//! fast-forward engine exploits state-signature by state-signature).
//! This module derives the whole-stream aggregates from that property
//! **without simulating the stream**: it measures a handful of short
//! prefixes whose lengths are congruent to the full length modulo the
//! detected minimal period, confirms that the per-period deltas of
//! latency, stalls and conflicts are constant, and extrapolates the
//! remaining periods in closed form.
//!
//! * Prefix lengths share the full stream's residue `r = n mod P`, so
//!   every probe ends at the same point of the period and drains from
//!   a congruent boundary state — the tail cost is identical.
//! * Constant deltas across consecutive probe windows (checked for
//!   period spans 1, 2 and 3, catching multi-period beat patterns) are
//!   exactly the evidence the periodic engine accepts as a recurrence;
//!   when they hold the extrapolation is **exact**
//!   ([`AnalyticEstimate::exact`]) and bit-equal to the cycle oracle's
//!   aggregates — `tests/analytic.rs` asserts this across every spec in
//!   `Registry::builtin().all_specs()`.
//! * When the deltas refuse to settle the estimator falls back to a
//!   linear fit over the probes and reports `exact = false`.
//! * Streams too short to amortize probing (and multi-port or traced
//!   runs) are simply executed by the event engine — trivially exact.
//!
//! Unlike the four simulating engines, [`Engine::Analytic`] reports
//! **aggregates only**: the per-element arrival and per-module busy
//! vectors of the output [`AccessStats`] are left empty on the
//! extrapolated path (they are `O(n)` — materializing them would defeat
//! the point). Callers needing per-element data want a simulating
//! engine.

use cfva_core::plan::AccessPlan;
use cfva_core::{Addr, ModuleId};

use crate::periodic::minimal_period;
use crate::stats::AccessStats;
use crate::system::MemorySystem;

/// Number of prefix probes; spans up to 3 periods need at least 4
/// aligned probes each, and 7 consecutive probe indices contain every
/// residue class for all spans ≤ 3.
const PROBES: usize = 7;

/// A closed-form steady-state estimate of one access — the aggregates
/// of [`AccessStats`] plus the detected period and an exactness flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyticEstimate {
    /// Total latency in processor cycles (see [`AccessStats::latency`]).
    pub latency: u64,
    /// Number of elements in the access.
    pub elements: u64,
    /// Processor stall cycles (see [`AccessStats::stall_cycles`]).
    pub stall_cycles: u64,
    /// Queueing conflicts (see [`AccessStats::conflicts`]).
    pub conflicts: u64,
    /// Highest input-queue occupancy observed.
    pub max_in_q: usize,
    /// Minimal period of the stream's module sequence, in requests.
    pub period: u64,
    /// `true` when the estimate is provably equal to a full simulation
    /// (direct run, or constant per-period deltas confirmed across the
    /// probe window); `false` for the linear-fit fallback.
    pub exact: bool,
}

impl AnalyticEstimate {
    /// Elements delivered per cycle over the whole access — the
    /// steady-state throughput for long streams. Returns 0.0 for an
    /// empty access, never `NaN` or `inf`.
    pub fn throughput(&self) -> f64 {
        if self.elements == 0 || self.latency == 0 {
            return 0.0;
        }
        self.elements as f64 / self.latency as f64
    }

    /// Average cycles per element, the inverse of
    /// [`throughput`](Self::throughput) (0.0 for an empty access).
    pub fn cycles_per_element(&self) -> f64 {
        if self.elements == 0 {
            return 0.0;
        }
        self.latency as f64 / self.elements as f64
    }

    fn from_stats(stats: &AccessStats, period: u64) -> AnalyticEstimate {
        AnalyticEstimate {
            latency: stats.latency,
            elements: stats.elements,
            stall_cycles: stats.stall_cycles,
            conflicts: stats.conflicts,
            max_in_q: stats.max_in_q,
            period,
            exact: true,
        }
    }
}

/// The `(latency, stall_cycles, conflicts, max_in_q)` aggregates of one
/// probe run.
#[derive(Debug, Clone, Copy)]
struct Probe {
    latency: u64,
    stalls: u64,
    conflicts: u64,
    max_in_q: usize,
}

impl MemorySystem {
    /// Estimates the steady-state statistics of an access plan in
    /// closed form — the engine-independent entry point of
    /// [`Engine::Analytic`](crate::Engine::Analytic). See the
    /// [module docs](self) for when the estimate is exact.
    #[must_use = "an AnalyticEstimate is the estimator's only output; dropping it wastes the probe runs"]
    pub fn analytic_estimate(&mut self, plan: &AccessPlan) -> AnalyticEstimate {
        let entries = plan.entries();
        let mut scratch = AccessStats::default();
        self.run_analytic(
            entries.len(),
            &|k| {
                let e = &entries[k];
                (e.element(), e.addr(), e.module())
            },
            &mut scratch,
        )
    }

    /// The estimator core: probes short congruent prefixes with the
    /// event engine and extrapolates. Writes the estimated aggregates
    /// into `out` (per-element and per-module vectors cleared on the
    /// extrapolated path, fully populated on the direct path).
    pub(crate) fn run_analytic<F>(
        &mut self,
        n: usize,
        request: &F,
        out: &mut AccessStats,
    ) -> AnalyticEstimate
    where
        F: Fn(usize) -> (u64, Addr, ModuleId),
    {
        // Streams the probing machinery does not cover run directly:
        // multi-port issue (period boundaries are request-anchored),
        // tracing (the trace must stay bit-identical to the oracle's),
        // and anything too short for period detection.
        if self.trace.is_enabled() || self.cfg.ports() != 1 || n < 4 {
            self.run_event(n, request, out);
            return AnalyticEstimate::from_stats(out, n.max(1) as u64);
        }

        let mut fail = std::mem::take(&mut self.periodic.fail);
        let p = minimal_period(n, request, &mut fail);
        self.periodic.fail = fail;

        let n_u64 = n as u64;
        let r = n_u64 % p;
        // First probe index: clear of the startup transient (the same
        // allowance the periodic engine grants, converted to whole
        // periods), and at least 2 so every span-1 window is past the
        // first boundary.
        let transient =
            4 * (self.cfg.t_cycles() + (self.cfg.q_in() + self.cfg.q_out()) as u64) + 64;
        let c1 = 2u64.max(transient / p + 2);
        let longest = r + (c1 + PROBES as u64 - 1) * p;
        if longest >= n_u64 {
            // Probing would simulate as much as the real stream: run it.
            self.run_event(n, request, out);
            return AnalyticEstimate::from_stats(out, p);
        }

        // Probe runs use identity element ids: a prefix of a permuted
        // stream is not itself a permutation of its own length, and the
        // aggregates being estimated do not depend on element labels.
        let probe_request = |k: usize| {
            let (_, addr, module) = request(k);
            (k as u64, addr, module)
        };
        let mut probes = [Probe {
            latency: 0,
            stalls: 0,
            conflicts: 0,
            max_in_q: 0,
        }; PROBES];
        let mut scratch = AccessStats::default();
        for (j, probe) in probes.iter_mut().enumerate() {
            let len = (r + (c1 + j as u64) * p) as usize;
            self.run_event(len, &probe_request, &mut scratch);
            *probe = Probe {
                latency: scratch.latency,
                stalls: scratch.stall_cycles,
                conflicts: scratch.conflicts,
                max_in_q: scratch.max_in_q,
            };
        }

        let k_n = (n_u64 - r) / p; // whole periods in the full stream
        let steady = probes.iter().all(|pr| pr.max_in_q == probes[0].max_in_q);
        let estimate = if steady {
            (1u64..=3).find_map(|span| extrapolate(&probes, c1, span, k_n))
        } else {
            None
        };
        let estimate = estimate.unwrap_or_else(|| approximate(&probes, c1, k_n));

        out.latency = estimate.latency;
        out.elements = n_u64;
        out.stall_cycles = estimate.stall_cycles;
        out.conflicts = estimate.conflicts;
        out.max_in_q = estimate.max_in_q;
        out.arrival.clear();
        out.module_busy.clear();
        AnalyticEstimate {
            elements: n_u64,
            period: p,
            ..estimate
        }
    }
}

/// Exact extrapolation over a period span: if every consecutive
/// span-length window of probes shows identical deltas for latency,
/// stalls and conflicts, the stream is in steady state with that beat
/// and the aggregates at `k_n` periods follow in closed form from the
/// largest probe congruent to `k_n` modulo the span.
fn extrapolate(probes: &[Probe; PROBES], c1: u64, span: u64, k_n: u64) -> Option<AnalyticEstimate> {
    let s = span as usize;
    let delta = |f: fn(&Probe) -> u64| {
        let d = f(&probes[s]) - f(&probes[0]);
        probes
            .windows(s + 1)
            .all(|w| f(&w[s]) - f(&w[0]) == d)
            .then_some(d)
    };
    let (d_lat, d_stall, d_conf) = (
        delta(|p| p.latency)?,
        delta(|p| p.stalls)?,
        delta(|p| p.conflicts)?,
    );
    // The largest probe index congruent to k_n (mod span); PROBES (7)
    // consecutive indices cover every residue for span ≤ 3.
    let j = (0..PROBES)
        .rev()
        .find(|&j| (k_n as i128 - (c1 + j as u64) as i128).rem_euclid(span as i128) == 0)?;
    let c_star = c1 + j as u64;
    debug_assert!(k_n >= c_star, "probe lengths are bounded by the stream");
    let steps = (k_n - c_star) / span;
    let base = &probes[j];
    Some(AnalyticEstimate {
        latency: base.latency + steps * d_lat,
        elements: 0, // caller fills
        stall_cycles: base.stalls + steps * d_stall,
        conflicts: base.conflicts + steps * d_conf,
        max_in_q: base.max_in_q,
        period: 0, // caller fills
        exact: true,
    })
}

/// Linear-fit fallback when no span settles: per-period rates from the
/// probe endpoints, rounded to nearest — explicitly approximate.
fn approximate(probes: &[Probe; PROBES], c1: u64, k_n: u64) -> AnalyticEstimate {
    let first = &probes[0];
    // cfva-lint: allow(L002, reason = "probes is a fixed [Probe; PROBES] array, so PROBES - 1 is its last valid index")
    let last = &probes[PROBES - 1];
    let dc = (PROBES - 1) as u64;
    let c_last = c1 + dc;
    let fit = |a: u64, b: u64| {
        let rate_num = b - a; // monotone counters: b >= a
        b + (k_n.saturating_sub(c_last) * rate_num + dc / 2) / dc
    };
    AnalyticEstimate {
        latency: fit(first.latency, last.latency),
        elements: 0, // caller fills
        stall_cycles: fit(first.stalls, last.stalls),
        conflicts: fit(first.conflicts, last.conflicts),
        max_in_q: probes.iter().map(|p| p.max_in_q).max().unwrap_or(0),
        period: 0, // caller fills
        exact: false,
    }
}
