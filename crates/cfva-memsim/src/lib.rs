//! # cfva-memsim — cycle-accurate multi-module memory simulator
//!
//! The measurement substrate for the conflict-free vector access
//! reproduction: a discrete, cycle-accurate model of the memory system
//! of the paper's Figure 2 —
//!
//! * `M = 2^m` independent memory modules, each busy `T = 2^t` processor
//!   cycles per access;
//! * `q` input buffers and `q'` output buffers per module;
//! * a single return bus with a one-cycle delay;
//! * a processor that issues one request per cycle, stalling only when
//!   the target module's input buffer is full.
//!
//! The simulator executes an [`AccessPlan`](cfva_core::plan::AccessPlan)
//! and reports [`AccessStats`]: total latency, stalls, queueing
//! conflicts and per-module occupancy. For a conflict-free plan the
//! measured latency is exactly `T + L + 1` cycles (Section 2 of the
//! paper); the integration tests assert this across the whole Theorem 1
//! and Theorem 3 windows.
//!
//! Four interchangeable [`Engine`]s execute a request stream with
//! bit-identical results: the per-cycle loop (the oracle, default),
//! the event-queue engine of [`Engine::Event`] (conflicted accesses
//! collapse to completion events), the periodic steady-state
//! fast-forward engine of [`Engine::Periodic`] (whole periods of long
//! streams are extrapolated in closed form), and the verified
//! conflict-free fast path of [`Engine::FastPath`] (which falls back
//! through `Periodic` to `Event`). A fifth, [`Engine::Analytic`],
//! trades the per-element vectors for closed-form **aggregate**
//! estimates derived from a handful of short probe runs, reporting via
//! [`AnalyticEstimate::exact`] whether the estimate provably equals a
//! full simulation. See the `Engine` docs and the equivalence suites
//! under `tests/`.
//!
//! ## Example
//!
//! ```
//! use cfva_core::mapping::XorMatched;
//! use cfva_core::plan::{Planner, Strategy};
//! use cfva_core::VectorSpec;
//! use cfva_memsim::{MemConfig, MemorySystem};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let planner = Planner::matched(XorMatched::new(3, 3)?);
//! let vec = VectorSpec::new(16, 12, 64)?;
//! let plan = planner.plan(&vec, Strategy::ConflictFree)?;
//!
//! let mut sim = MemorySystem::new(MemConfig::new(3, 3)?);
//! let stats = sim.run_plan(&plan);
//! assert_eq!(stats.latency, 8 + 64 + 1); // T + L + 1
//! assert_eq!(stats.conflicts, 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod analytic;
mod config;
mod event;
mod module;
pub mod multi;
mod periodic;
mod stats;
mod system;
mod trace;

pub use analytic::AnalyticEstimate;
pub use config::MemConfig;
pub use event::Engine;
pub use module::MemModule;
pub use multi::{run_interleaved, run_multi, IssuePolicy, MultiStats, StreamStats};
pub use stats::AccessStats;
pub use system::{MemorySystem, Request};
pub use trace::{Event, Trace};
