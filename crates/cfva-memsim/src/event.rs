//! The event-queue engine: cycle-exact simulation without the
//! per-cycle scan.
//!
//! The per-cycle engine ([`MemorySystem::run_cycle`]) walks every
//! occupied module once per cycle, so a conflicted access — the
//! interesting regime of the paper, where requests queue behind one
//! module for `T` cycles at a time — costs `O(latency)` iterations
//! even though almost nothing happens in most of them. The engine in
//! this module instead advances time to the **next cycle at which the
//! system state can change**, keyed on three kinds of events:
//!
//! * **completion** — a module's service stage finishes (a priority
//!   queue of `(ready_cycle, module)` pairs, invalidated lazily);
//! * **bus grant** — some output buffer holds a datum, so the return
//!   bus is busy next cycle;
//! * **issue** — the processor's next request can enter its target
//!   module's input buffer next cycle.
//!
//! When none of the three is imminent, the only activity is the
//! processor stalling against a full input buffer while a service
//! runs — so the engine jumps straight to the next completion and
//! accounts the skipped stall cycles in closed form (emitting the
//! per-cycle `Stall` trace events only when tracing is on). At every
//! *processed* cycle it executes exactly the oracle's four phases over
//! the same module state, which is why its [`AccessStats`] and
//! [`Trace`](crate::Trace) output is **bit-identical** to the cycle
//! engine's — asserted across all seven `ModuleMap`s, queue depths and
//! pathological one-module strides by `tests/event_engine.rs` and the
//! engine-agreement property suite.

use std::cmp::Reverse;
use std::fmt;

use cfva_core::{Addr, ModuleId};

use crate::stats::AccessStats;
use crate::system::{MemorySystem, Request};
use crate::trace::Event;

/// Which simulation core executes a request stream.
///
/// The four simulating engines produce bit-identical [`AccessStats`]
/// and [`Trace`](crate::Trace) output; they differ only in cost. The
/// fifth, [`Analytic`](Engine::Analytic), is an **estimator**: its
/// aggregate statistics equal the oracle's whenever its steady-state
/// check holds (which it reports via
/// [`AnalyticEstimate::exact`](crate::AnalyticEstimate)), but it leaves
/// the per-element arrival and per-module busy vectors empty on the
/// extrapolated path.
///
/// | engine | cost | role |
/// |---|---|---|
/// | [`Cycle`](Engine::Cycle) | `O(latency · occupied modules)` | the oracle — reference semantics, default |
/// | [`Event`](Engine::Event) | `O(events)` | conflicted streams: queueing collapses to completion events |
/// | [`Periodic`](Engine::Periodic) | `O(P_x + transient)` simulated | long periodic streams: steady-state periods extrapolated in closed form (`periodic.rs`); degrades to `Event` behaviour when no recurrence is found |
/// | [`FastPath`](Engine::FastPath) | `O(requests)` | verified conflict-free shortcut, falls back to `Periodic` |
/// | [`Analytic`](Engine::Analytic) | `O(P_x + transient)` simulated | closed-form aggregate estimates from short congruent probes (`analytic.rs`); aggregates only |
///
/// Select an engine with [`MemConfig::with_engine`](crate::MemConfig::with_engine)
/// or [`MemorySystem::set_engine`]. The batch execution engine
/// (`cfva-bench::runner::BatchRunner`) defaults to `FastPath`, so each
/// access takes the cheapest proven path: the conflict-free shortcut,
/// then periodic fast-forward, then the plain event queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The per-cycle loop: every cycle runs the complete → bus → issue
    /// → start phases over the occupied modules. The slowest and the
    /// simplest — the oracle all verification compares against.
    #[default]
    Cycle,
    /// The event-queue engine of this module.
    Event,
    /// The steady-state fast-forward engine (`periodic.rs`): the event
    /// engine plus recurrence detection at period boundaries of the
    /// stream's module sequence; once the queue/occupancy state recurs,
    /// the remaining whole periods are extrapolated in closed form.
    /// Streams with no detectable recurrence (short vectors,
    /// queue-depth-limited transients, multi-port issue) run exactly as
    /// [`Engine::Event`].
    Periodic,
    /// One-pass conflict-free check yielding closed-form statistics
    /// when it holds (single port, tracing off); conflicted streams
    /// fall back to [`Engine::Periodic`] (which itself degrades to
    /// [`Engine::Event`]).
    FastPath,
    /// The analytic steady-state estimator (`analytic.rs`): aggregate
    /// statistics derived in closed form from a handful of short probe
    /// prefixes instead of simulating the stream. Exact whenever the
    /// steady-state check holds (use
    /// [`MemorySystem::analytic_estimate`] to see the flag); per-element
    /// arrival and per-module busy vectors are left **empty** on the
    /// extrapolated path. Multi-port, traced and short streams run as
    /// [`Engine::Event`].
    Analytic,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Cycle => "cycle",
            Engine::Event => "event",
            Engine::Periodic => "periodic",
            Engine::FastPath => "fast-path",
            Engine::Analytic => "analytic",
        })
    }
}

impl MemorySystem {
    /// The event-queue engine. Runs the oracle's four phases at every
    /// processed cycle and skips the provably idle stretches between
    /// them; statistics land in `out`, reusing its buffers.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_plan`](Self::run_plan).
    pub(crate) fn run_event<F>(&mut self, n: usize, request: &F, out: &mut AccessStats)
    where
        F: Fn(usize) -> (u64, Addr, ModuleId),
    {
        self.reset();
        let MemorySystem {
            cfg,
            modules,
            trace,
            active,
            completions,
            ..
        } = self;
        completions.clear();
        let n_u64 = n as u64;
        for k in 0..n {
            let (_, _, module) = request(k);
            assert!(
                module.get() < cfg.module_count(),
                "request targets module {} but memory has {}",
                module,
                cfg.module_count()
            );
        }

        out.arrival.clear();
        out.arrival.resize(n, u64::MAX);
        let arrival = &mut out.arrival;
        let mut delivered: u64 = 0;
        let mut next_request: usize = 0;
        let mut stall_cycles: u64 = 0;
        let mut first_issue: Option<u64> = None;
        let mut last_arrival: u64 = 0;

        let safety_bound = 1_000_000u64.max(n_u64 * cfg.t_cycles() * 4 + 10_000);
        let mut cycle: u64 = 0;
        while delivered < n_u64 {
            assert!(
                cycle < safety_bound,
                "simulation exceeded {safety_bound} cycles — engine bug"
            );

            // The four phases, verbatim from the cycle oracle.

            // Phase 1: service completions (ascending module order).
            for &idx in active.iter() {
                let module = &mut modules[idx];
                let in_service = module.in_service().map(|r| r.element);
                module.tick_complete(cycle);
                if let (Some(element), None) = (in_service, module.in_service()) {
                    trace.push(Event::Complete {
                        cycle,
                        module: ModuleId::new(idx as u64),
                        element,
                    });
                }
            }

            // Phase 2: bus grants — oldest issue first, lowest module on
            // ties; one grant per port.
            for _ in 0..cfg.ports() {
                let grant = active
                    .iter()
                    .filter_map(|&idx| modules[idx].output_ready().map(|ready| (ready, idx)))
                    .min();
                let Some((_, idx)) = grant else { break };
                let req = modules[idx]
                    .take_output()
                    // cfva-lint: allow(L002, reason = "idx came from the output_ready() filter on the same tick, so take_output() cannot be empty")
                    .expect("granted module has output");
                let when = cycle + 1; // one-cycle bus
                arrival[req.element as usize] = when;
                last_arrival = last_arrival.max(when);
                delivered += 1;
                trace.push(Event::Deliver {
                    cycle: when,
                    element: req.element,
                });
            }

            // Phase 3: processor issue — one request per port, in-order
            // (a blocked request blocks the ports behind it).
            for _ in 0..cfg.ports() {
                if next_request >= n {
                    break;
                }
                let (element, addr, module) = request(next_request);
                let midx = module.get() as usize;
                if modules[midx].can_accept() {
                    modules[midx].accept(Request {
                        element,
                        addr,
                        module,
                        issue_cycle: cycle,
                    });
                    if let Err(pos) = active.binary_search(&midx) {
                        active.insert(pos, midx);
                    }
                    first_issue.get_or_insert(cycle);
                    next_request += 1;
                    trace.push(Event::Issue {
                        cycle,
                        element,
                        module,
                    });
                } else {
                    stall_cycles += 1;
                    trace.push(Event::Stall { cycle, module });
                    break;
                }
            }

            // Phase 4: service starts. Each start schedules a
            // completion event.
            for &idx in active.iter() {
                let module = &mut modules[idx];
                let serving_before = module.served();
                module.tick_start(cycle);
                if module.served() > serving_before {
                    let (element, ready_at) = module
                        .in_service()
                        .map(|r| r.element)
                        .zip(module.service_ready_at())
                        // cfva-lint: allow(L002, reason = "served() just increased, so the service stage holds a request with a ready time")
                        .expect("service stage just filled");
                    completions.push(Reverse((ready_at, idx)));
                    trace.push(Event::ServiceStart {
                        cycle,
                        module: ModuleId::new(idx as u64),
                        element,
                    });
                }
            }

            // Drop drained modules from the active set.
            active.retain(|&idx| modules[idx].is_active());

            // --- Scheduling: the next cycle anything can happen. ---
            //
            // Either of these means the very next cycle is live:
            //  * a datum waits on the return bus (phase 2 fires), or
            //  * the processor's next request fits its target's input
            //    buffer (phase 3 fires).
            if active.iter().any(|&idx| modules[idx].has_output()) || delivered >= n_u64 {
                cycle += 1;
                continue;
            }
            if next_request < n {
                let (_, _, module) = request(next_request);
                // cfva-lint: allow(L002, reason = "module_of returns an id < module_count by the ModuleMap contract, and modules is sized to module_count")
                if modules[module.get() as usize].can_accept() {
                    cycle += 1;
                    continue;
                }
            }

            // Otherwise the system is quiescent except for running
            // services (every output buffer is empty and, after phase
            // 4, any module with queued input is serving): jump to the
            // next completion. Cycles skipped over are pure stall
            // cycles when requests remain — account them in closed
            // form.
            let target = match next_completion(completions, modules) {
                Some(ready) => ready.max(cycle + 1),
                // No service running: nothing can unblock before the
                // next cycle (unreachable in practice — kept as a
                // defensive fallback rather than an assert).
                None => cycle + 1,
            };
            if next_request < n {
                let skipped = target - (cycle + 1);
                stall_cycles += skipped;
                if trace.is_enabled() && skipped > 0 {
                    let (_, _, module) = request(next_request);
                    for c in cycle + 1..target {
                        trace.push(Event::Stall { cycle: c, module });
                    }
                }
            }
            cycle = target;
        }

        let first = first_issue.unwrap_or(0);
        out.latency = last_arrival - first + 1;
        out.elements = n_u64;
        out.stall_cycles = stall_cycles;
        out.conflicts = modules.iter().map(|m| m.queued_conflicts()).sum();
        out.module_busy.clear();
        out.module_busy
            .extend(modules.iter().map(|m| m.busy_cycles()));
        out.max_in_q = modules.iter().map(|m| m.max_in_q()).max().unwrap_or(0);
    }
}

/// The earliest pending completion, discarding stale queue entries
/// (services that already completed) lazily. Valid entries are peeked,
/// not popped: the completion itself happens in phase 1 of the target
/// cycle, which invalidates the entry.
fn next_completion(
    completions: &mut std::collections::BinaryHeap<Reverse<(u64, usize)>>,
    modules: &[crate::module::MemModule],
) -> Option<u64> {
    while let Some(&Reverse((ready, idx))) = completions.peek() {
        if modules[idx].service_ready_at() == Some(ready) {
            return Some(ready);
        }
        completions.pop();
    }
    None
}
