//! The periodic steady-state fast-forward engine.
//!
//! The module sequence of any constant-stride vector is **periodic**
//! (Valero et al.'s central observation —
//! [`ModuleMap::period`](cfva_core::mapping::ModuleMap::period) gives
//! the closed form `P_x`). Once the memory system reaches steady state,
//! its entire queue/occupancy state at one period boundary is a
//! time-shifted copy of the state at the previous boundary, and every
//! later period replays the same events shifted by a constant number of
//! cycles. Simulating each of those periods — as even the event-queue
//! engine does — is redundant work.
//!
//! This engine runs the event engine for the startup transient, capturing
//! a **state signature** at each boundary of the stream's (minimal)
//! module-sequence period: per occupied module, the queued / in-service
//! / output requests encoded *relative* to the boundary (request index
//! minus the boundary request, cycles minus the boundary cycle). When a
//! signature recurs, the remaining `k` whole periods are **extrapolated
//! in closed form**:
//!
//! * per-element arrivals — each delivery in the reference window
//!   repeats `k` times, shifted by the period's request span and cycle
//!   span;
//! * stall cycles, per-module busy time and queueing conflicts — the
//!   reference window's deltas, times `k`;
//! * trace events (when tracing is on) — the reference window replayed
//!   `k` times with shifted cycles and remapped element ids,
//!
//! and the live machine state is fast-forwarded (queue contents remapped
//! to their stream counterparts `k` periods later, all clocks advanced)
//! so the ordinary event loop finishes the tail and the drain exactly as
//! the oracle would. Stats **and** traces are therefore bit-identical to
//! the cycle engine — asserted across all seven `ModuleMap`s by
//! `tests/periodic_engine.rs` and the engine-agreement property suite.
//!
//! When no recurrence is found within the detection budget (short
//! vectors, transients longer than the allowance, multi-port issue),
//! detection is abandoned and the run completes as a plain
//! [`Engine::Event`](crate::Engine::Event) simulation — the documented
//! fallback chain `FastPath → Periodic → Event`.

use std::cmp::Reverse;
use std::collections::VecDeque;

use cfva_core::{Addr, ModuleId};

use crate::module::MemModule;
use crate::stats::AccessStats;
use crate::system::{MemorySystem, Request};
use crate::trace::{Event, Trace};

/// Reusable buffers of the periodic engine, kept on the
/// [`MemorySystem`] so the `O(n)` working sets of repeated runs
/// through a long-lived system (the batch-runner hot path) are
/// allocated once. The per-boundary records themselves are small
/// (`O(occupied modules)`, at most a handful per run) and are built
/// fresh each detection.
#[derive(Debug, Default)]
pub(crate) struct PeriodicScratch {
    /// KMP failure function over the module sequence (shared with the
    /// analytic estimator, which detects periods the same way).
    pub(crate) fail: Vec<usize>,
    /// element id → request index (the streams the engine accepts carry
    /// a permutation of `0..n` as element ids).
    elem_to_req: Vec<u64>,
    /// Delivery log while detection is active: `(request index, arrival
    /// cycle)` in delivery order.
    deliveries: Vec<(u64, u64)>,
}

/// One module's slot in a boundary state signature, in *relative*
/// coordinates: request indices relative to the boundary request,
/// cycles relative to the boundary cycle. Two boundaries with equal
/// signatures evolve identically (shifted) from there on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SigEntry {
    /// Start of one occupied module's slots.
    Module(usize),
    /// A queued input request.
    InQ { req: i64, issued: i64 },
    /// The in-service request and its completion cycle.
    Service { req: i64, issued: i64, ready: i64 },
    /// A finished request waiting on the return bus.
    OutQ { req: i64, issued: i64 },
}

/// Everything recorded at one period boundary.
#[derive(Debug)]
struct BoundaryRec {
    /// `next_request` at capture (a multiple of the period).
    req: u64,
    /// The cycle whose processing ended at this boundary.
    cycle: u64,
    stall_cycles: u64,
    delivered: u64,
    /// Length of the delivery log at capture.
    log_pos: usize,
    /// Length of the trace at capture.
    trace_pos: usize,
    /// `(busy_cycles, queued_conflicts)` per period module, aligned
    /// with `Detection::period_modules`.
    module_stats: Vec<(u64, u64)>,
    sig: Vec<SigEntry>,
}

/// Live state of the recurrence detector.
struct Detection {
    /// Minimal period of the stream's module sequence, in requests.
    p: u64,
    /// `next_request` value to capture the next signature at.
    next_boundary: u64,
    /// Give up once the next boundary would exceed this (transient too
    /// long, or too little stream left to profit).
    limit: u64,
    /// Sorted distinct modules of one period — the only modules whose
    /// counters can change once the stream is underway.
    period_modules: Vec<usize>,
    /// Recent boundary records; a new signature is compared against all
    /// of them, so recurrences spanning several periods (beat patterns)
    /// are caught too.
    ring: VecDeque<BoundaryRec>,
}

/// How many recent boundaries a new signature is compared against.
const SIGNATURE_RING: usize = 4;

/// Minimal period of the module sequence `request(0..n).module` — the
/// standard KMP border argument: `n - fail[n-1]` satisfies
/// `module(k) == module(k + p)` for every valid `k`, even when `p` does
/// not divide `n`.
pub(crate) fn minimal_period<F>(n: usize, request: &F, fail: &mut Vec<usize>) -> u64
where
    F: Fn(usize) -> (u64, Addr, ModuleId),
{
    let module = |k: usize| request(k).2;
    fail.clear();
    fail.resize(n, 0);
    let mut len = 0usize;
    for i in 1..n {
        let mi = module(i);
        while len > 0 && mi != module(len) {
            // cfva-lint: allow(L002, reason = "the loop condition len > 0 bounds len - 1 below the table length")
            len = fail[len - 1];
        }
        if mi == module(len) {
            len += 1;
        }
        fail[i] = len;
    }
    // cfva-lint: allow(L002, reason = "the KMP table has n >= 1 entries (the loop above filled fail[0..n]), so n - 1 is in range")
    (n - fail[n - 1]) as u64
}

/// Captures the relative state signature and counters at a boundary.
#[allow(clippy::too_many_arguments)]
fn capture_boundary(
    det: &Detection,
    elem_to_req: &[u64],
    modules: &[MemModule],
    active: &[usize],
    trace: &Trace,
    req: u64,
    cycle: u64,
    stall_cycles: u64,
    delivered: u64,
    log_pos: usize,
) -> BoundaryRec {
    let rel_req = |r: &Request| elem_to_req[r.element as usize] as i64 - req as i64;
    let rel_cyc = |c: u64| c as i64 - cycle as i64;
    let mut sig = Vec::new();
    for &idx in active {
        let m = &modules[idx];
        sig.push(SigEntry::Module(idx));
        for r in m.input_queue() {
            sig.push(SigEntry::InQ {
                req: rel_req(r),
                issued: rel_cyc(r.issue_cycle),
            });
        }
        if let Some((r, ready)) = m.service_slot() {
            sig.push(SigEntry::Service {
                req: rel_req(r),
                issued: rel_cyc(r.issue_cycle),
                ready: rel_cyc(ready),
            });
        }
        for r in m.output_queue() {
            sig.push(SigEntry::OutQ {
                req: rel_req(r),
                issued: rel_cyc(r.issue_cycle),
            });
        }
    }
    let module_stats = det
        .period_modules
        .iter()
        .map(|&i| (modules[i].busy_cycles(), modules[i].queued_conflicts()))
        .collect();
    BoundaryRec {
        req,
        cycle,
        stall_cycles,
        delivered,
        log_pos,
        trace_pos: trace.events().len(),
        module_stats,
        sig,
    }
}

/// One trace event of the reference window, shifted into an
/// extrapolated period: cycles advance by `dt`, element ids are
/// remapped to their stream counterparts `dq` requests later.
fn shift_event<F>(ev: Event, dt: u64, dq: u64, elem_to_req: &[u64], request: &F) -> Event
where
    F: Fn(usize) -> (u64, Addr, ModuleId),
{
    let shift_elem = |e: u64| request((elem_to_req[e as usize] + dq) as usize).0;
    match ev {
        Event::Issue {
            cycle,
            element,
            module,
        } => Event::Issue {
            cycle: cycle + dt,
            element: shift_elem(element),
            module,
        },
        Event::Stall { cycle, module } => Event::Stall {
            cycle: cycle + dt,
            module,
        },
        Event::ServiceStart {
            cycle,
            module,
            element,
        } => Event::ServiceStart {
            cycle: cycle + dt,
            module,
            element: shift_elem(element),
        },
        Event::Complete {
            cycle,
            module,
            element,
        } => Event::Complete {
            cycle: cycle + dt,
            module,
            element: shift_elem(element),
        },
        Event::Deliver { cycle, element } => Event::Deliver {
            cycle: cycle + dt,
            element: shift_elem(element),
        },
    }
}

impl MemorySystem {
    /// The periodic steady-state fast-forward engine: the event engine
    /// plus recurrence detection and closed-form extrapolation (see the
    /// module docs). Statistics land in `out`, reusing its buffers.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_plan`](Self::run_plan).
    pub(crate) fn run_periodic<F>(&mut self, n: usize, request: &F, out: &mut AccessStats)
    where
        F: Fn(usize) -> (u64, Addr, ModuleId),
    {
        self.reset();
        let MemorySystem {
            cfg,
            modules,
            trace,
            active,
            completions,
            periodic,
            ..
        } = self;
        completions.clear();
        let n_u64 = n as u64;
        for k in 0..n {
            let (_, _, module) = request(k);
            assert!(
                module.get() < cfg.module_count(),
                "request targets module {} but memory has {}",
                module,
                cfg.module_count()
            );
        }

        // --- Recurrence detection setup -------------------------------
        //
        // Boundaries are anchored on the processor's request counter, so
        // detection needs single-request issue (one port); multi-port
        // configurations simply run the plain event path below.
        let mut detect: Option<Detection> = None;
        if cfg.ports() == 1 && n >= 4 {
            let p = minimal_period(n, request, &mut periodic.fail);
            if 3 * p <= n_u64 {
                // element -> request index; bail out gracefully if the
                // ids are not a permutation (the engine contract, but
                // the other engines only enforce it at delivery time).
                let elem_to_req = &mut periodic.elem_to_req;
                elem_to_req.clear();
                elem_to_req.resize(n, u64::MAX);
                let mut valid = true;
                for k in 0..n {
                    let e = request(k).0;
                    if e >= n_u64 || elem_to_req[e as usize] != u64::MAX {
                        valid = false;
                        break;
                    }
                    elem_to_req[e as usize] = k as u64;
                }
                if valid {
                    let mut period_modules: Vec<usize> = (0..p as usize)
                        .map(|k| request(k).2.get() as usize)
                        .collect();
                    period_modules.sort_unstable();
                    period_modules.dedup();
                    // Startup transients are bounded by the pipeline
                    // filling (a few service times and queue depths);
                    // past this allowance the stream is not settling
                    // into a one-boundary recurrence and the plain
                    // event path is the right engine.
                    let transient = 4 * (cfg.t_cycles() + (cfg.q_in() + cfg.q_out()) as u64) + 64;
                    let limit = (3 * p).max(p + transient).min(n_u64 - p);
                    periodic.deliveries.clear();
                    detect = Some(Detection {
                        p,
                        next_boundary: p,
                        limit,
                        period_modules,
                        ring: VecDeque::new(),
                    });
                }
            }
        }

        out.arrival.clear();
        out.arrival.resize(n, u64::MAX);
        let arrival = &mut out.arrival;
        let mut delivered: u64 = 0;
        let mut next_request: usize = 0;
        let mut stall_cycles: u64 = 0;
        let mut first_issue: Option<u64> = None;
        let mut last_arrival: u64 = 0;

        let safety_bound = 1_000_000u64.max(n_u64 * cfg.t_cycles() * 4 + 10_000);
        let mut cycle: u64 = 0;
        while delivered < n_u64 {
            assert!(
                cycle < safety_bound,
                "simulation exceeded {safety_bound} cycles — engine bug"
            );

            // The four phases, verbatim from the cycle oracle.

            // Phase 1: service completions (ascending module order).
            for &idx in active.iter() {
                let module = &mut modules[idx];
                let in_service = module.in_service().map(|r| r.element);
                module.tick_complete(cycle);
                if let (Some(element), None) = (in_service, module.in_service()) {
                    trace.push(Event::Complete {
                        cycle,
                        module: ModuleId::new(idx as u64),
                        element,
                    });
                }
            }

            // Phase 2: bus grants — oldest issue first, lowest module on
            // ties; one grant per port.
            for _ in 0..cfg.ports() {
                let grant = active
                    .iter()
                    .filter_map(|&idx| modules[idx].output_ready().map(|ready| (ready, idx)))
                    .min();
                let Some((_, idx)) = grant else { break };
                let req = modules[idx]
                    .take_output()
                    // cfva-lint: allow(L002, reason = "idx came from the output_ready() filter on the same tick, so take_output() cannot be empty")
                    .expect("granted module has output");
                let when = cycle + 1; // one-cycle bus
                arrival[req.element as usize] = when;
                last_arrival = last_arrival.max(when);
                delivered += 1;
                if detect.is_some() {
                    periodic
                        .deliveries
                        .push((periodic.elem_to_req[req.element as usize], when));
                }
                trace.push(Event::Deliver {
                    cycle: when,
                    element: req.element,
                });
            }

            // Phase 3: processor issue — one request per port, in-order
            // (a blocked request blocks the ports behind it).
            for _ in 0..cfg.ports() {
                if next_request >= n {
                    break;
                }
                let (element, addr, module) = request(next_request);
                let midx = module.get() as usize;
                if modules[midx].can_accept() {
                    modules[midx].accept(Request {
                        element,
                        addr,
                        module,
                        issue_cycle: cycle,
                    });
                    if let Err(pos) = active.binary_search(&midx) {
                        active.insert(pos, midx);
                    }
                    first_issue.get_or_insert(cycle);
                    next_request += 1;
                    trace.push(Event::Issue {
                        cycle,
                        element,
                        module,
                    });
                } else {
                    stall_cycles += 1;
                    trace.push(Event::Stall { cycle, module });
                    break;
                }
            }

            // Phase 4: service starts. Each start schedules a
            // completion event.
            for &idx in active.iter() {
                let module = &mut modules[idx];
                let serving_before = module.served();
                module.tick_start(cycle);
                if module.served() > serving_before {
                    let (element, ready_at) = module
                        .in_service()
                        .map(|r| r.element)
                        .zip(module.service_ready_at())
                        // cfva-lint: allow(L002, reason = "served() just increased, so the service stage holds a request with a ready time")
                        .expect("service stage just filled");
                    completions.push(Reverse((ready_at, idx)));
                    trace.push(Event::ServiceStart {
                        cycle,
                        module: ModuleId::new(idx as u64),
                        element,
                    });
                }
            }

            // Drop drained modules from the active set.
            active.retain(|&idx| modules[idx].is_active());

            // --- Boundary check: capture, match, fast-forward. --------
            if detect
                .as_ref()
                .is_some_and(|d| next_request as u64 == d.next_boundary)
            {
                // cfva-lint: allow(L002, reason = "the is_some_and guard on the line above proves detect is Some")
                let mut d = detect.take().expect("just checked");
                let rec = capture_boundary(
                    &d,
                    &periodic.elem_to_req,
                    modules,
                    active,
                    trace,
                    next_request as u64,
                    cycle,
                    stall_cycles,
                    delivered,
                    periodic.deliveries.len(),
                );
                if let Some(prev) = d.ring.iter().rev().find(|r| r.sig == rec.sig) {
                    // Steady state: the window (prev, rec] will replay,
                    // time-shifted, `k` more times. Skip them.
                    let span = rec.req - prev.req;
                    let dc = rec.cycle - prev.cycle;
                    let k = (n_u64 - rec.req) / span;
                    if k > 0 {
                        // Aggregate statistics of the skipped periods.
                        stall_cycles += k * (rec.stall_cycles - prev.stall_cycles);
                        let window_delivered = rec.delivered - prev.delivered;
                        debug_assert_eq!(
                            window_delivered, span,
                            "matched boundaries must deliver one period per window"
                        );
                        delivered += k * window_delivered;
                        next_request += (k * span) as usize;
                        for (i, &midx) in d.period_modules.iter().enumerate() {
                            let (b0, c0) = prev.module_stats[i];
                            let (b1, c1) = rec.module_stats[i];
                            modules[midx].add_counters(k * (b1 - b0), k * (c1 - c0));
                        }

                        // Per-element arrivals of the skipped periods:
                        // every delivery in the reference window recurs
                        // k times, shifted in request index and time.
                        for &(q, a) in &periodic.deliveries[prev.log_pos..rec.log_pos] {
                            for i in 1..=k {
                                let (element, _, _) = request((q + i * span) as usize);
                                let when = a + i * dc;
                                arrival[element as usize] = when;
                                last_arrival = last_arrival.max(when);
                            }
                        }

                        // Trace reconstruction: replay the reference
                        // window's events with shifted clocks and
                        // remapped element ids.
                        if trace.is_enabled() {
                            let window = trace.events()[prev.trace_pos..rec.trace_pos].to_vec();
                            for i in 1..=k {
                                for &ev in &window {
                                    trace.push(shift_event(
                                        ev,
                                        i * dc,
                                        i * span,
                                        &periodic.elem_to_req,
                                        request,
                                    ));
                                }
                            }
                        }

                        // Fast-forward the live machine state: every
                        // held request becomes its stream counterpart
                        // k periods later, all clocks advance k·dc.
                        let dt = k * dc;
                        let dq = k * span;
                        for &idx in active.iter() {
                            modules[idx].shift_queues(dt, |r| {
                                let kk = periodic.elem_to_req[r.element as usize] + dq;
                                let (element, addr, module) = request(kk as usize);
                                debug_assert_eq!(
                                    module, r.module,
                                    "module sequence must be periodic"
                                );
                                r.element = element;
                                r.addr = addr;
                            });
                        }
                        completions.clear();
                        for &idx in active.iter() {
                            if let Some(ready) = modules[idx].service_ready_at() {
                                completions.push(Reverse((ready, idx)));
                            }
                        }
                        cycle += dt;
                    }
                    // Whether or not any periods were left to skip, the
                    // detector has done its job; the event loop finishes
                    // the tail and the drain.
                } else {
                    d.ring.push_back(rec);
                    if d.ring.len() > SIGNATURE_RING {
                        d.ring.pop_front();
                    }
                    d.next_boundary += d.p;
                    if d.next_boundary <= d.limit {
                        detect = Some(d);
                    }
                    // else: transient exhausted the budget — finish as a
                    // plain event-queue run.
                }
            }

            // --- Scheduling: the next cycle anything can happen. ---
            //
            // Either of these means the very next cycle is live:
            //  * a datum waits on the return bus (phase 2 fires), or
            //  * the processor's next request fits its target's input
            //    buffer (phase 3 fires).
            if active.iter().any(|&idx| modules[idx].has_output()) || delivered >= n_u64 {
                cycle += 1;
                continue;
            }
            if next_request < n {
                let (_, _, module) = request(next_request);
                // cfva-lint: allow(L002, reason = "module_of returns an id < module_count by the ModuleMap contract, and modules is sized to module_count")
                if modules[module.get() as usize].can_accept() {
                    cycle += 1;
                    continue;
                }
            }

            // Otherwise the system is quiescent except for running
            // services: jump to the next completion, accounting skipped
            // stall cycles in closed form (see event.rs).
            let target = match next_completion(completions, modules) {
                Some(ready) => ready.max(cycle + 1),
                None => cycle + 1,
            };
            if next_request < n {
                let skipped = target - (cycle + 1);
                stall_cycles += skipped;
                if trace.is_enabled() && skipped > 0 {
                    let (_, _, module) = request(next_request);
                    for c in cycle + 1..target {
                        trace.push(Event::Stall { cycle: c, module });
                    }
                }
            }
            cycle = target;
        }

        let first = first_issue.unwrap_or(0);
        out.latency = last_arrival - first + 1;
        out.elements = n_u64;
        out.stall_cycles = stall_cycles;
        out.conflicts = modules.iter().map(|m| m.queued_conflicts()).sum();
        out.module_busy.clear();
        out.module_busy
            .extend(modules.iter().map(|m| m.busy_cycles()));
        out.max_in_q = modules.iter().map(|m| m.max_in_q()).max().unwrap_or(0);
    }
}

/// The earliest pending completion, discarding stale queue entries
/// lazily — identical to the event engine's scheduler helper.
fn next_completion(
    completions: &mut std::collections::BinaryHeap<Reverse<(u64, usize)>>,
    modules: &[MemModule],
) -> Option<u64> {
    while let Some(&Reverse((ready, idx))) = completions.peek() {
        if modules[idx].service_ready_at() == Some(ready) {
            return Some(ready);
        }
        completions.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_period_of_streams() {
        let stream = |mods: &[u64]| {
            let mods = mods.to_vec();
            move |k: usize| (k as u64, Addr::new(k as u64), ModuleId::new(mods[k]))
        };
        let mut fail = Vec::new();
        let s = stream(&[0, 1, 2, 0, 1, 2, 0, 1]);
        assert_eq!(minimal_period(8, &s, &mut fail), 3);
        let s = stream(&[5, 5, 5, 5]);
        assert_eq!(minimal_period(4, &s, &mut fail), 1);
        let s = stream(&[0, 1, 2, 3]);
        assert_eq!(minimal_period(4, &s, &mut fail), 4);
        // Weak periodicity: p need not divide n.
        let s = stream(&[2, 7, 2, 7, 2]);
        assert_eq!(minimal_period(5, &s, &mut fail), 2);
    }
}
