//! The cycle engine: processor, bus and module array.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use cfva_core::plan::AccessPlan;
use cfva_core::{Addr, ModuleId};

use crate::config::MemConfig;
use crate::event::Engine;
use crate::module::MemModule;
use crate::periodic::PeriodicScratch;
use crate::stats::AccessStats;
use crate::trace::{Event, Trace};

/// One in-flight memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Element index within the vector access.
    pub element: u64,
    /// Memory address.
    pub addr: Addr,
    /// Target module.
    pub module: ModuleId,
    /// Cycle the processor issued the request.
    pub issue_cycle: u64,
}

/// The simulated memory system of the paper's Figure 2: a module array
/// behind a single one-cycle return bus, driven by a processor that
/// issues one request per cycle.
///
/// Cycle phases (in order):
///
/// 1. **complete** — modules whose service time elapsed move the datum
///    to their output buffer (blocking if it is full);
/// 2. **bus** — the arbiter grants the bus to the oldest waiting output;
///    the processor receives the datum one cycle later;
/// 3. **issue** — the processor sends the next request unless the target
///    module's input buffer is full (a *stall*);
/// 4. **start** — idle modules pull the next request from their input
///    queue into service (`T` cycles).
///
/// A request that enters service the same cycle it was issued
/// experienced no conflict; anything later is counted in
/// [`AccessStats::conflicts`].
pub struct MemorySystem {
    pub(crate) cfg: MemConfig,
    pub(crate) modules: Vec<MemModule>,
    pub(crate) trace: Trace,
    /// Indices of modules currently holding work, kept in ascending
    /// order. The cycle loop touches only these, so simulation cost
    /// scales with the *occupied* modules (≈ `T` for a register-length
    /// access), not with the memory size `M` — the difference is large
    /// on unmatched memories where `M = T²`.
    pub(crate) active: Vec<usize>,
    /// Scratch for the fast path's window check: last request index per
    /// module.
    last_start: Vec<u64>,
    /// The event engine's completion queue, keyed on (service-ready
    /// cycle, module index); kept on the system so repeated runs reuse
    /// the allocation. Entries are invalidated lazily (see
    /// `event.rs`).
    pub(crate) completions: BinaryHeap<Reverse<(u64, usize)>>,
    /// Reusable buffers of the periodic fast-forward engine (see
    /// `periodic.rs`).
    pub(crate) periodic: PeriodicScratch,
}

impl MemorySystem {
    /// Creates an idle memory system.
    pub fn new(cfg: MemConfig) -> Self {
        let modules = (0..cfg.module_count())
            .map(|_| MemModule::new(cfg.t_cycles(), cfg.q_in(), cfg.q_out()))
            .collect();
        MemorySystem {
            cfg,
            modules,
            trace: Trace::new(),
            active: Vec::new(),
            last_start: Vec::new(),
            completions: BinaryHeap::new(),
            periodic: PeriodicScratch::default(),
        }
    }

    /// Selects the simulation engine for subsequent runs (equivalent
    /// to building the system from a config carrying
    /// [`MemConfig::with_engine`]).
    ///
    /// All four engines produce **bit-identical** [`AccessStats`] and
    /// [`Trace`](crate::Trace) output; [`Engine::Cycle`] (the default)
    /// is the oracle the others are verified against
    /// (`tests/fast_path.rs`, `tests/event_engine.rs`,
    /// `tests/periodic_engine.rs`).
    pub fn set_engine(&mut self, engine: Engine) {
        self.cfg = self.cfg.with_engine(engine);
    }

    /// The engine in use.
    pub const fn engine(&self) -> Engine {
        self.cfg.engine()
    }

    /// Enables (or disables) the verified conflict-free fast path —
    /// shorthand for [`set_engine`](Self::set_engine) with
    /// [`Engine::FastPath`] (or back to the default
    /// [`Engine::Cycle`]).
    ///
    /// When enabled, a run first checks in one pass whether the request
    /// stream is conflict free in the paper's sense (every window of
    /// `T` consecutive requests touches `T` distinct modules). If it
    /// is — and the memory has a single port and tracing is off — the
    /// statistics are fully determined: request `k` starts service the
    /// cycle it is issued and arrives at `k + T + 1`, the access takes
    /// `T + L + 1` cycles, and no queueing occurs. Those are exactly
    /// the values the cycle engine produces (asserted bit-for-bit by
    /// `tests/fast_path.rs`), at a fraction of the cost. Streams that
    /// fail the check fall through to the periodic fast-forward engine
    /// ([`Engine::Periodic`]), which extrapolates steady-state periods
    /// of long conflicted streams in closed form and degrades to the
    /// event-queue engine ([`Engine::Event`]) when no recurrence is
    /// found.
    ///
    /// **Disabled by default** so the cycle-accurate engine remains the
    /// oracle for verification work; the batch execution engine
    /// (`cfva-bench::runner::BatchRunner`) enables it for throughput.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.set_engine(if enabled {
            Engine::FastPath
        } else {
            Engine::Cycle
        });
    }

    /// Whether the conflict-free fast path is enabled.
    pub const fn fast_path(&self) -> bool {
        matches!(self.cfg.engine(), Engine::FastPath)
    }

    /// The configuration in use.
    pub const fn config(&self) -> MemConfig {
        self.cfg
    }

    /// Starts recording a cycle-by-cycle event trace.
    pub fn enable_trace(&mut self) {
        self.trace.set_enabled(true);
    }

    /// The recorded trace (empty unless [`enable_trace`](Self::enable_trace)
    /// was called before the run).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Executes an access plan to completion and reports statistics.
    /// The module array is reset first, so a system can be reused across
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics if the plan references a module outside this memory's
    /// range (plan built against a different mapping), or if the
    /// simulation exceeds a hard safety bound of cycles (which would
    /// indicate an engine bug, not a property of the plan).
    #[must_use = "the returned AccessStats are the simulation's only output; dropping them wastes the run"]
    pub fn run_plan(&mut self, plan: &AccessPlan) -> AccessStats {
        let mut stats = AccessStats::default();
        self.run_plan_into(plan, &mut stats);
        stats
    }

    /// Executes an access plan, writing the statistics into caller-owned
    /// storage.
    ///
    /// The in-place equivalent of [`run_plan`](Self::run_plan): the
    /// stats' per-element and per-module vectors are cleared and
    /// refilled, so a long-lived `AccessStats` makes repeated
    /// measurement allocation-free — the batch execution engine's hot
    /// path. The plan itself is read directly; no intermediate request
    /// buffer is built.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_plan`](Self::run_plan).
    pub fn run_plan_into(&mut self, plan: &AccessPlan, out: &mut AccessStats) {
        let entries = plan.entries();
        self.run_core(
            entries.len(),
            |k| {
                let e = &entries[k];
                (e.element(), e.addr(), e.module())
            },
            out,
        );
    }

    /// Executes an arbitrary request stream: `(element, addr, module)`
    /// triples in issue order, with element ids forming a permutation of
    /// `0..len`. This is the raw interface used by [`run_plan`](Self::run_plan) and by
    /// the multi-vector runner in [`crate::multi`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_plan`](Self::run_plan).
    #[must_use = "the returned AccessStats are the simulation's only output; dropping them wastes the run"]
    pub fn run_requests(&mut self, requests: &[(u64, Addr, ModuleId)]) -> AccessStats {
        let mut stats = AccessStats::default();
        self.run_core(requests.len(), |k| requests[k], &mut stats);
        stats
    }

    /// One-pass conflict-free fast path: checks the paper's window
    /// property while accumulating the (fully determined) statistics.
    /// Returns `false` — leaving `out` in an unspecified but resizable
    /// state — as soon as a conflict is found, and the caller falls
    /// back to the cycle engine, which rewrites `out` from scratch.
    fn try_fast_path<F>(&mut self, n: usize, request: &F, out: &mut AccessStats) -> bool
    where
        F: Fn(usize) -> (u64, Addr, ModuleId),
    {
        let t = self.cfg.t_cycles();
        let m_count = self.cfg.module_count() as usize;
        self.last_start.clear();
        self.last_start.resize(m_count, u64::MAX);
        out.arrival.clear();
        out.arrival.resize(n, u64::MAX);
        out.module_busy.clear();
        out.module_busy.resize(m_count, 0);
        for k in 0..n {
            let (element, _, module) = request(k);
            let midx = module.get() as usize;
            assert!(
                midx < m_count,
                "request targets module {} but memory has {}",
                module,
                self.cfg.module_count()
            );
            let k = k as u64;
            let last = self.last_start[midx];
            if last != u64::MAX && k - last < t {
                return false; // conflict: cycle engine takes over
            }
            self.last_start[midx] = k;
            // Request k issues at cycle k (no stalls), starts service
            // immediately, completes at k + T, crosses the bus in one
            // cycle.
            out.module_busy[midx] += t;
            out.arrival[element as usize] = k + t + 1;
        }
        out.latency = t + n as u64 + 1;
        out.elements = n as u64;
        out.stall_cycles = 0;
        out.conflicts = 0;
        out.max_in_q = 1;
        true
    }

    /// Engine dispatch. `request(k)` yields the `k`-th request of the
    /// stream; statistics are written into `out`, reusing its buffers.
    fn run_core<F>(&mut self, n: usize, request: F, out: &mut AccessStats)
    where
        F: Fn(usize) -> (u64, Addr, ModuleId),
    {
        match self.cfg.engine() {
            Engine::Cycle => self.run_cycle(n, &request, out),
            Engine::Event => self.run_event(n, &request, out),
            Engine::Periodic => self.run_periodic(n, &request, out),
            Engine::FastPath => {
                if !self.trace.is_enabled()
                    && self.cfg.ports() == 1
                    && n > 0
                    && self.try_fast_path(n, &request, out)
                {
                    return;
                }
                // Conflicted (or traced / multi-port) stream: the
                // periodic fast-forward engine takes over — long
                // conflicted streams collapse to one steady-state
                // period, and anything without a detectable recurrence
                // runs as a plain event-queue simulation. This is the
                // FastPath → Periodic → Event chain.
                self.run_periodic(n, &request, out)
            }
            Engine::Analytic => {
                // Estimator semantics: aggregates only; per-element and
                // per-module vectors stay empty on the extrapolated
                // path (see `analytic.rs`).
                self.run_analytic(n, &request, out);
            }
        }
    }

    /// The per-cycle engine — the reference semantics (oracle) of the
    /// simulator: every cycle runs the four phases over the occupied
    /// modules.
    pub(crate) fn run_cycle<F>(&mut self, n: usize, request: &F, out: &mut AccessStats)
    where
        F: Fn(usize) -> (u64, Addr, ModuleId),
    {
        self.reset();
        let MemorySystem {
            cfg,
            modules,
            trace,
            active,
            ..
        } = self;
        let n_u64 = n as u64;
        for k in 0..n {
            let (_, _, module) = request(k);
            assert!(
                module.get() < cfg.module_count(),
                "request targets module {} but memory has {}",
                module,
                cfg.module_count()
            );
        }

        out.arrival.clear();
        out.arrival.resize(n, u64::MAX);
        let arrival = &mut out.arrival;
        let mut delivered: u64 = 0;
        let mut next_request: usize = 0;
        let mut stall_cycles: u64 = 0;
        let mut first_issue: Option<u64> = None;
        let mut last_arrival: u64 = 0;

        let safety_bound = 1_000_000u64.max(n_u64 * cfg.t_cycles() * 4 + 10_000);
        let mut cycle: u64 = 0;
        while delivered < n_u64 {
            assert!(
                cycle < safety_bound,
                "simulation exceeded {safety_bound} cycles — engine bug"
            );

            // Phase 1: service completions (only occupied modules can
            // complete; `active` is ascending, so event order matches a
            // full scan).
            for &idx in active.iter() {
                let module = &mut modules[idx];
                let in_service = module.in_service().map(|r| r.element);
                module.tick_complete(cycle);
                if let (Some(element), None) = (in_service, module.in_service()) {
                    trace.push(Event::Complete {
                        cycle,
                        module: ModuleId::new(idx as u64),
                        element,
                    });
                }
            }

            // Phase 2: bus grants — oldest issue first, lowest module on
            // ties; one grant per port.
            for _ in 0..cfg.ports() {
                let grant = active
                    .iter()
                    .filter_map(|&idx| modules[idx].output_ready().map(|ready| (ready, idx)))
                    .min();
                let Some((_, idx)) = grant else { break };
                let req = modules[idx]
                    .take_output()
                    // cfva-lint: allow(L002, reason = "idx came from the output_ready() filter on the same tick, so take_output() cannot be empty")
                    .expect("granted module has output");
                let when = cycle + 1; // one-cycle bus
                arrival[req.element as usize] = when;
                last_arrival = last_arrival.max(when);
                delivered += 1;
                trace.push(Event::Deliver {
                    cycle: when,
                    element: req.element,
                });
            }

            // Phase 3: processor issue — one request per port. A
            // blocked request blocks the ports behind it (in-order
            // issue), matching a real address-bus head-of-line stall.
            for _ in 0..cfg.ports() {
                if next_request >= n {
                    break;
                }
                let (element, addr, module) = request(next_request);
                let midx = module.get() as usize;
                if modules[midx].can_accept() {
                    modules[midx].accept(Request {
                        element,
                        addr,
                        module,
                        issue_cycle: cycle,
                    });
                    if let Err(pos) = active.binary_search(&midx) {
                        active.insert(pos, midx);
                    }
                    first_issue.get_or_insert(cycle);
                    next_request += 1;
                    trace.push(Event::Issue {
                        cycle,
                        element,
                        module,
                    });
                } else {
                    stall_cycles += 1;
                    trace.push(Event::Stall { cycle, module });
                    break;
                }
            }

            // Phase 4: service starts.
            for &idx in active.iter() {
                let module = &mut modules[idx];
                let serving_before = module.served();
                module.tick_start(cycle);
                if module.served() > serving_before {
                    let element = module
                        .in_service()
                        .map(|r| r.element)
                        // cfva-lint: allow(L002, reason = "served() just increased, so the service stage holds a request")
                        .expect("service stage just filled");
                    trace.push(Event::ServiceStart {
                        cycle,
                        module: ModuleId::new(idx as u64),
                        element,
                    });
                }
            }

            // Drop drained modules from the active set.
            active.retain(|&idx| modules[idx].is_active());

            cycle += 1;
        }

        let first = first_issue.unwrap_or(0);
        out.latency = last_arrival - first + 1;
        out.elements = n_u64;
        out.stall_cycles = stall_cycles;
        out.conflicts = modules.iter().map(|m| m.queued_conflicts()).sum();
        out.module_busy.clear();
        out.module_busy
            .extend(modules.iter().map(|m| m.busy_cycles()));
        out.max_in_q = modules.iter().map(|m| m.max_in_q()).max().unwrap_or(0);
    }

    pub(crate) fn reset(&mut self) {
        for module in &mut self.modules {
            module.reset();
        }
        self.active.clear();
        self.trace.clear();
        self.completions.clear();
    }
}

impl fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySystem")
            .field("config", &self.cfg)
            .field("modules", &self.modules.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfva_core::mapping::{Interleaved, XorMatched};
    use cfva_core::plan::{Planner, Strategy};
    use cfva_core::VectorSpec;

    fn run(planner: &Planner, vec: &VectorSpec, strategy: Strategy, cfg: MemConfig) -> AccessStats {
        let plan = planner.plan(vec, strategy).unwrap();
        MemorySystem::new(cfg).run_plan(&plan)
    }

    #[test]
    fn conflict_free_access_takes_t_plus_l_plus_1() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        let stats = run(&planner, &vec, Strategy::ConflictFree, cfg);
        assert_eq!(stats.latency, 8 + 64 + 1);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(stats.stall_cycles, 0);
        assert!(stats.is_conflict_free());
        assert_eq!(stats.efficiency(8), 1.0);
    }

    #[test]
    fn unit_stride_on_interleaving_is_minimal() {
        let planner = Planner::baseline(Interleaved::new(3).unwrap(), 3);
        let vec = VectorSpec::new(0, 1, 64).unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        let stats = run(&planner, &vec, Strategy::Canonical, cfg);
        assert_eq!(stats.latency, 73);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn clustered_stride_serialises_on_one_module() {
        // Stride 8 on low-order interleaving: every element in module 0:
        // latency ~ L·T.
        let planner = Planner::baseline(Interleaved::new(3).unwrap(), 3);
        let vec = VectorSpec::new(0, 8, 64).unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        let stats = run(&planner, &vec, Strategy::Canonical, cfg);
        assert!(stats.latency >= 64 * 8, "latency {}", stats.latency);
        assert!(stats.conflicts > 0);
        assert!(stats.stall_cycles > 0);
        assert_eq!(stats.module_busy[0], 64 * 8);
    }

    #[test]
    fn arrivals_are_recorded_per_element() {
        let planner = Planner::matched(XorMatched::new(2, 2).unwrap());
        let vec = VectorSpec::new(0, 1, 16).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let stats = MemorySystem::new(MemConfig::new(2, 2).unwrap()).run_plan(&plan);
        // The k-th issued request (whatever element it is) is sent at
        // cycle k and arrives T + 1 cycles later.
        for (k, entry) in plan.iter().enumerate() {
            assert_eq!(
                stats.arrival[entry.element() as usize],
                k as u64 + 4 + 1,
                "request {k} (element {})",
                entry.element()
            );
        }
    }

    #[test]
    fn trace_records_issue_and_deliver() {
        let planner = Planner::matched(XorMatched::new(2, 2).unwrap());
        let vec = VectorSpec::new(0, 1, 16).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let mut sim = MemorySystem::new(MemConfig::new(2, 2).unwrap());
        sim.enable_trace();
        let _ = sim.run_plan(&plan); // run for the trace
        let issues = sim
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Issue { .. }))
            .count();
        let delivers = sim
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Deliver { .. }))
            .count();
        assert_eq!(issues, 16);
        assert_eq!(delivers, 16);
    }

    #[test]
    fn system_is_reusable_across_runs() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let mut sim = MemorySystem::new(MemConfig::new(3, 3).unwrap());
        let a = sim.run_plan(&plan);
        let b = sim.run_plan(&plan);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "request targets module")]
    fn module_range_validated() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        // Memory with only 4 modules cannot run an 8-module plan.
        let mut sim = MemorySystem::new(MemConfig::new(2, 2).unwrap());
        let _ = sim.run_plan(&plan);
    }

    #[test]
    fn dual_port_memory_halves_issue_time() {
        // Future-work model: two ports help only when every window of
        // 2T requests covers 2T distinct modules. A unit-stride walk on
        // a 64-module interleaved memory does exactly that.
        let planner = Planner::baseline(Interleaved::new(6).unwrap(), 3);
        let vec = VectorSpec::new(0, 1, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::Canonical).unwrap();

        let single = MemConfig::new(6, 3).unwrap();
        let dual = MemConfig::new(6, 3).unwrap().with_ports(2).unwrap();
        let lat1 = MemorySystem::new(single).run_plan(&plan).latency;
        let lat2 = MemorySystem::new(dual).run_plan(&plan).latency;
        assert_eq!(lat1, 8 + 128 + 1);
        assert_eq!(lat2, 8 + 64 + 1, "dual-port latency = T + L/2 + 1");
    }

    #[test]
    fn dual_port_gains_nothing_when_modules_saturate() {
        // A vector confined to T modules is module-bandwidth-bound:
        // extra ports cannot help (the distinction the future-work
        // extension would have to address).
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let vec = VectorSpec::new(16, 12, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();

        let single = MemConfig::new(3, 3).unwrap();
        let dual = MemConfig::new(3, 3).unwrap().with_ports(2).unwrap();
        let lat1 = MemorySystem::new(single).run_plan(&plan).latency;
        let lat2 = MemorySystem::new(dual).run_plan(&plan).latency;
        assert_eq!(lat1, 137);
        // Module busy time dominates: 128 elements / 8 modules * 8
        // cycles = 128 cycles of mandatory occupancy.
        assert!(lat2 >= 128, "dual-port latency {lat2}");
    }

    #[test]
    fn subsequence_order_bounded_by_2t_plus_l_with_buffers() {
        // The Section 3.1 claim, on the paper's own example.
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::Subsequence).unwrap();
        let cfg = MemConfig::new(3, 3).unwrap().with_queues(2, 1).unwrap();
        let stats = MemorySystem::new(cfg).run_plan(&plan);
        assert!(
            stats.latency <= 2 * 8 + 64,
            "latency {} exceeds 2T+L",
            stats.latency
        );
    }
}
