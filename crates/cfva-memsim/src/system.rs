//! The cycle engine: processor, bus and module array.

use std::fmt;

use cfva_core::plan::AccessPlan;
use cfva_core::{Addr, ModuleId};

use crate::config::MemConfig;
use crate::module::MemModule;
use crate::stats::AccessStats;
use crate::trace::{Event, Trace};

/// One in-flight memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Element index within the vector access.
    pub element: u64,
    /// Memory address.
    pub addr: Addr,
    /// Target module.
    pub module: ModuleId,
    /// Cycle the processor issued the request.
    pub issue_cycle: u64,
}

/// The simulated memory system of the paper's Figure 2: a module array
/// behind a single one-cycle return bus, driven by a processor that
/// issues one request per cycle.
///
/// Cycle phases (in order):
///
/// 1. **complete** — modules whose service time elapsed move the datum
///    to their output buffer (blocking if it is full);
/// 2. **bus** — the arbiter grants the bus to the oldest waiting output;
///    the processor receives the datum one cycle later;
/// 3. **issue** — the processor sends the next request unless the target
///    module's input buffer is full (a *stall*);
/// 4. **start** — idle modules pull the next request from their input
///    queue into service (`T` cycles).
///
/// A request that enters service the same cycle it was issued
/// experienced no conflict; anything later is counted in
/// [`AccessStats::conflicts`].
pub struct MemorySystem {
    cfg: MemConfig,
    modules: Vec<MemModule>,
    trace: Trace,
}

impl MemorySystem {
    /// Creates an idle memory system.
    pub fn new(cfg: MemConfig) -> Self {
        let modules = (0..cfg.module_count())
            .map(|_| MemModule::new(cfg.t_cycles(), cfg.q_in(), cfg.q_out()))
            .collect();
        MemorySystem {
            cfg,
            modules,
            trace: Trace::new(),
        }
    }

    /// The configuration in use.
    pub const fn config(&self) -> MemConfig {
        self.cfg
    }

    /// Starts recording a cycle-by-cycle event trace.
    pub fn enable_trace(&mut self) {
        self.trace.set_enabled(true);
    }

    /// The recorded trace (empty unless [`enable_trace`](Self::enable_trace)
    /// was called before the run).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Executes an access plan to completion and reports statistics.
    /// The module array is reset first, so a system can be reused across
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics if the plan references a module outside this memory's
    /// range (plan built against a different mapping), or if the
    /// simulation exceeds a hard safety bound of cycles (which would
    /// indicate an engine bug, not a property of the plan).
    pub fn run_plan(&mut self, plan: &AccessPlan) -> AccessStats {
        let requests: Vec<(u64, Addr, ModuleId)> = plan
            .iter()
            .map(|e| (e.element(), e.addr(), e.module()))
            .collect();
        self.run_requests(&requests)
    }

    /// Executes an arbitrary request stream: `(element, addr, module)`
    /// triples in issue order, with element ids forming a permutation of
    /// `0..len`. This is the raw interface used by [`run_plan`](Self::run_plan) and by
    /// the multi-vector runner in [`crate::multi`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_plan`](Self::run_plan).
    pub fn run_requests(&mut self, requests: &[(u64, Addr, ModuleId)]) -> AccessStats {
        self.reset();
        let n = requests.len() as u64;
        for &(_, _, module) in requests {
            assert!(
                module.get() < self.cfg.module_count(),
                "request targets module {} but memory has {}",
                module,
                self.cfg.module_count()
            );
        }

        let mut arrival: Vec<u64> = vec![u64::MAX; n as usize];
        let mut delivered: u64 = 0;
        let mut next_request: usize = 0;
        let mut stall_cycles: u64 = 0;
        let mut first_issue: Option<u64> = None;
        let mut last_arrival: u64 = 0;

        let safety_bound = 1_000_000u64.max(n * self.cfg.t_cycles() * 4 + 10_000);
        let mut cycle: u64 = 0;
        while delivered < n {
            assert!(
                cycle < safety_bound,
                "simulation exceeded {safety_bound} cycles — engine bug"
            );

            // Phase 1: service completions.
            for (idx, module) in self.modules.iter_mut().enumerate() {
                let in_service = module.in_service().map(|r| r.element);
                module.tick_complete(cycle);
                if let (Some(element), None) = (in_service, module.in_service()) {
                    self.trace.push(Event::Complete {
                        cycle,
                        module: ModuleId::new(idx as u64),
                        element,
                    });
                }
            }

            // Phase 2: bus grants — oldest issue first, lowest module on
            // ties; one grant per port.
            for _ in 0..self.cfg.ports() {
                let grant = self
                    .modules
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, m)| m.output_ready().map(|ready| (ready, idx)))
                    .min();
                let Some((_, idx)) = grant else { break };
                let req = self.modules[idx]
                    .take_output()
                    .expect("granted module has output");
                let when = cycle + 1; // one-cycle bus
                arrival[req.element as usize] = when;
                last_arrival = last_arrival.max(when);
                delivered += 1;
                self.trace.push(Event::Deliver {
                    cycle: when,
                    element: req.element,
                });
            }

            // Phase 3: processor issue — one request per port. A
            // blocked request blocks the ports behind it (in-order
            // issue), matching a real address-bus head-of-line stall.
            for _ in 0..self.cfg.ports() {
                if next_request >= requests.len() {
                    break;
                }
                let (element, addr, module) = requests[next_request];
                let midx = module.get() as usize;
                if self.modules[midx].can_accept() {
                    self.modules[midx].accept(Request {
                        element,
                        addr,
                        module,
                        issue_cycle: cycle,
                    });
                    first_issue.get_or_insert(cycle);
                    next_request += 1;
                    self.trace.push(Event::Issue {
                        cycle,
                        element,
                        module,
                    });
                } else {
                    stall_cycles += 1;
                    self.trace.push(Event::Stall { cycle, module });
                    break;
                }
            }

            // Phase 4: service starts.
            for (idx, module) in self.modules.iter_mut().enumerate() {
                let serving_before = module.served();
                module.tick_start(cycle);
                if module.served() > serving_before {
                    let element = module
                        .in_service()
                        .map(|r| r.element)
                        .expect("service stage just filled");
                    self.trace.push(Event::ServiceStart {
                        cycle,
                        module: ModuleId::new(idx as u64),
                        element,
                    });
                }
            }

            cycle += 1;
        }

        let first = first_issue.unwrap_or(0);
        AccessStats {
            latency: last_arrival - first + 1,
            elements: n,
            stall_cycles,
            conflicts: self.modules.iter().map(|m| m.queued_conflicts()).sum(),
            arrival,
            module_busy: self.modules.iter().map(|m| m.busy_cycles()).collect(),
            max_in_q: self.modules.iter().map(|m| m.max_in_q()).max().unwrap_or(0),
        }
    }

    fn reset(&mut self) {
        for module in &mut self.modules {
            *module = MemModule::new(self.cfg.t_cycles(), self.cfg.q_in(), self.cfg.q_out());
        }
        self.trace.clear();
    }
}

impl fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySystem")
            .field("config", &self.cfg)
            .field("modules", &self.modules.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfva_core::mapping::{Interleaved, XorMatched};
    use cfva_core::plan::{Planner, Strategy};
    use cfva_core::VectorSpec;

    fn run(planner: &Planner, vec: &VectorSpec, strategy: Strategy, cfg: MemConfig) -> AccessStats {
        let plan = planner.plan(vec, strategy).unwrap();
        MemorySystem::new(cfg).run_plan(&plan)
    }

    #[test]
    fn conflict_free_access_takes_t_plus_l_plus_1() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        let stats = run(&planner, &vec, Strategy::ConflictFree, cfg);
        assert_eq!(stats.latency, 8 + 64 + 1);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(stats.stall_cycles, 0);
        assert!(stats.is_conflict_free());
        assert_eq!(stats.efficiency(8), 1.0);
    }

    #[test]
    fn unit_stride_on_interleaving_is_minimal() {
        let planner = Planner::baseline(Interleaved::new(3), 3);
        let vec = VectorSpec::new(0, 1, 64).unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        let stats = run(&planner, &vec, Strategy::Canonical, cfg);
        assert_eq!(stats.latency, 73);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn clustered_stride_serialises_on_one_module() {
        // Stride 8 on low-order interleaving: every element in module 0:
        // latency ~ L·T.
        let planner = Planner::baseline(Interleaved::new(3), 3);
        let vec = VectorSpec::new(0, 8, 64).unwrap();
        let cfg = MemConfig::new(3, 3).unwrap();
        let stats = run(&planner, &vec, Strategy::Canonical, cfg);
        assert!(stats.latency >= 64 * 8, "latency {}", stats.latency);
        assert!(stats.conflicts > 0);
        assert!(stats.stall_cycles > 0);
        assert_eq!(stats.module_busy[0], 64 * 8);
    }

    #[test]
    fn arrivals_are_recorded_per_element() {
        let planner = Planner::matched(XorMatched::new(2, 2).unwrap());
        let vec = VectorSpec::new(0, 1, 16).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let stats = MemorySystem::new(MemConfig::new(2, 2).unwrap()).run_plan(&plan);
        // The k-th issued request (whatever element it is) is sent at
        // cycle k and arrives T + 1 cycles later.
        for (k, entry) in plan.iter().enumerate() {
            assert_eq!(
                stats.arrival[entry.element() as usize],
                k as u64 + 4 + 1,
                "request {k} (element {})",
                entry.element()
            );
        }
    }

    #[test]
    fn trace_records_issue_and_deliver() {
        let planner = Planner::matched(XorMatched::new(2, 2).unwrap());
        let vec = VectorSpec::new(0, 1, 16).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let mut sim = MemorySystem::new(MemConfig::new(2, 2).unwrap());
        sim.enable_trace();
        sim.run_plan(&plan);
        let issues = sim
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Issue { .. }))
            .count();
        let delivers = sim
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Deliver { .. }))
            .count();
        assert_eq!(issues, 16);
        assert_eq!(delivers, 16);
    }

    #[test]
    fn system_is_reusable_across_runs() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let mut sim = MemorySystem::new(MemConfig::new(3, 3).unwrap());
        let a = sim.run_plan(&plan);
        let b = sim.run_plan(&plan);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "request targets module")]
    fn module_range_validated() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        // Memory with only 4 modules cannot run an 8-module plan.
        let mut sim = MemorySystem::new(MemConfig::new(2, 2).unwrap());
        sim.run_plan(&plan);
    }

    #[test]
    fn dual_port_memory_halves_issue_time() {
        // Future-work model: two ports help only when every window of
        // 2T requests covers 2T distinct modules. A unit-stride walk on
        // a 64-module interleaved memory does exactly that.
        let planner = Planner::baseline(Interleaved::new(6), 3);
        let vec = VectorSpec::new(0, 1, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::Canonical).unwrap();

        let single = MemConfig::new(6, 3).unwrap();
        let dual = MemConfig::new(6, 3).unwrap().with_ports(2).unwrap();
        let lat1 = MemorySystem::new(single).run_plan(&plan).latency;
        let lat2 = MemorySystem::new(dual).run_plan(&plan).latency;
        assert_eq!(lat1, 8 + 128 + 1);
        assert_eq!(lat2, 8 + 64 + 1, "dual-port latency = T + L/2 + 1");
    }

    #[test]
    fn dual_port_gains_nothing_when_modules_saturate() {
        // A vector confined to T modules is module-bandwidth-bound:
        // extra ports cannot help (the distinction the future-work
        // extension would have to address).
        let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
        let vec = VectorSpec::new(16, 12, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();

        let single = MemConfig::new(3, 3).unwrap();
        let dual = MemConfig::new(3, 3).unwrap().with_ports(2).unwrap();
        let lat1 = MemorySystem::new(single).run_plan(&plan).latency;
        let lat2 = MemorySystem::new(dual).run_plan(&plan).latency;
        assert_eq!(lat1, 137);
        // Module busy time dominates: 128 elements / 8 modules * 8
        // cycles = 128 cycles of mandatory occupancy.
        assert!(lat2 >= 128, "dual-port latency {lat2}");
    }

    #[test]
    fn subsequence_order_bounded_by_2t_plus_l_with_buffers() {
        // The Section 3.1 claim, on the paper's own example.
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let plan = planner.plan(&vec, Strategy::Subsequence).unwrap();
        let cfg = MemConfig::new(3, 3).unwrap().with_queues(2, 1).unwrap();
        let stats = MemorySystem::new(cfg).run_plan(&plan);
        assert!(
            stats.latency <= 2 * 8 + 64,
            "latency {} exceeds 2T+L",
            stats.latency
        );
    }
}
