//! White-box timing invariants of the cycle engine.

use cfva_core::mapping::{Interleaved, XorMatched};
use cfva_core::plan::{Planner, Strategy};
use cfva_core::VectorSpec;
use cfva_memsim::{Event, MemConfig, MemorySystem};

/// Unobstructed requests arrive exactly `T + 1` cycles after issue.
#[test]
fn arrival_is_issue_plus_t_plus_one() {
    for t in [1u32, 2, 3, 4] {
        let planner = Planner::matched(XorMatched::new(t, t).unwrap());
        let vec = VectorSpec::new(0, 1i64 << t, 1 << (t + 2)).unwrap(); // x = s = t
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        let stats = MemorySystem::new(MemConfig::new(t, t).unwrap()).run_plan(&plan);
        for (k, entry) in plan.iter().enumerate() {
            assert_eq!(
                stats.arrival[entry.element() as usize],
                k as u64 + (1 << t) + 1,
                "t={t} request {k}"
            );
        }
    }
}

/// Event stream sanity: for every element, Issue ≤ ServiceStart <
/// Complete < Deliver, and the deliver cycle matches the recorded
/// arrival.
#[test]
fn trace_event_ordering_per_element() {
    let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
    let vec = VectorSpec::new(16, 12, 64).unwrap();
    let plan = planner.plan(&vec, Strategy::Canonical).unwrap(); // has conflicts
    let mut sim = MemorySystem::new(MemConfig::new(3, 3).unwrap());
    sim.enable_trace();
    let stats = sim.run_plan(&plan);

    for element in 0..64u64 {
        let mut issue = None;
        let mut start = None;
        let mut complete = None;
        let mut deliver = None;
        for e in sim.trace().events() {
            match *e {
                Event::Issue {
                    cycle, element: el, ..
                } if el == element => issue = Some(cycle),
                Event::ServiceStart {
                    cycle, element: el, ..
                } if el == element => start = Some(cycle),
                Event::Complete {
                    cycle, element: el, ..
                } if el == element => complete = Some(cycle),
                Event::Deliver { cycle, element: el } if el == element => deliver = Some(cycle),
                _ => {}
            }
        }
        let (i, s, c, d) = (
            issue.expect("issued"),
            start.expect("started"),
            complete.expect("completed"),
            deliver.expect("delivered"),
        );
        assert!(i <= s, "element {element}: issue {i} > start {s}");
        assert_eq!(c, s + 8, "element {element}: service is 8 cycles");
        assert!(d > c, "element {element}: deliver {d} <= complete {c}");
        assert_eq!(d, stats.arrival[element as usize], "element {element}");
    }
}

/// With a single output buffer and a blocked bus, the module pipeline
/// back-pressures: total busy time still equals served × T.
#[test]
fn module_busy_accounting() {
    let planner = Planner::baseline(Interleaved::new(2).unwrap(), 3);
    let vec = VectorSpec::new(0, 4, 32).unwrap(); // all in module 0
    let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
    let stats = MemorySystem::new(MemConfig::new(2, 3).unwrap()).run_plan(&plan);
    assert_eq!(stats.module_busy[0], 32 * 8);
    assert_eq!(stats.module_busy[1], 0);
    // Serialised latency: module 0 is the bottleneck.
    assert!(stats.latency >= 32 * 8);
    // Stalls: the single input buffer fills while the module is busy.
    assert!(stats.stall_cycles > 0);
}

/// The bus never delivers more than one element per cycle (single
/// port): arrival cycles are all distinct.
#[test]
fn bus_delivers_one_per_cycle() {
    let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
    let vec = VectorSpec::new(16, 12, 64).unwrap();
    let plan = planner.plan(&vec, Strategy::Subsequence).unwrap();
    let cfg = MemConfig::new(3, 3).unwrap().with_queues(2, 1).unwrap();
    let stats = MemorySystem::new(cfg).run_plan(&plan);
    let mut arrivals = stats.arrival.clone();
    arrivals.sort_unstable();
    for w in arrivals.windows(2) {
        assert!(w[0] < w[1], "two deliveries at cycle {}", w[0]);
    }
}

/// Multi-port: with p ports, up to p deliveries per cycle, never more.
#[test]
fn multi_port_delivery_cap() {
    let planner = Planner::baseline(Interleaved::new(6).unwrap(), 3);
    let vec = VectorSpec::new(0, 1, 128).unwrap();
    let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
    for ports in [2usize, 4] {
        let cfg = MemConfig::new(6, 3).unwrap().with_ports(ports).unwrap();
        let stats = MemorySystem::new(cfg).run_plan(&plan);
        let mut per_cycle = std::collections::HashMap::new();
        for &a in &stats.arrival {
            *per_cycle.entry(a).or_insert(0u32) += 1;
        }
        assert!(
            per_cycle.values().all(|&c| c <= ports as u32),
            "ports={ports}: more deliveries than ports in one cycle"
        );
    }
}

/// Stats invariants hold across a batch of random-ish plans.
#[test]
fn stats_invariants() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let cfg = MemConfig::new(3, 3).unwrap();
    for (base, stride) in [(0u64, 1i64), (7, 6), (100, 12), (3, 48), (9, 96), (11, 7)] {
        let vec = VectorSpec::new(base, stride, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::Auto).unwrap();
        let stats = MemorySystem::new(cfg).run_plan(&plan);
        // Latency at least the floor (T + L + 1), busy time conserved,
        // arrivals set.
        assert!(stats.latency > 8 + 128);
        assert_eq!(stats.module_busy.iter().sum::<u64>(), 128 * 8);
        assert_eq!(stats.arrival.len(), 128);
        assert!(stats.arrival.iter().all(|&a| a != u64::MAX));
        assert!(stats.throughput() <= 1.0);
        assert!(stats.efficiency(8) <= 1.0);
    }
}
