//! Equivalence suite: the opt-in conflict-free fast path must produce
//! **bit-identical** `AccessStats` to the full cycle engine, for every
//! kind of plan — conflict free (where the shortcut engages),
//! conflicted (where it must fall back), buffered and multi-port
//! configurations (where it must not engage).

use cfva_core::mapping::{Interleaved, XorMatched, XorUnmatched};
use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::{Stride, VectorSpec};
use cfva_memsim::{MemConfig, MemorySystem};

/// Runs one plan through a fresh full-engine system and a fresh
/// fast-path system and asserts identical statistics.
fn assert_equivalent(cfg: MemConfig, plan: &AccessPlan, label: &str) {
    let oracle = MemorySystem::new(cfg).run_plan(plan);
    let mut fast = MemorySystem::new(cfg);
    fast.set_fast_path(true);
    let shortcut = fast.run_plan(plan);
    assert_eq!(oracle, shortcut, "{label}");
    // And again through the same (reused) fast system: reuse must not
    // leak state between runs.
    let again = fast.run_plan(plan);
    assert_eq!(oracle, again, "{label} (reused system)");
}

#[test]
fn conflict_free_matched_plans_are_identical() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let cfg = MemConfig::new(3, 3).unwrap();
    for x in 0..=4u32 {
        for sigma in [1i64, 3, 5, 7] {
            for base in [0u64, 16, 37, 1000] {
                let stride = Stride::from_parts(sigma, x).unwrap();
                let vec = VectorSpec::with_stride(base.into(), stride, 128).unwrap();
                let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
                assert_equivalent(cfg, &plan, &format!("x={x} sigma={sigma} base={base}"));
            }
        }
    }
}

#[test]
fn conflict_free_unmatched_plans_are_identical() {
    let planner = Planner::unmatched(XorUnmatched::new(3, 4, 9).unwrap());
    let cfg = MemConfig::new(6, 3).unwrap();
    for x in 0..=9u32 {
        let stride = Stride::from_parts(3, x).unwrap();
        let vec = VectorSpec::with_stride(77u64.into(), stride, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
        assert_equivalent(cfg, &plan, &format!("unmatched x={x}"));
    }
}

#[test]
fn conflicted_plans_fall_back_to_the_engine() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let cfg = MemConfig::new(3, 3).unwrap();
    // Canonical orders of in-window families conflict; families beyond
    // the window degrade badly (stride 256 clusters hard).
    for (base, stride) in [(16u64, 12i64), (0, 4), (9, 96), (0, 256), (5, 32)] {
        let vec = VectorSpec::new(base, stride, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
        assert_equivalent(
            cfg,
            &plan,
            &format!("canonical base={base} stride={stride}"),
        );
    }
    // Worst case: everything on one module.
    let clustered = Planner::baseline(Interleaved::new(3).unwrap(), 3);
    let vec = VectorSpec::new(0, 8, 64).unwrap();
    let plan = clustered.plan(&vec, Strategy::Canonical).unwrap();
    assert_equivalent(cfg, &plan, "fully clustered");
}

#[test]
fn buffered_and_multiport_configs_are_identical() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let vec = VectorSpec::new(16, 12, 128).unwrap();

    // Buffered memory, subsequence order (conflicts at seams).
    let buffered = MemConfig::new(3, 3).unwrap().with_queues(2, 1).unwrap();
    let plan = planner.plan(&vec, Strategy::Subsequence).unwrap();
    assert_equivalent(buffered, &plan, "buffered subsequence");

    // Buffered memory, conflict-free plan (shortcut engages; q_in > 1
    // must not change the outcome).
    let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();
    assert_equivalent(buffered, &plan, "buffered conflict-free");

    // Multi-port memory: the shortcut must not engage (it models one
    // port); results still identical because the engine runs.
    let dual = MemConfig::new(6, 3).unwrap().with_ports(2).unwrap();
    let wide = Planner::baseline(Interleaved::new(6).unwrap(), 3);
    let plan = wide
        .plan(&VectorSpec::new(0, 1, 128).unwrap(), Strategy::Canonical)
        .unwrap();
    assert_equivalent(dual, &plan, "dual port");
}

#[test]
fn empty_plan_is_identical() {
    let cfg = MemConfig::new(3, 3).unwrap();
    let plan = AccessPlan::new();
    assert_equivalent(cfg, &plan, "empty plan");
}

#[test]
fn tracing_disables_the_shortcut() {
    // With tracing on, the fast system must still produce the full
    // event stream (the shortcut would record none).
    let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
    let vec = VectorSpec::new(16, 12, 64).unwrap();
    let plan = planner.plan(&vec, Strategy::ConflictFree).unwrap();

    let mut fast = MemorySystem::new(MemConfig::new(3, 3).unwrap());
    fast.set_fast_path(true);
    fast.enable_trace();
    let stats = fast.run_plan(&plan);
    assert_eq!(stats.latency, 8 + 64 + 1);
    assert!(!fast.trace().events().is_empty());
}
