//! Validation suite for the analytic steady-state estimator:
//! `Engine::Analytic` estimates, when flagged `exact`, must **equal**
//! the per-cycle oracle's aggregate statistics — across every map in
//! the registry coverage set, stride families, bases, queue depths,
//! port counts and the long-vector regime the extrapolation targets.
//! Inexact estimates must stay within a small relative error, and the
//! short/multi-port/traced direct paths must be bit-identical
//! (per-element vectors included).

use cfva_core::mapping::{Interleaved, Registry, XorMatched};
use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::{Addr, ModuleId, Stride, VectorSpec};
use cfva_memsim::{AccessStats, Engine, MemConfig, MemorySystem};

/// Runs one plan through the oracle and the analytic estimator and
/// checks the contract: exact estimates equal the oracle's aggregates,
/// approximate ones land within `APPROX_TOL` relative error, and the
/// `Engine::Analytic` stats output carries the same aggregates as the
/// estimate.
fn assert_analytic_valid(cfg: MemConfig, plan: &AccessPlan, label: &str) {
    const APPROX_TOL: f64 = 0.05;

    let oracle = MemorySystem::new(cfg).run_plan(plan);

    let mut sys = MemorySystem::new(cfg.with_engine(Engine::Analytic));
    assert_eq!(sys.engine(), Engine::Analytic);
    let est = sys.analytic_estimate(plan);

    assert_eq!(est.elements, oracle.elements, "{label}: elements");
    if est.exact {
        assert_eq!(est.latency, oracle.latency, "{label}: exact latency");
        assert_eq!(
            est.stall_cycles, oracle.stall_cycles,
            "{label}: exact stalls"
        );
        assert_eq!(est.conflicts, oracle.conflicts, "{label}: exact conflicts");
        assert_eq!(est.max_in_q, oracle.max_in_q, "{label}: exact max_in_q");
    } else {
        let close = |got: u64, want: u64| {
            (got as f64 - want as f64).abs() <= APPROX_TOL * (want as f64) + 2.0
        };
        assert!(
            close(est.latency, oracle.latency),
            "{label}: approximate latency {} vs oracle {}",
            est.latency,
            oracle.latency
        );
        assert!(
            close(est.stall_cycles, oracle.stall_cycles),
            "{label}: approximate stalls {} vs oracle {}",
            est.stall_cycles,
            oracle.stall_cycles
        );
        assert!(
            close(est.conflicts, oracle.conflicts),
            "{label}: approximate conflicts {} vs oracle {}",
            est.conflicts,
            oracle.conflicts
        );
    }

    // The engine-dispatch path carries the estimate's aggregates, and a
    // reused system keeps giving the same answer.
    let stats = sys.run_plan(plan);
    assert_eq!(stats.latency, est.latency, "{label}: engine latency");
    assert_eq!(stats.elements, est.elements, "{label}: engine elements");
    assert_eq!(
        stats.stall_cycles, est.stall_cycles,
        "{label}: engine stalls"
    );
    assert_eq!(stats.conflicts, est.conflicts, "{label}: engine conflicts");
    assert_eq!(stats.max_in_q, est.max_in_q, "{label}: engine max_in_q");
    assert_eq!(sys.analytic_estimate(plan), est, "{label}: reused system");

    if !stats.arrival.is_empty() {
        // Direct path: the run is a full event simulation and must be
        // bit-identical to the oracle, vectors included.
        assert_eq!(oracle, stats, "{label}: direct path is bit-identical");
        assert!(est.exact, "{label}: direct path is exact by construction");
    }
}

/// Strides across families and bases at both probe-dominated (direct)
/// and extrapolated lengths.
fn sweep(planner: &Planner, cfg: MemConfig, label: &str) {
    for x in 0..=6u32 {
        for sigma in [1i64, 3] {
            let stride = Stride::from_parts(sigma, x).expect("odd sigma");
            for base in [0u64, 37] {
                let vec = VectorSpec::with_stride(base.into(), stride, 64).expect("valid");
                let plan = planner
                    .plan(&vec, Strategy::Canonical)
                    .expect("canonical always plans");
                assert_analytic_valid(
                    cfg,
                    &plan,
                    &format!("{label} x={x} sigma={sigma} base={base}"),
                );
            }
        }
    }
    // Long vectors: enough whole periods that probing pays off and the
    // closed-form extrapolation is actually exercised.
    for x in [0u32, 2, 4] {
        let stride = Stride::from_parts(3, x).expect("odd sigma");
        let p = planner.map().period(stride.family());
        // Saturating: maps with no finite period (the overridden region
        // map) just get the cap.
        let len = p.saturating_mul(192).clamp(1024, 16_384);
        // Off-period length: the congruent-residue tail is exercised.
        let len = len + (p / 3).min(97);
        let vec = VectorSpec::with_stride(11u64.into(), stride, len).expect("valid");
        let plan = planner
            .plan(&vec, Strategy::Canonical)
            .expect("canonical always plans");
        assert_analytic_valid(cfg, &plan, &format!("{label} long x={x} len={len}"));
    }
}

/// Every registered map: registering a map in the registry opts it into
/// this sweep with no test edits.
#[test]
fn every_registered_map_is_validated_against_the_oracle() {
    for spec in Registry::builtin().all_specs() {
        let planner = Planner::from_spec(&spec).expect("coverage specs are buildable");
        let cfg = MemConfig::from_spec(&spec).expect("coverage specs fit the simulator");
        sweep(&planner, cfg, &spec.to_string());
    }
}

/// The serialized worst case (every request on one module) settles into
/// a period-1 steady state: the estimator must extrapolate it exactly,
/// and must do so from probe runs orders of magnitude shorter than the
/// stream.
#[test]
fn one_module_streams_extrapolate_exactly() {
    for (m, t) in [(3u32, 3u32), (3, 6), (2, 4)] {
        let cfg = MemConfig::new(m, t).unwrap();
        let stream: Vec<(u64, Addr, ModuleId)> = (0..8192u64)
            .map(|i| (i, Addr::new(i << m), ModuleId::new(0)))
            .collect();
        let oracle = MemorySystem::new(cfg).run_requests(&stream);
        let mut sys = MemorySystem::new(cfg.with_engine(Engine::Analytic));
        let stats = sys.run_requests(&stream);
        assert!(
            stats.arrival.is_empty(),
            "m={m} t={t}: long one-module stream must take the probe path"
        );
        assert_eq!(stats.latency, oracle.latency, "m={m} t={t}: latency");
        assert_eq!(
            stats.stall_cycles, oracle.stall_cycles,
            "m={m} t={t}: stalls"
        );
        assert_eq!(stats.conflicts, oracle.conflicts, "m={m} t={t}: conflicts");
        assert_eq!(stats.max_in_q, oracle.max_in_q, "m={m} t={t}: max_in_q");
    }
}

/// Queue depths change the steady-state shape; the estimate must track
/// the oracle through all of them.
#[test]
fn queue_depths_are_validated() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let vec = VectorSpec::new(16, 12, 4096).unwrap();
    for (q_in, q_out) in [(1usize, 1usize), (2, 1), (1, 2), (4, 4), (8, 2)] {
        let cfg = MemConfig::new(3, 3)
            .unwrap()
            .with_queues(q_in, q_out)
            .unwrap();
        for strategy in [Strategy::Canonical, Strategy::Subsequence] {
            let plan = planner.plan(&vec, strategy).unwrap();
            assert_analytic_valid(cfg, &plan, &format!("q={q_in} q'={q_out} {strategy}"));
        }
    }
}

/// Multi-port, traced, tiny and empty streams run the direct path —
/// trivially exact and bit-identical, traces included.
#[test]
fn direct_paths_are_bit_identical() {
    let wide = Planner::baseline(Interleaved::new(6).unwrap(), 3);
    let plan = wide
        .plan(&VectorSpec::new(0, 1, 128).unwrap(), Strategy::Canonical)
        .unwrap();
    for ports in [2usize, 4] {
        let cfg = MemConfig::new(6, 3).unwrap().with_ports(ports).unwrap();
        assert_analytic_valid(cfg, &plan, &format!("ports={ports}"));
    }

    let cfg = MemConfig::new(3, 3).unwrap();
    assert_analytic_valid(cfg, &AccessPlan::new(), "empty plan");
    let tiny = [(0u64, Addr::new(5), ModuleId::new(3))];
    let oracle = MemorySystem::new(cfg).run_requests(&tiny);
    let analytic = MemorySystem::new(cfg.with_engine(Engine::Analytic)).run_requests(&tiny);
    assert_eq!(oracle, analytic, "single request");

    // Tracing forces the direct path: traces must match the oracle's.
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let plan = planner
        .plan(&VectorSpec::new(16, 12, 2048).unwrap(), Strategy::Canonical)
        .unwrap();
    let mut traced_oracle = MemorySystem::new(cfg);
    traced_oracle.enable_trace();
    let oracle_stats = traced_oracle.run_plan(&plan);
    let mut traced_analytic = MemorySystem::new(cfg.with_engine(Engine::Analytic));
    traced_analytic.enable_trace();
    let analytic_stats = traced_analytic.run_plan(&plan);
    assert_eq!(oracle_stats, analytic_stats, "traced stats");
    assert_eq!(
        traced_oracle.trace().events(),
        traced_analytic.trace().events(),
        "traced events"
    );
}

/// Aperiodic streams degenerate to period ≈ n: probing would cost as
/// much as running, so the estimator must fall back to the (exact)
/// direct path rather than extrapolate garbage.
#[test]
fn aperiodic_streams_take_the_direct_path() {
    let cfg = MemConfig::new(3, 3).unwrap();
    let stream: Vec<(u64, Addr, ModuleId)> = (0..256u64)
        .map(|i| (i, Addr::new(i), ModuleId::new((i * i + i / 3) % 8)))
        .collect();
    let oracle = MemorySystem::new(cfg).run_requests(&stream);
    let analytic = MemorySystem::new(cfg.with_engine(Engine::Analytic)).run_requests(&stream);
    assert_eq!(oracle, analytic, "aperiodic stream is run, not estimated");
}

/// The estimate's derived rates are consistent with its own aggregates.
#[test]
fn throughput_is_consistent() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let plan = planner
        .plan(&VectorSpec::new(16, 12, 4096).unwrap(), Strategy::Canonical)
        .unwrap();
    let cfg = MemConfig::new(3, 3).unwrap();
    let est = MemorySystem::new(cfg.with_engine(Engine::Analytic)).analytic_estimate(&plan);
    assert!(est.period > 0);
    assert!((est.throughput() - est.elements as f64 / est.latency as f64).abs() < 1e-12);
    assert!((est.cycles_per_element() * est.throughput() - 1.0).abs() < 1e-9);

    let empty =
        MemorySystem::new(cfg.with_engine(Engine::Analytic)).analytic_estimate(&AccessPlan::new());
    assert_eq!(empty.throughput(), 0.0);
    assert_eq!(empty.cycles_per_element(), 0.0);
}

/// A reused `AccessStats` buffer from a vector-bearing run must come
/// back with its per-element vectors **cleared** on the probe path —
/// stale arrivals would silently masquerade as estimator output.
#[test]
fn probe_path_clears_reused_buffers() {
    let cfg = MemConfig::new(3, 3).unwrap();
    let mut sys = MemorySystem::new(cfg.with_engine(Engine::Analytic));
    let mut out = AccessStats::default();

    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let short = planner
        .plan(&VectorSpec::new(16, 12, 32).unwrap(), Strategy::Canonical)
        .unwrap();
    sys.run_plan_into(&short, &mut out);
    assert_eq!(out.arrival.len(), 32, "short plan runs directly");

    let long = planner
        .plan(&VectorSpec::new(16, 12, 8192).unwrap(), Strategy::Canonical)
        .unwrap();
    sys.run_plan_into(&long, &mut out);
    assert!(out.arrival.is_empty(), "probe path clears stale arrivals");
    assert!(out.module_busy.is_empty(), "probe path clears busy vector");
    assert_eq!(out.elements, 8192);
}
