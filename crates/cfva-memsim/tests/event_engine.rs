//! Equivalence suite for the event-queue engine: `Engine::Event` (and
//! `Engine::FastPath`, which falls back to it) must produce
//! **bit-identical** `AccessStats` — and, where traced, identical
//! `Trace` output — to the per-cycle oracle, across **every map in the
//! registry coverage set** (a map registered in
//! `cfva_core::mapping::Registry` is swept here automatically), stride
//! families, queue depths, port counts and pathological same-module
//! streams. Plus the enforced performance claim: the event engine
//! beats the cycle loop ≥ 2× on a worst-case all-requests-one-module
//! stride.

use std::time::Instant;

use cfva_core::mapping::{Interleaved, Registry, XorMatched};
use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::{Addr, ModuleId, Stride, VectorSpec};
use cfva_memsim::{AccessStats, Engine, MemConfig, MemorySystem};

/// Runs one plan through all three engines on fresh systems and
/// asserts identical statistics; also re-runs on the reused event
/// system (state must not leak between runs) and compares full traces
/// cycle-for-cycle.
fn assert_engines_equivalent(cfg: MemConfig, plan: &AccessPlan, label: &str) {
    let oracle = MemorySystem::new(cfg).run_plan(plan);

    let mut event = MemorySystem::new(cfg.with_engine(Engine::Event));
    assert_eq!(event.engine(), Engine::Event);
    let evented = event.run_plan(plan);
    assert_eq!(oracle, evented, "{label} (event engine)");
    let again = event.run_plan(plan);
    assert_eq!(oracle, again, "{label} (event engine, reused system)");

    let mut fast = MemorySystem::new(cfg.with_engine(Engine::FastPath));
    let shortcut = fast.run_plan(plan);
    assert_eq!(oracle, shortcut, "{label} (fast path over event)");

    // Trace equivalence: the event engine must reconstruct the exact
    // per-cycle event stream, including the stall runs it skips over.
    let mut traced_oracle = MemorySystem::new(cfg);
    traced_oracle.enable_trace();
    let _ = traced_oracle.run_plan(plan); // run for the trace; stats are compared above
    let mut traced_event = MemorySystem::new(cfg.with_engine(Engine::Event));
    traced_event.enable_trace();
    let _ = traced_event.run_plan(plan);
    assert_eq!(
        traced_oracle.trace().events(),
        traced_event.trace().events(),
        "{label} (trace)"
    );
}

/// Runs a raw request stream through the oracle and the event engine.
fn assert_stream_equivalent(cfg: MemConfig, stream: &[(u64, Addr, ModuleId)], label: &str) {
    let oracle = MemorySystem::new(cfg).run_requests(stream);
    let evented = MemorySystem::new(cfg.with_engine(Engine::Event)).run_requests(stream);
    assert_eq!(oracle, evented, "{label}");
}

/// Every in-order (canonical) plan a map can produce, over a spread of
/// stride families and bases — the conflicted regime the event engine
/// exists for.
fn sweep_canonical(planner: &Planner, cfg: MemConfig, label: &str) {
    for x in 0..=6u32 {
        for sigma in [1i64, 3, 7] {
            for base in [0u64, 16, 37] {
                let stride = Stride::from_parts(sigma, x).expect("odd sigma");
                let vec = VectorSpec::with_stride(base.into(), stride, 64).expect("valid");
                let plan = planner
                    .plan(&vec, Strategy::Canonical)
                    .expect("canonical always plans");
                assert_engines_equivalent(
                    cfg,
                    &plan,
                    &format!("{label} x={x} sigma={sigma} base={base}"),
                );
            }
        }
    }
}

/// Every registered map, canonical order, over the stride/base spread:
/// registering a map in the registry opts it into this sweep (and the
/// periodic-engine twin) with no test edits.
#[test]
fn every_registered_map_is_identical() {
    for spec in Registry::builtin().all_specs() {
        let planner = Planner::from_spec(&spec).expect("coverage specs are buildable");
        let cfg = MemConfig::from_spec(&spec).expect("coverage specs fit the simulator");
        sweep_canonical(&planner, cfg, &spec.to_string());
    }
}

/// Extra skew parameterizations the coverage spec does not reach
/// (degenerate skew 0 rides the interleaving path).
#[test]
fn skew_variants_are_identical() {
    let registry = Registry::builtin();
    for skew in [0u64, 1] {
        let planner = registry
            .planner(&format!("skewed:m=3,d={skew}").parse().unwrap())
            .unwrap();
        sweep_canonical(
            &planner,
            MemConfig::new(3, 3).unwrap(),
            &format!("skewed d={skew}"),
        );
    }
}

/// Out-of-order conflict-free and subsequence plans of the matched
/// map: the replay regime the canonical sweep cannot reach.
#[test]
fn xor_matched_out_of_order_plans_are_identical() {
    let spec = "xor-matched:t=3,s=4".parse().unwrap();
    let planner = Planner::from_spec(&spec).unwrap();
    let cfg = MemConfig::from_spec(&spec).unwrap();
    for x in 0..=4u32 {
        let stride = Stride::from_parts(3, x).unwrap();
        let vec = VectorSpec::with_stride(16u64.into(), stride, 128).unwrap();
        for strategy in [Strategy::ConflictFree, Strategy::Subsequence] {
            let plan = planner.plan(&vec, strategy).expect("in window");
            assert_engines_equivalent(cfg, &plan, &format!("xor-matched {strategy} x={x}"));
        }
    }
}

/// Conflict-free replay plans of the unmatched map, both windows.
#[test]
fn xor_unmatched_replay_plans_are_identical() {
    let spec = "xor-unmatched:t=3,s=4,y=9".parse().unwrap();
    let planner = Planner::from_spec(&spec).unwrap();
    let cfg = MemConfig::from_spec(&spec).unwrap();
    for x in [0u32, 4, 7, 9] {
        let stride = Stride::from_parts(3, x).unwrap();
        let vec = VectorSpec::with_stride(77u64.into(), stride, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).expect("window");
        assert_engines_equivalent(cfg, &plan, &format!("xor-unmatched cf x={x}"));
    }
}

#[test]
fn queue_depths_and_ports_are_identical() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let vec = VectorSpec::new(16, 12, 128).unwrap();
    for (q_in, q_out) in [(1usize, 1usize), (2, 1), (1, 2), (4, 4), (8, 2)] {
        let cfg = MemConfig::new(3, 3)
            .unwrap()
            .with_queues(q_in, q_out)
            .unwrap();
        for strategy in [Strategy::Canonical, Strategy::Subsequence] {
            let plan = planner.plan(&vec, strategy).unwrap();
            assert_engines_equivalent(cfg, &plan, &format!("q={q_in} q'={q_out} {strategy}"));
        }
    }
    // Multi-port memories (the fast path must not engage; the event
    // engine must model per-port issue and grant).
    let wide = Planner::baseline(Interleaved::new(6).unwrap(), 3);
    let plan = wide
        .plan(&VectorSpec::new(0, 1, 128).unwrap(), Strategy::Canonical)
        .unwrap();
    for ports in [1usize, 2, 4] {
        let cfg = MemConfig::new(6, 3).unwrap().with_ports(ports).unwrap();
        assert_engines_equivalent(cfg, &plan, &format!("ports={ports}"));
    }
}

#[test]
fn pathological_same_module_streams_are_identical() {
    // Everything lands on one module — the queueing regime the event
    // engine collapses to completion events.
    for (m, t) in [(3u32, 3u32), (3, 6), (2, 4)] {
        let cfg = MemConfig::new(m, t).unwrap();
        for len in [1u64, 2, 7, 64] {
            let stream: Vec<(u64, Addr, ModuleId)> = (0..len)
                .map(|i| (i, Addr::new(i << m), ModuleId::new(0)))
                .collect();
            assert_stream_equivalent(cfg, &stream, &format!("one-module m={m} t={t} len={len}"));
        }
        // Two modules, alternating burst lengths.
        let stream: Vec<(u64, Addr, ModuleId)> = (0..96u64)
            .map(|i| (i, Addr::new(i), ModuleId::new(u64::from(i % 13 < 7))))
            .collect();
        assert_stream_equivalent(cfg, &stream, &format!("two-module bursts m={m} t={t}"));
    }
    // Deep queues in front of one module.
    let cfg = MemConfig::new(3, 3).unwrap().with_queues(4, 2).unwrap();
    let stream: Vec<(u64, Addr, ModuleId)> = (0..64u64)
        .map(|i| (i, Addr::new(i * 8), ModuleId::new(0)))
        .collect();
    assert_stream_equivalent(cfg, &stream, "one-module deep queues");
}

#[test]
fn conflict_free_windows_mixed_with_bursts_are_identical() {
    // Alternate conflict-free rotations with bursts to module 0: the
    // stream flips between the regimes the fast path and the event
    // engine each specialise in.
    let cfg = MemConfig::new(3, 3).unwrap();
    let mut stream = Vec::new();
    let mut element = 0u64;
    for chunk in 0..8u64 {
        for i in 0..8u64 {
            let module = if chunk % 2 == 0 { i } else { 0 };
            stream.push((element, Addr::new(element), ModuleId::new(module)));
            element += 1;
        }
    }
    assert_stream_equivalent(cfg, &stream, "cf windows mixed with bursts");
}

#[test]
fn empty_and_single_request_plans_are_identical() {
    let cfg = MemConfig::new(3, 3).unwrap();
    assert_engines_equivalent(cfg, &AccessPlan::new(), "empty plan");
    let stream = [(0u64, Addr::new(5), ModuleId::new(3))];
    assert_stream_equivalent(cfg, &stream, "single request");
}

#[test]
fn event_engine_reports_same_fields_on_worst_case() {
    // Spot-check the actual numbers on the fully serialized stride so
    // a symmetric bug in both engines can't hide behind `assert_eq`.
    let planner = Planner::baseline(Interleaved::new(3).unwrap(), 3);
    let vec = VectorSpec::new(0, 8, 64).unwrap();
    let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
    let stats =
        MemorySystem::new(MemConfig::new(3, 3).unwrap().with_engine(Engine::Event)).run_plan(&plan);
    assert!(stats.latency >= 64 * 8, "latency {}", stats.latency);
    assert!(stats.conflicts > 0);
    assert!(stats.stall_cycles > 0);
    assert_eq!(stats.module_busy[0], 64 * 8);
    assert_eq!(stats.elements, 64);
}

/// The enforced performance claim: on an all-requests-one-module
/// stride (stride = M on low-order interleaving) with a long service
/// time, the event engine must beat the per-cycle loop by at least 2×.
/// The bench twin of this assertion lives in
/// `cfva-bench/benches/engines.rs`.
#[test]
fn event_engine_at_least_2x_faster_on_all_conflicts_stride() {
    // M = 8, T = 64: the cycle engine walks ~L·T ≈ 33k cycles; the
    // event engine processes ~3 cycles per T-cycle service period.
    let planner = Planner::baseline(Interleaved::new(3).unwrap(), 6);
    let vec = VectorSpec::new(0, 8, 512).unwrap();
    let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
    let cfg = MemConfig::new(3, 6).unwrap();

    let mut cycle_sys = MemorySystem::new(cfg);
    let mut event_sys = MemorySystem::new(cfg.with_engine(Engine::Event));
    let mut out = AccessStats::default();

    // Equivalence first — a fast wrong answer doesn't count.
    let reference = cycle_sys.run_plan(&plan);
    assert_eq!(reference, event_sys.run_plan(&plan));

    const ROUNDS: usize = 5;
    const RUNS: usize = 8;
    let time = |sys: &mut MemorySystem, out: &mut AccessStats| {
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..RUNS {
                    sys.run_plan_into(std::hint::black_box(&plan), out);
                }
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let cycle_time = time(&mut cycle_sys, &mut out);
    let event_time = time(&mut event_sys, &mut out);

    let speedup = cycle_time.as_secs_f64() / event_time.as_secs_f64();
    assert!(
        speedup >= 2.0,
        "event engine must be >= 2x faster than the cycle loop on an \
         all-conflicts stride, got {speedup:.2}x (cycle {cycle_time:?}, event {event_time:?})"
    );
}
