//! Equivalence suite for the periodic steady-state fast-forward engine:
//! `Engine::Periodic` (and `Engine::FastPath`, which now falls back to
//! it) must produce **bit-identical** `AccessStats` — and, where
//! traced, identical `Trace` output — to the per-cycle oracle, across
//! **every map in the registry coverage set** (a map registered in
//! `cfva_core::mapping::Registry` is swept here automatically), stride
//! families, queue depths, port counts, pathological same-module
//! streams and the long-vector regime the extrapolation targets. Plus
//! the enforced performance claim: ≥ 3× over the event engine on
//! long-vector (`len ≥ 64·P_x`) conflicted strides.

use std::time::Instant;

use cfva_core::mapping::{Interleaved, Registry, XorMatched};
use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::{Addr, ModuleId, Stride, VectorSpec};
use cfva_memsim::{AccessStats, Engine, MemConfig, MemorySystem};

/// Runs one plan through the oracle and the periodic engine (fresh and
/// reused systems) and asserts identical statistics, then compares full
/// traces cycle-for-cycle — the trace reconstruction of extrapolated
/// periods must be exact.
fn assert_periodic_equivalent(cfg: MemConfig, plan: &AccessPlan, label: &str) {
    let oracle = MemorySystem::new(cfg).run_plan(plan);

    let mut periodic = MemorySystem::new(cfg.with_engine(Engine::Periodic));
    assert_eq!(periodic.engine(), Engine::Periodic);
    let fast = periodic.run_plan(plan);
    assert_eq!(oracle, fast, "{label} (periodic engine)");
    let again = periodic.run_plan(plan);
    assert_eq!(oracle, again, "{label} (periodic engine, reused system)");

    let mut chained = MemorySystem::new(cfg.with_engine(Engine::FastPath));
    let shortcut = chained.run_plan(plan);
    assert_eq!(oracle, shortcut, "{label} (fast path over periodic)");

    let mut traced_oracle = MemorySystem::new(cfg);
    traced_oracle.enable_trace();
    let _ = traced_oracle.run_plan(plan); // run for the trace; stats are compared above
    let mut traced_periodic = MemorySystem::new(cfg.with_engine(Engine::Periodic));
    traced_periodic.enable_trace();
    let _ = traced_periodic.run_plan(plan);
    assert_eq!(
        traced_oracle.trace().events(),
        traced_periodic.trace().events(),
        "{label} (trace)"
    );
}

/// Runs a raw request stream through the oracle and the periodic
/// engine.
fn assert_stream_equivalent(cfg: MemConfig, stream: &[(u64, Addr, ModuleId)], label: &str) {
    let oracle = MemorySystem::new(cfg).run_requests(stream);
    let periodic = MemorySystem::new(cfg.with_engine(Engine::Periodic)).run_requests(stream);
    assert_eq!(oracle, periodic, "{label}");
}

/// Canonical plans over a spread of families and bases — the conflicted
/// regime the extrapolation exists for — plus the long-vector case
/// (`len = 16·P_x`) where whole periods are actually skipped.
fn sweep_canonical(planner: &Planner, cfg: MemConfig, label: &str) {
    for x in 0..=6u32 {
        for sigma in [1i64, 3, 7] {
            for base in [0u64, 16, 37] {
                let stride = Stride::from_parts(sigma, x).expect("odd sigma");
                let vec = VectorSpec::with_stride(base.into(), stride, 64).expect("valid");
                let plan = planner
                    .plan(&vec, Strategy::Canonical)
                    .expect("canonical always plans");
                assert_periodic_equivalent(
                    cfg,
                    &plan,
                    &format!("{label} x={x} sigma={sigma} base={base}"),
                );
            }
        }
    }
    // Long vectors: many whole periods beyond the transient.
    for x in [0u32, 2, 4] {
        let stride = Stride::from_parts(3, x).expect("odd sigma");
        let p = planner.map().period(stride.family());
        // Saturating: maps with no finite period (the overridden region
        // map) just get the cap.
        let len = p.saturating_mul(16).clamp(64, 4096);
        let vec = VectorSpec::with_stride(11u64.into(), stride, len).expect("valid");
        let plan = planner
            .plan(&vec, Strategy::Canonical)
            .expect("canonical always plans");
        assert_periodic_equivalent(cfg, &plan, &format!("{label} long x={x} len={len}"));
    }
}

/// Every registered map, canonical order, over the stride/base spread
/// plus the long-vector extrapolation regime: registering a map in the
/// registry opts it into this sweep with no test edits.
#[test]
fn every_registered_map_is_identical() {
    for spec in Registry::builtin().all_specs() {
        let planner = Planner::from_spec(&spec).expect("coverage specs are buildable");
        let cfg = MemConfig::from_spec(&spec).expect("coverage specs fit the simulator");
        sweep_canonical(&planner, cfg, &spec.to_string());
    }
}

/// Extra skew parameterizations the coverage spec does not reach.
#[test]
fn skew_variants_are_identical() {
    let registry = Registry::builtin();
    for skew in [0u64, 1] {
        let planner = registry
            .planner(&format!("skewed:m=3,d={skew}").parse().unwrap())
            .unwrap();
        sweep_canonical(
            &planner,
            MemConfig::new(3, 3).unwrap(),
            &format!("skewed d={skew}"),
        );
    }
}

/// Out-of-order conflict-free and subsequence plans of the matched
/// map: the replay regime the canonical sweep cannot reach.
#[test]
fn xor_matched_out_of_order_plans_are_identical() {
    let spec = "xor-matched:t=3,s=4".parse().unwrap();
    let planner = Planner::from_spec(&spec).unwrap();
    let cfg = MemConfig::from_spec(&spec).unwrap();
    for x in 0..=4u32 {
        let stride = Stride::from_parts(3, x).unwrap();
        let vec = VectorSpec::with_stride(16u64.into(), stride, 128).unwrap();
        for strategy in [Strategy::ConflictFree, Strategy::Subsequence] {
            let plan = planner.plan(&vec, strategy).expect("in window");
            assert_periodic_equivalent(cfg, &plan, &format!("xor-matched {strategy} x={x}"));
        }
    }
}

/// Conflict-free replay plans of the unmatched map, both windows.
#[test]
fn xor_unmatched_replay_plans_are_identical() {
    let spec = "xor-unmatched:t=3,s=4,y=9".parse().unwrap();
    let planner = Planner::from_spec(&spec).unwrap();
    let cfg = MemConfig::from_spec(&spec).unwrap();
    for x in [0u32, 4, 7, 9] {
        let stride = Stride::from_parts(3, x).unwrap();
        let vec = VectorSpec::with_stride(77u64.into(), stride, 128).unwrap();
        let plan = planner.plan(&vec, Strategy::ConflictFree).expect("window");
        assert_periodic_equivalent(cfg, &plan, &format!("xor-unmatched cf x={x}"));
    }
}

#[test]
fn queue_depths_and_ports_are_identical() {
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let vec = VectorSpec::new(16, 12, 512).unwrap();
    for (q_in, q_out) in [(1usize, 1usize), (2, 1), (1, 2), (4, 4), (8, 2)] {
        let cfg = MemConfig::new(3, 3)
            .unwrap()
            .with_queues(q_in, q_out)
            .unwrap();
        for strategy in [Strategy::Canonical, Strategy::Subsequence] {
            let plan = planner.plan(&vec, strategy).unwrap();
            assert_periodic_equivalent(cfg, &plan, &format!("q={q_in} q'={q_out} {strategy}"));
        }
    }
    // Multi-port memories: boundary detection is request-anchored, so
    // the periodic engine must run these as plain event simulations —
    // still bit-identical.
    let wide = Planner::baseline(Interleaved::new(6).unwrap(), 3);
    let plan = wide
        .plan(&VectorSpec::new(0, 1, 128).unwrap(), Strategy::Canonical)
        .unwrap();
    for ports in [1usize, 2, 4] {
        let cfg = MemConfig::new(6, 3).unwrap().with_ports(ports).unwrap();
        assert_periodic_equivalent(cfg, &plan, &format!("ports={ports}"));
    }
}

#[test]
fn pathological_same_module_streams_are_identical() {
    // Everything lands on one module: period 1, steady state after the
    // queue fills — the deepest extrapolation regime.
    for (m, t) in [(3u32, 3u32), (3, 6), (2, 4)] {
        let cfg = MemConfig::new(m, t).unwrap();
        for len in [1u64, 2, 7, 64, 1024] {
            let stream: Vec<(u64, Addr, ModuleId)> = (0..len)
                .map(|i| (i, Addr::new(i << m), ModuleId::new(0)))
                .collect();
            assert_stream_equivalent(cfg, &stream, &format!("one-module m={m} t={t} len={len}"));
        }
        // Two modules, alternating burst lengths (period 13).
        let stream: Vec<(u64, Addr, ModuleId)> = (0..512u64)
            .map(|i| (i, Addr::new(i), ModuleId::new(u64::from(i % 13 < 7))))
            .collect();
        assert_stream_equivalent(cfg, &stream, &format!("two-module bursts m={m} t={t}"));
    }
    // Deep queues in front of one module.
    let cfg = MemConfig::new(3, 3).unwrap().with_queues(4, 2).unwrap();
    let stream: Vec<(u64, Addr, ModuleId)> = (0..512u64)
        .map(|i| (i, Addr::new(i * 8), ModuleId::new(0)))
        .collect();
    assert_stream_equivalent(cfg, &stream, "one-module deep queues");
}

#[test]
fn aperiodic_and_tiny_streams_are_identical() {
    let cfg = MemConfig::new(3, 3).unwrap();
    assert_periodic_equivalent(cfg, &AccessPlan::new(), "empty plan");
    let stream = [(0u64, Addr::new(5), ModuleId::new(3))];
    assert_stream_equivalent(cfg, &stream, "single request");
    // An aperiodic module sequence: detection never fires, the run is a
    // plain event simulation.
    let stream: Vec<(u64, Addr, ModuleId)> = (0..64u64)
        .map(|i| (i, Addr::new(i), ModuleId::new((i * i + i / 3) % 8)))
        .collect();
    assert_stream_equivalent(cfg, &stream, "aperiodic stream");
    // Periodic but with a one-off perturbation: the module sequence's
    // minimal period degenerates to ~n, so no extrapolation applies.
    let stream: Vec<(u64, Addr, ModuleId)> = (0..96u64)
        .map(|i| {
            let m = if i == 61 { 5 } else { i % 4 };
            (i, Addr::new(i), ModuleId::new(m))
        })
        .collect();
    assert_stream_equivalent(cfg, &stream, "perturbed periodic stream");
}

#[test]
fn non_pow2_lengths_leave_a_tail_to_simulate() {
    // Lengths that are not multiples of the period exercise the tail
    // resume after fast-forwarding: the in-flight queue contents must
    // be remapped onto the correct late-stream requests.
    let planner = Planner::baseline(Interleaved::new(3).unwrap(), 3);
    let cfg = MemConfig::new(3, 3).unwrap();
    for len in [65u64, 100, 250, 1000, 1023] {
        for stride in [2i64, 4, 8] {
            let vec = VectorSpec::new(5, stride, len).unwrap();
            let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
            assert_periodic_equivalent(cfg, &plan, &format!("tail len={len} stride={stride}"));
        }
    }
}

/// The enforced performance claim of the periodic engine: on a
/// long-vector conflicted stride (`len ≥ 64·P_x`), it must beat the
/// event-queue engine by at least 3×. The bench twin lives in
/// `cfva-bench/benches/periodic.rs`.
#[test]
fn periodic_engine_at_least_3x_faster_on_long_conflicted_stride() {
    // Stride 12 (family x = 2) in canonical order on the eq. (1) map:
    // conflicted but not serialized — the regime where the event engine
    // still processes nearly every cycle. P_x = 2^{4+3-2} = 32;
    // len = 64 · P_x = 2048.
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let vec = VectorSpec::new(16, 12, 2048).unwrap();
    let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
    let cfg = MemConfig::new(3, 3).unwrap();
    assert_speedup(cfg, &plan, 3.0, "long conflicted stride (x=2 canonical)");

    // And the fully serialized worst case: stride = M on low-order
    // interleaving (period 1), long service time.
    let planner = Planner::baseline(Interleaved::new(3).unwrap(), 6);
    let vec = VectorSpec::new(0, 8, 4096).unwrap();
    let plan = planner.plan(&vec, Strategy::Canonical).unwrap();
    let cfg = MemConfig::new(3, 6).unwrap();
    assert_speedup(cfg, &plan, 3.0, "all-conflicts one-module stride");
}

fn assert_speedup(cfg: MemConfig, plan: &AccessPlan, min: f64, label: &str) {
    let mut event_sys = MemorySystem::new(cfg.with_engine(Engine::Event));
    let mut periodic_sys = MemorySystem::new(cfg.with_engine(Engine::Periodic));
    let mut out = AccessStats::default();

    // Equivalence first — a fast wrong answer doesn't count.
    let reference = MemorySystem::new(cfg).run_plan(plan);
    assert_eq!(reference, event_sys.run_plan(plan), "{label}: event");
    assert_eq!(reference, periodic_sys.run_plan(plan), "{label}: periodic");

    const ROUNDS: usize = 5;
    const RUNS: usize = 8;
    let time = |sys: &mut MemorySystem, out: &mut AccessStats| {
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..RUNS {
                    sys.run_plan_into(std::hint::black_box(plan), out);
                }
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let event_time = time(&mut event_sys, &mut out);
    let periodic_time = time(&mut periodic_sys, &mut out);

    let speedup = event_time.as_secs_f64() / periodic_time.as_secs_f64();
    assert!(
        speedup >= min,
        "{label}: periodic engine must be >= {min}x faster than the event \
         engine, got {speedup:.2}x (event {event_time:?}, periodic {periodic_time:?})"
    );
}
