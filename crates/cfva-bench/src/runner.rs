//! One-call planner + simulator measurements.

use cfva_core::plan::{Planner, Strategy};
use cfva_core::VectorSpec;
use cfva_memsim::{AccessStats, MemConfig, MemorySystem};
use rand::Rng;

use crate::workload::StrideSampler;

/// Plans and simulates one vector access.
///
/// Falls back per [`Strategy::Auto`] semantics if the requested strategy
/// cannot serve the access *and* `strategy` is `Auto`; otherwise
/// planning errors propagate as `None` (callers decide how to count
/// unservable accesses).
pub fn measure(
    planner: &Planner,
    vec: &VectorSpec,
    strategy: Strategy,
    mem: MemConfig,
) -> Option<AccessStats> {
    let plan = planner.plan(vec, strategy).ok()?;
    Some(MemorySystem::new(mem).run_plan(&plan))
}

/// Steady-state service cycles per element of one access: the latency
/// minus the fixed startup (`T + 1`), divided by the element count.
/// Equals 1.0 for a conflict-free access.
pub fn cycles_per_element(stats: &AccessStats, mem: MemConfig) -> f64 {
    (stats.latency - mem.t_cycles() - 1) as f64 / stats.elements as f64
}

/// Monte-Carlo estimate of the paper's Section 5B efficiency `η`: the
/// reciprocal of the population-average service cycles per element,
/// with strides sampled from the family distribution.
pub fn simulated_efficiency<R: Rng + ?Sized>(
    planner: &Planner,
    strategy: Strategy,
    mem: MemConfig,
    len: u64,
    samples: u32,
    sampler: &StrideSampler,
    rng: &mut R,
) -> f64 {
    let mut total_cpe = 0.0;
    for _ in 0..samples {
        let vec = sampler.sample_vector(rng, 1 << 24, len);
        let stats = measure(planner, &vec, strategy, mem)
            .expect("auto/canonical strategies always plan");
        total_cpe += cycles_per_element(&stats, mem);
    }
    samples as f64 / total_cpe
}

/// Stratified estimate of the Section 5B efficiency `η`: measures the
/// service cycles per element of each family `x ≤ max_x` directly
/// (averaged over `per_family` random σ/base draws) and combines them
/// with the exact family weights `2^-(x+1)`. The truncated tail
/// (`x > max_x`) reuses the `max_x` measurement, exact once the
/// per-family cost has saturated at `2^t` (i.e. `max_x ≥ w + t`).
///
/// Far lower variance than the plain Monte-Carlo estimator: the
/// geometric tail is weighted analytically instead of sampled.
pub fn stratified_efficiency<R: Rng + ?Sized>(
    planner: &Planner,
    strategy: Strategy,
    mem: MemConfig,
    len: u64,
    max_x: u32,
    per_family: u32,
    rng: &mut R,
) -> f64 {
    let mut avg_cpe = 0.0;
    let mut last_family_cpe = 1.0;
    for x in 0..=max_x {
        let mut family_cpe = 0.0;
        for _ in 0..per_family {
            let sigma = 2 * rng.gen_range(0i64..8) + 1;
            let base = rng.gen_range(0u64..1 << 24);
            let stride =
                cfva_core::Stride::from_parts(sigma, x).expect("odd sigma, bounded x");
            let vec = VectorSpec::with_stride(base.into(), stride, len).expect("valid");
            let stats =
                measure(planner, &vec, strategy, mem).expect("strategy always plans");
            family_cpe += cycles_per_element(&stats, mem);
        }
        family_cpe /= per_family as f64;
        let weight = 0.5f64.powi(x as i32 + 1);
        avg_cpe += weight * family_cpe;
        last_family_cpe = family_cpe;
    }
    // Fold the truncated tail (total weight 2^-(max_x+1)) into the last
    // measured family, whose cost has saturated.
    avg_cpe += 0.5f64.powi(max_x as i32 + 1) * last_family_cpe;
    1.0 / avg_cpe
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfva_core::mapping::XorMatched;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measure_conflict_free() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(16, 12, 64).unwrap();
        let mem = MemConfig::new(3, 3).unwrap();
        let stats = measure(&planner, &vec, Strategy::ConflictFree, mem).unwrap();
        assert_eq!(stats.latency, 73);
        assert_eq!(cycles_per_element(&stats, mem), 1.0);
    }

    #[test]
    fn measure_returns_none_for_unplannable() {
        let planner = Planner::matched(XorMatched::new(3, 3).unwrap());
        let vec = VectorSpec::new(0, 16, 64).unwrap(); // x = 4 > s
        let mem = MemConfig::new(3, 3).unwrap();
        assert!(measure(&planner, &vec, Strategy::ConflictFree, mem).is_none());
        assert!(measure(&planner, &vec, Strategy::Auto, mem).is_some());
    }

    #[test]
    fn simulated_efficiency_close_to_analytic_for_proposed_scheme() {
        // Small config for speed: t = 2, λ = 6, s = λ−t = 4.
        let planner = Planner::matched(XorMatched::new(2, 4).unwrap());
        let mem = MemConfig::new(2, 2).unwrap();
        let sampler = StrideSampler::new(10, 9);
        let mut rng = StdRng::seed_from_u64(3);
        let eta = simulated_efficiency(
            &planner,
            Strategy::Auto,
            mem,
            64,
            400,
            &sampler,
            &mut rng,
        );
        let analytic = cfva_core::analysis::efficiency(4, 2);
        assert!(
            (eta - analytic).abs() < 0.05,
            "simulated {eta} vs analytic {analytic}"
        );
    }

    #[test]
    fn stratified_efficiency_tracks_analytic_closely() {
        let planner = Planner::matched(XorMatched::new(2, 4).unwrap());
        let mem = MemConfig::new(2, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let eta =
            stratified_efficiency(&planner, Strategy::Auto, mem, 64, 8, 4, &mut rng);
        let analytic = cfva_core::analysis::efficiency(4, 2);
        assert!(
            (eta - analytic).abs() < 0.03,
            "stratified {eta} vs analytic {analytic}"
        );
    }
}
