//! # cfva-bench — experiment harness
//!
//! Regenerates every figure and quantitative claim of the paper's
//! evaluation. The [`experiments`] module holds one runner per artifact
//! (see DESIGN.md §4 for the index); the `experiments` binary prints
//! them:
//!
//! ```text
//! cargo run -p cfva-bench --release --bin experiments -- all
//! cargo run -p cfva-bench --release --bin experiments -- eff
//! ```
//!
//! The [`workload`] module samples strides from the paper's population
//! model (family `x` with probability `2^-(x+1)`), and [`runner`] wraps
//! planner + simulator into one-call measurements.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod runner;
pub mod table;
pub mod workload;
