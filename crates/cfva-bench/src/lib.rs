//! # cfva-bench — experiment harness
//!
//! Regenerates every figure and quantitative claim of the paper's
//! evaluation. The [`experiments`] module holds one runner per artifact
//! (see DESIGN.md §4 for the index); the `experiments` binary prints
//! them:
//!
//! ```text
//! cargo run -p cfva-bench --release --bin experiments -- all
//! cargo run -p cfva-bench --release --bin experiments -- eff
//! ```
//!
//! The [`workload`] module samples strides from the paper's population
//! model (family `x` with probability `2^-(x+1)`), and [`runner`] wraps
//! planner + simulator into one-call measurements. Both live in (and
//! are re-exported from) the `cfva-serve` crate since PR 5, so the
//! experiment harness, the criterion benches and the request-serving
//! front end all measure through **one** execution substrate — the
//! work-stealing session pool in `cfva_serve::pool`.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub use cfva_serve::runner;
pub use cfva_serve::workload;

pub mod experiments;
pub mod table;
