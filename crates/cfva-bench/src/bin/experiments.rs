//! Regenerates every figure and quantitative claim of the paper, and
//! sweeps runtime-selected maps.
//!
//! ```text
//! experiments                          # list available experiments
//! experiments all                      # run everything
//! experiments eff lat                  # run a subset
//! experiments --map skewed:m=3,d=1     # sweep a map chosen by spec string
//! experiments --map all --len 32       # every registered map, same strides
//! experiments serve-demo --workers 2 --clients 3   # drive the service
//! ```
//!
//! `--map` takes any spec the mapping registry understands (see the
//! README's *Choosing a map at runtime*), with optional `--len`,
//! `--max-x` and `--sigma` sweep parameters. A malformed or
//! unconstructible spec exits nonzero with a diagnostic naming the
//! offending key/value (or listing the registered maps).
//!
//! `serve-demo` drives the `cfva-serve` request service with a mixed
//! multi-client workload (flags: `--workers`, `--clients`,
//! `--requests` per client, `--queue` admission capacity, `--window`
//! in-flight per client) and prints throughput, latency percentiles
//! and the service's result-cache counters. `--require-rejections`
//! exits nonzero unless the run saw at least one `Overloaded`
//! rejection — CI uses it to prove an over-capacity burst
//! backpressures instead of deadlocking. `--require-cache-hits` exits
//! nonzero unless the result cache served at least one hit — CI uses
//! it (with `--requests` ≥ 31, so the pinned request repeats) to prove
//! the cached serve path engages under a live mixed workload.
//! `--inject-faults <seed>` installs a seeded chaos plan (worker
//! kills, job panics, queue bursts, cache poisoning) and
//! `--require-recovery` exits nonzero unless the run absorbed it
//! cleanly: no lost tickets, no failed requests, and the plan
//! demonstrably fired — CI's chaos smoke.
//!
//! `contention` sweeps multi-stream co-runs across module counts and
//! stride families (flags: `--streams` per co-run, `--len` elements
//! per stream) and prints the simulated makespan of conflict-aware
//! wave pairing against naive FIFO pairing and the sequential
//! baseline. `--require-speedup` exits nonzero unless conflict-aware
//! beat FIFO on every row and sequential on every row — CI's
//! scheduling smoke.

use std::process::ExitCode;

use cfva_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--map") {
        return run_map_sweep(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve-demo") {
        return run_serve_demo(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("contention") {
        return run_contention(&args[1..]);
    }

    if args.is_empty() {
        println!("Reproduction harness for Valero et al., ISCA 1992.\n");
        println!("Usage: experiments [all | <id>...]");
        println!("       experiments --map <spec|all> [--len N] [--max-x N] [--sigma N]");
        println!(
            "       experiments serve-demo [--workers N] [--clients N] [--requests N] \
             [--queue N] [--window N] [--inject-faults SEED] [--tcp] \
             [--require-rejections] [--require-cache-hits] [--require-recovery] \
             [--require-no-loss]"
        );
        println!("       experiments contention [--streams N] [--len N] [--require-speedup]\n");
        println!("Available experiments:");
        for e in experiments::all() {
            println!("  {:<8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }

    let run_all = args.iter().any(|a| a == "all");
    let mut failed = false;

    if run_all {
        for e in experiments::all() {
            banner(e.id, e.title);
            println!("{}", (e.run)());
        }
    } else {
        for id in &args {
            match experiments::run_by_id(id) {
                Some(report) => {
                    let title = experiments::all()
                        .into_iter()
                        .find(|e| e.id == id)
                        .map(|e| e.title)
                        .unwrap_or_default();
                    banner(id, title);
                    println!("{report}");
                }
                None => {
                    eprintln!("unknown experiment id: {id}");
                    failed = true;
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--map <spec>` with optional `--len`, `--max-x`, `--sigma` flags:
/// parse, sweep, and turn any spec error into a diagnostic + nonzero
/// exit (never a panic — the spec is user input).
fn run_map_sweep(args: &[String]) -> ExitCode {
    let Some(spec) = args.first() else {
        eprintln!("--map requires a spec argument, e.g. --map skewed:m=3,d=1");
        return ExitCode::FAILURE;
    };

    let mut len = 64u64;
    let mut max_x = 7u32;
    let mut sigma = 3i64;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let Some(value) = rest.next() else {
            eprintln!("flag {flag} requires a value");
            return ExitCode::FAILURE;
        };
        let parsed = match flag.as_str() {
            "--len" => value.parse().map(|v| len = v).is_ok(),
            "--max-x" => value.parse().map(|v| max_x = v).is_ok(),
            "--sigma" => value.parse().map(|v| sigma = v).is_ok(),
            _ => {
                eprintln!("unknown flag {flag} (expected --len, --max-x or --sigma)");
                return ExitCode::FAILURE;
            }
        };
        if !parsed {
            eprintln!("flag {flag} = {value} is not a number");
            return ExitCode::FAILURE;
        }
    }
    if sigma % 2 == 0 {
        eprintln!("--sigma must be odd (strides are sigma * 2^x)");
        return ExitCode::FAILURE;
    }

    match experiments::map_sweep(spec, len, max_x, sigma) {
        Ok(report) => {
            banner("map", &format!("Runtime map sweep: {spec}"));
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `serve-demo` with sizing flags: drive the request service with a
/// mixed multi-client workload. `--require-rejections` makes a run
/// without a single `Overloaded` rejection exit nonzero (the CI
/// over-capacity burst must prove backpressure engaged);
/// `--require-cache-hits` does the same for a run whose result cache
/// never hit (the CI cached-path smoke must prove the O(1) path
/// engaged). `--tcp` routes the same workload through a loopback
/// [`WireServer`](cfva_wire::server::WireServer), and
/// `--require-no-loss` asserts the conservation law
/// `completed + rejected + failed == attempted` — the CI wire smoke's
/// proof that the drain path flushes every accepted ticket.
fn run_serve_demo(args: &[String]) -> ExitCode {
    let mut config = experiments::serve_demo::DemoConfig::default();
    let mut require_rejections = false;
    let mut require_cache_hits = false;
    let mut require_recovery = false;
    let mut require_no_loss = false;
    let mut rest = args.iter();
    while let Some(flag) = rest.next() {
        if flag == "--require-rejections" {
            require_rejections = true;
            continue;
        }
        if flag == "--require-cache-hits" {
            require_cache_hits = true;
            continue;
        }
        if flag == "--require-recovery" {
            require_recovery = true;
            continue;
        }
        if flag == "--require-no-loss" {
            require_no_loss = true;
            continue;
        }
        if flag == "--tcp" {
            config.tcp = true;
            continue;
        }
        let Some(value) = rest.next() else {
            eprintln!("flag {flag} requires a value");
            return ExitCode::FAILURE;
        };
        let parsed = match flag.as_str() {
            "--workers" => value.parse().map(|v| config.workers = v).is_ok(),
            "--clients" => value.parse().map(|v| config.clients = v).is_ok(),
            "--requests" => value
                .parse()
                .map(|v| config.requests_per_client = v)
                .is_ok(),
            "--queue" => value.parse().map(|v| config.queue_capacity = v).is_ok(),
            "--window" => value.parse().map(|v| config.window = v).is_ok(),
            "--inject-faults" => value.parse().map(|v| config.fault_seed = Some(v)).is_ok(),
            _ => {
                eprintln!(
                    "unknown flag {flag} (expected --workers, --clients, --requests, \
                     --queue, --window, --inject-faults, --tcp, --require-rejections, \
                     --require-cache-hits, --require-recovery or --require-no-loss)"
                );
                return ExitCode::FAILURE;
            }
        };
        if !parsed {
            eprintln!("flag {flag} = {value} is not a number");
            return ExitCode::FAILURE;
        }
    }
    if config.workers == 0 || config.clients == 0 || config.queue_capacity == 0 {
        eprintln!("--workers, --clients and --queue must be at least 1");
        return ExitCode::FAILURE;
    }
    config.window = config.window.max(1);

    let outcome = experiments::serve_demo::serve_demo(&config);
    banner("serve", "Serve demo: mixed multi-client workload");
    println!("{}", outcome.report);
    if outcome.failed > 0 {
        eprintln!("error: {} request(s) failed", outcome.failed);
        return ExitCode::FAILURE;
    }
    if require_rejections && outcome.rejected == 0 {
        eprintln!(
            "error: --require-rejections set, but no request was rejected \
             (backpressure never engaged)"
        );
        return ExitCode::FAILURE;
    }
    if require_cache_hits && outcome.stats.cache.is_none_or(|c| c.hits == 0) {
        eprintln!(
            "error: --require-cache-hits set, but the result cache never hit \
             (the O(1) serve path never engaged; use --requests >= 31 so the \
             pinned request repeats)"
        );
        return ExitCode::FAILURE;
    }
    if require_recovery {
        let attempted = (config.clients * config.requests_per_client) as u64;
        if config.fault_seed.is_none() {
            eprintln!("error: --require-recovery needs --inject-faults <seed>");
            return ExitCode::FAILURE;
        }
        if outcome.completed + outcome.rejected != attempted {
            eprintln!(
                "error: --require-recovery set, but {} of {attempted} request(s) \
                 were lost (neither completed nor rejected)",
                attempted - outcome.completed - outcome.rejected
            );
            return ExitCode::FAILURE;
        }
        if outcome.stats.faults_injected == 0 {
            eprintln!(
                "error: --require-recovery set, but the fault plan never fired \
                 (nothing was recovered from)"
            );
            return ExitCode::FAILURE;
        }
    }
    if require_no_loss {
        let attempted = (config.clients * config.requests_per_client) as u64;
        let accounted = outcome.completed + outcome.rejected + outcome.failed;
        if accounted != attempted {
            eprintln!(
                "error: --require-no-loss set, but {} of {attempted} request(s) \
                 vanished (neither completed, rejected nor failed) — the drain \
                 path lost tickets",
                attempted - accounted
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `contention` with sizing flags: sweep conflict-aware against FIFO
/// wave pairing across module counts and stride families.
/// `--require-speedup` makes any row where conflict-aware failed to
/// beat both FIFO and the sequential baseline exit nonzero — CI's
/// proof that predicted-conflict batching buys real contended
/// throughput.
fn run_contention(args: &[String]) -> ExitCode {
    let mut config = experiments::contention::ContentionConfig::default();
    let mut require_speedup = false;
    let mut rest = args.iter();
    while let Some(flag) = rest.next() {
        if flag == "--require-speedup" {
            require_speedup = true;
            continue;
        }
        let Some(value) = rest.next() else {
            eprintln!("flag {flag} requires a value");
            return ExitCode::FAILURE;
        };
        let parsed = match flag.as_str() {
            "--streams" => value.parse().map(|v| config.streams = v).is_ok(),
            "--len" => value.parse().map(|v| config.len = v).is_ok(),
            _ => {
                eprintln!("unknown flag {flag} (expected --streams, --len or --require-speedup)");
                return ExitCode::FAILURE;
            }
        };
        if !parsed {
            eprintln!("flag {flag} = {value} is not a number");
            return ExitCode::FAILURE;
        }
    }

    let outcome = experiments::contention::contention(&config);
    banner(
        "contention",
        "Multi-stream scheduling: conflict-aware vs FIFO",
    );
    println!("{}", outcome.report);
    if require_speedup
        && (outcome.fifo_wins < outcome.rows || outcome.sequential_wins < outcome.rows)
    {
        eprintln!(
            "error: --require-speedup set, but conflict-aware only beat FIFO on {}/{} \
             rows and sequential on {}/{} (the scheduling win regressed)",
            outcome.fifo_wins, outcome.rows, outcome.sequential_wins, outcome.rows
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn banner(id: &str, title: &str) {
    println!("{}", "=".repeat(78));
    println!("[{id}] {title}");
    println!("{}", "=".repeat(78));
}
