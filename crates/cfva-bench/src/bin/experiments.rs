//! Regenerates every figure and quantitative claim of the paper.
//!
//! ```text
//! experiments            # list available experiments
//! experiments all        # run everything
//! experiments eff lat    # run a subset
//! ```

use std::process::ExitCode;

use cfva_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.is_empty() {
        println!("Reproduction harness for Valero et al., ISCA 1992.\n");
        println!("Usage: experiments [all | <id>...]\n");
        println!("Available experiments:");
        for e in experiments::all() {
            println!("  {:<8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }

    let run_all = args.iter().any(|a| a == "all");
    let mut failed = false;

    if run_all {
        for e in experiments::all() {
            banner(e.id, e.title);
            println!("{}", (e.run)());
        }
    } else {
        for id in &args {
            match experiments::run_by_id(id) {
                Some(report) => {
                    let title = experiments::all()
                        .into_iter()
                        .find(|e| e.id == id)
                        .map(|e| e.title)
                        .unwrap_or_default();
                    banner(id, title);
                    println!("{report}");
                }
                None => {
                    eprintln!("unknown experiment id: {id}");
                    failed = true;
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn banner(id: &str, title: &str) {
    println!("{}", "=".repeat(78));
    println!("[{id}] {title}");
    println!("{}", "=".repeat(78));
}
