//! Regenerates every figure and quantitative claim of the paper, and
//! sweeps runtime-selected maps.
//!
//! ```text
//! experiments                          # list available experiments
//! experiments all                      # run everything
//! experiments eff lat                  # run a subset
//! experiments --map skewed:m=3,d=1     # sweep a map chosen by spec string
//! experiments --map all --len 32       # every registered map, same strides
//! ```
//!
//! `--map` takes any spec the mapping registry understands (see the
//! README's *Choosing a map at runtime*), with optional `--len`,
//! `--max-x` and `--sigma` sweep parameters. A malformed or
//! unconstructible spec exits nonzero with a diagnostic naming the
//! offending key/value (or listing the registered maps).

use std::process::ExitCode;

use cfva_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--map") {
        return run_map_sweep(&args[1..]);
    }

    if args.is_empty() {
        println!("Reproduction harness for Valero et al., ISCA 1992.\n");
        println!("Usage: experiments [all | <id>...]");
        println!("       experiments --map <spec|all> [--len N] [--max-x N] [--sigma N]\n");
        println!("Available experiments:");
        for e in experiments::all() {
            println!("  {:<8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }

    let run_all = args.iter().any(|a| a == "all");
    let mut failed = false;

    if run_all {
        for e in experiments::all() {
            banner(e.id, e.title);
            println!("{}", (e.run)());
        }
    } else {
        for id in &args {
            match experiments::run_by_id(id) {
                Some(report) => {
                    let title = experiments::all()
                        .into_iter()
                        .find(|e| e.id == id)
                        .map(|e| e.title)
                        .unwrap_or_default();
                    banner(id, title);
                    println!("{report}");
                }
                None => {
                    eprintln!("unknown experiment id: {id}");
                    failed = true;
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--map <spec>` with optional `--len`, `--max-x`, `--sigma` flags:
/// parse, sweep, and turn any spec error into a diagnostic + nonzero
/// exit (never a panic — the spec is user input).
fn run_map_sweep(args: &[String]) -> ExitCode {
    let Some(spec) = args.first() else {
        eprintln!("--map requires a spec argument, e.g. --map skewed:m=3,d=1");
        return ExitCode::FAILURE;
    };

    let mut len = 64u64;
    let mut max_x = 7u32;
    let mut sigma = 3i64;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let Some(value) = rest.next() else {
            eprintln!("flag {flag} requires a value");
            return ExitCode::FAILURE;
        };
        let parsed = match flag.as_str() {
            "--len" => value.parse().map(|v| len = v).is_ok(),
            "--max-x" => value.parse().map(|v| max_x = v).is_ok(),
            "--sigma" => value.parse().map(|v| sigma = v).is_ok(),
            _ => {
                eprintln!("unknown flag {flag} (expected --len, --max-x or --sigma)");
                return ExitCode::FAILURE;
            }
        };
        if !parsed {
            eprintln!("flag {flag} = {value} is not a number");
            return ExitCode::FAILURE;
        }
    }
    if sigma % 2 == 0 {
        eprintln!("--sigma must be odd (strides are sigma * 2^x)");
        return ExitCode::FAILURE;
    }

    match experiments::map_sweep(spec, len, max_x, sigma) {
        Ok(report) => {
            banner("map", &format!("Runtime map sweep: {spec}"));
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn banner(id: &str, title: &str) {
    println!("{}", "=".repeat(78));
    println!("[{id}] {title}");
    println!("{}", "=".repeat(78));
}
