//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use cfva_bench::table::Table;
///
/// let mut t = Table::new(&["x", "latency", "paper"]);
/// t.row(&["0", "73", "73"]);
/// t.row(&["5", "137", "-"]);
/// let text = t.render();
/// assert!(text.contains("latency"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == cols {
                    let _ = write!(out, "{cell}");
                } else {
                    let _ = write!(out, "{cell:<width$}  ");
                }
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("xxx  "));
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["n"]);
        t.row_owned(vec![format!("{}", 42)]);
        assert!(t.render().contains("42"));
    }
}
