//! `contention`: the multi-stream scheduling sweep — conflict-aware
//! wave pairing against naive FIFO pairing across module counts and
//! stride families.
//!
//! For each `interleaved:m` map and power-of-two stride `2^x`, the
//! sweep builds an **adversarial arrival order**: streams arrive in
//! pairs that share a base residue mod `2^x`, i.e. pairs that cover the
//! *same* modules. Naive FIFO width-2 waves co-run exactly those
//! clashing pairs; the conflict-aware planner scores the window with
//! the occupancy-signature predictor
//! ([`cfva_core::equiv::conflict_score`]) and re-pairs across residues
//! into conflict-free waves. The report prints, per row, the simulated
//! makespans of both plans, the sequential (one-at-a-time) baseline,
//! and the two ratios that matter: FIFO over conflict-aware (the
//! scheduling win) and conflict-aware over sequential (the co-run
//! payoff — below 1.0 means co-running beat serial service).
//!
//! The `--require-speedup` CLI flag turns the sweep into a smoke test:
//! it exits nonzero unless the conflict-aware plan beat FIFO on every
//! row (and beat the sequential baseline on every row where a win is
//! possible), so CI catches a scheduling regression with one cheap
//! deterministic run.

use cfva_core::plan::Strategy;
use cfva_core::VectorSpec;
use cfva_memsim::IssuePolicy;
use cfva_serve::api::{Request, Response, SchedulePlan};
use cfva_serve::service::{Service, ServiceConfig};

use crate::table::Table;

/// Sweep sizing, straight from the `contention` CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionConfig {
    /// Streams per co-run (rounded down to an even count, min 4).
    pub streams: usize,
    /// Elements per stream.
    pub len: u64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            streams: 8,
            len: 1024,
        }
    }
}

/// What the sweep measured (the caller renders or asserts on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionOutcome {
    /// Rows swept (map × stride family).
    pub rows: usize,
    /// Rows where the conflict-aware makespan beat FIFO's.
    pub fifo_wins: usize,
    /// Rows where the conflict-aware makespan also beat running the
    /// streams one at a time.
    pub sequential_wins: usize,
    /// The rendered report.
    pub report: String,
}

/// Adversarial arrival order: pair `p` holds two streams whose bases
/// are congruent mod `stride` (they cover the same modules of an
/// interleaved map), so FIFO width-2 waves co-run clashing pairs while
/// a re-pairing planner can cross residues.
fn adversarial_streams(count: usize, stride: u64, len: u64) -> Vec<VectorSpec> {
    let mut streams = Vec::with_capacity(count);
    for i in 0..count {
        let pair = (i / 2) as u64;
        let half = (i % 2) as u64;
        let base = (pair % stride) + half * stride + 2 * stride * (pair / stride);
        streams.push(VectorSpec::new(base, stride as i64, len).expect("power-of-two stride"));
    }
    streams
}

fn co_run(
    service: &Service,
    spec: &str,
    streams: &[VectorSpec],
    schedule: SchedulePlan,
) -> (u64, u64) {
    let response = service
        .submit_uncached(Request::MultiStream {
            spec: spec.into(),
            streams: streams.to_vec(),
            strategy: Strategy::Auto,
            policy: IssuePolicy::RoundRobin,
            schedule,
        })
        .expect("queue sized to the sweep")
        .wait()
        .expect("interleaved specs and power-of-two strides are valid");
    match response {
        Response::MultiStream(outcome) => (outcome.makespan, outcome.sequential_baseline),
        other => panic!("unexpected response {other:?}"),
    }
}

/// Runs the sweep and renders the report.
pub fn contention(config: &ContentionConfig) -> ContentionOutcome {
    let count = (config.streams & !1).max(4);
    let len = config.len.max(16);
    let service = Service::new(ServiceConfig::with_workers(1));

    let mut table = Table::new(&[
        "map",
        "stride",
        "streams",
        "sequential",
        "fifo",
        "aware",
        "fifo/aware",
        "aware/seq",
    ]);
    let mut rows = 0usize;
    let mut fifo_wins = 0usize;
    let mut sequential_wins = 0usize;
    for m in 2u32..=4 {
        let spec = format!("interleaved:m={m}");
        for x in 1u32..=3 {
            let stride = 1u64 << x;
            let streams = adversarial_streams(count, stride, len);
            let (fifo, _) = co_run(
                &service,
                &spec,
                &streams,
                SchedulePlan::FifoWaves { width: 2 },
            );
            let (aware, sequential) = co_run(
                &service,
                &spec,
                &streams,
                SchedulePlan::ConflictAware {
                    width: 2,
                    max_score_milli: 0,
                },
            );
            rows += 1;
            if aware < fifo {
                fifo_wins += 1;
            }
            if aware < sequential {
                sequential_wins += 1;
            }
            table.row_owned(vec![
                spec.clone(),
                stride.to_string(),
                count.to_string(),
                sequential.to_string(),
                fifo.to_string(),
                aware.to_string(),
                format!("{:.2}", fifo as f64 / aware as f64),
                format!("{:.2}", aware as f64 / sequential as f64),
            ]);
        }
    }
    service.shutdown();

    let report = format!(
        "Multi-stream contention sweep: {count} streams of {len} elements, co-run two at a\n\
         time in an adversarial arrival order (neighbours share their covered modules).\n\
         `fifo` pairs arrivals as-is; `aware` re-pairs by predicted conflict score.\n\
         Makespans are simulated cycles; `fifo/aware` > 1 is the scheduling win,\n\
         `aware/seq` < 1 means co-running beat one-at-a-time service.\n\n{}\n\
         conflict-aware beat FIFO on {fifo_wins}/{rows} rows, \
         beat sequential on {sequential_wins}/{rows}.",
        table.render()
    );
    ContentionOutcome {
        rows,
        fifo_wins,
        sequential_wins,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_pairs_share_residue_and_never_repeat_bases() {
        for stride in [2u64, 4, 8] {
            let streams = adversarial_streams(8, stride, 64);
            let bases: Vec<u64> = streams.iter().map(|v| v.base().get()).collect();
            for pair in bases.chunks(2) {
                assert_eq!(pair[0] % stride, pair[1] % stride, "stride {stride}");
                assert_ne!(pair[0], pair[1], "stride {stride}");
            }
            let mut unique = bases.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), bases.len(), "stride {stride}");
        }
    }

    #[test]
    fn sweep_reports_wins_on_every_row() {
        let outcome = contention(&ContentionConfig {
            streams: 4,
            len: 64,
        });
        assert_eq!(outcome.rows, 9);
        assert_eq!(outcome.fifo_wins, outcome.rows, "{}", outcome.report);
        assert!(outcome.report.contains("fifo/aware"));
    }
}
