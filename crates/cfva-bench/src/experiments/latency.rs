//! Latency by family and strategy (Sections 2, 3.1, 3.2).

use cfva_core::plan::{Planner, Strategy};
use cfva_core::{mapping::XorMatched, Stride, VectorSpec};
use cfva_memsim::{Engine, MemConfig};

use crate::runner::BatchRunner;
use crate::table::Table;

/// Measures latency per family under the three request orders, matched
/// memory `L = 128, M = T = 8, s = 4`:
///
/// * canonical order on the bufferless memory;
/// * Section 3.1 subsequence order with `q = 2, q' = 1` (paper bound:
///   `≤ 2T + L`);
/// * Section 3.2 replay order on the bufferless memory (exactly
///   `T + L + 1` inside the window).
pub fn latency() -> String {
    let len = 128u64;
    // This sweep lives in the conflicted regime (canonical orders of
    // in-window families queue hard), so pick the event engine
    // explicitly via the config — conflict-free replay points would
    // also be served by `Engine::FastPath`, but the interesting rows
    // here are the ones where queueing dominates.
    let mem_plain = MemConfig::new(3, 3)
        .expect("valid")
        .with_engine(Engine::Event);
    let mem_buffered = MemConfig::new(3, 3)
        .expect("valid")
        .with_queues(2, 1)
        .expect("valid queues")
        .with_engine(Engine::Event);
    // Two long-lived sessions (one per memory configuration), reused
    // across every family × strategy measurement.
    let mut plain = BatchRunner::new(
        Planner::matched(XorMatched::new(3, 4).expect("valid")),
        mem_plain,
    );
    let mut buffered = BatchRunner::new(
        Planner::matched(XorMatched::new(3, 4).expect("valid")),
        mem_buffered,
    );

    let t_cycles = mem_plain.t_cycles();
    let min_latency = t_cycles + len + 1;
    let subseq_bound = 2 * t_cycles + len;

    let mut table = Table::new(&[
        "x",
        "stride",
        "canonical",
        "subseq (q=2)",
        "replay",
        "T+L+1",
        "2T+L",
    ]);

    let mut bound_ok = true;
    let mut replay_ok = true;
    for x in 0..=6u32 {
        let stride = Stride::from_parts(3, x).expect("odd sigma");
        let vec = VectorSpec::with_stride(16u64.into(), stride, len).expect("valid");

        let canonical = plain
            .measure(&vec, Strategy::Canonical)
            .map(|s| s.latency)
            .expect("canonical always plans");

        let subseq = buffered
            .measure(&vec, Strategy::Subsequence)
            .map(|s| s.latency);
        if let Some(lat) = subseq {
            if lat > subseq_bound {
                bound_ok = false;
            }
        }

        let replay = plain
            .measure(&vec, Strategy::ConflictFree)
            .map(|s| s.latency);
        if x <= 4 && replay != Some(min_latency) {
            replay_ok = false;
        }

        table.row_owned(vec![
            x.to_string(),
            stride.get().to_string(),
            canonical.to_string(),
            subseq.map_or("-".into(), |l| l.to_string()),
            replay.map_or("-".into(), |l| l.to_string()),
            min_latency.to_string(),
            subseq_bound.to_string(),
        ]);
    }

    format!(
        "Latency by stride family (σ = 3, A1 = 16, L = 128, M = T = 8, s = 4)\n\n{}\n\
         Replay order hits the minimum T+L+1 = {min_latency} for every window family (x ≤ 4): {}\n\
         Subsequence order stays within the Section 3.1 bound 2T+L = {subseq_bound}: {}\n\
         Canonical order degrades by up to ~2^(s-x) inside the window —\n\
         the gap the out-of-order scheme removes.\n",
        table.render(),
        if replay_ok { "YES" } else { "NO" },
        if bound_ok { "YES" } else { "NO" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_report_verifies_bounds() {
        let r = latency();
        assert!(r.contains("for every window family (x ≤ 4): YES"), "{r}");
        assert!(r.contains("bound 2T+L = 144: YES"), "{r}");
    }
}
