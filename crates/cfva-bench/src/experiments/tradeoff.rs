//! Sections 5E and 5H: module-count and vector-length trade-offs.

use cfva_core::analysis;

use crate::table::Table;

/// Section 5E: the window doubles only when the module count is
/// squared.
pub fn module_cost() -> String {
    let mut t = Table::new(&["design point", "modules", "CF families", "η"]);
    for lambda in [7u32] {
        let pts = analysis::module_cost_design_points(lambda, 3);
        let names = [
            "ordered matched",
            "proposed matched",
            "proposed unmatched (M=T²)",
        ];
        for (name, (modules, families)) in names.iter().zip(pts) {
            let w = families - 1;
            t.row_owned(vec![
                name.to_string(),
                modules.to_string(),
                families.to_string(),
                format!("{:.3}", analysis::efficiency(w, 3)),
            ]);
        }
    }

    let mut sweep = Table::new(&["λ", "matched families (M=8)", "unmatched families (M=64)"]);
    for lambda in 4..=10u32 {
        sweep.row_owned(vec![
            lambda.to_string(),
            (analysis::matched_window_boundary(lambda, 3) + 1).to_string(),
            (analysis::unmatched_window_boundary(lambda, 3) + 1).to_string(),
        ]);
    }

    format!(
        "Section 5E — families vs module budget (t = 3, L = 128)\n\n{}\n\
         To double the conflict-free families (5 → 10) the module count is\n\
         squared (8 → 64); the added families carry weight only 2^-6..2^-10\n\
         of the stride population, which is the paper's cost argument.\n\n\
         Window growth with register length:\n\n{}\n",
        t.render(),
        sweep.render()
    )
}

/// Section 5H: conflict-free families by vector length — ordered access
/// wins for *arbitrary* lengths, the proposed scheme wins (much bigger)
/// for register-length vectors.
pub fn family_counts() -> String {
    let mut t = Table::new(&[
        "λ (L=2^λ)",
        "ordered, any length",
        "proposed, any length",
        "proposed, L = 2^λ",
    ]);
    for lambda in 4..=10u32 {
        let c = analysis::family_count_comparison(lambda, 3);
        t.row_owned(vec![
            lambda.to_string(),
            c.ordered_any_length.to_string(),
            c.proposed_any_length.to_string(),
            c.proposed_at_register_length.to_string(),
        ]);
    }
    let c = analysis::family_count_comparison(7, 3);
    format!(
        "Section 5H — conflict-free families vs vector length (unmatched, m = 2t = 6)\n\n{}\n\
         Paper: ordered access gives t+1 = {} families for any length; the\n\
         proposed scheme gives 2 for any length but 2(λ−t+1) = {} for\n\
         register-length vectors — the scheme is designed for the length the\n\
         strip-mined code actually uses.\n",
        t.render(),
        c.ordered_any_length,
        c.proposed_at_register_length
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_cost_report() {
        let r = module_cost();
        assert!(r.contains("64"), "{r}");
        assert!(r.contains("10"), "{r}");
    }

    #[test]
    fn family_counts_report() {
        let r = family_counts();
        assert!(r.contains("2(λ−t+1) = 10"), "{r}");
    }
}
