//! Figures 3 and 7: the address-mapping grids.

use cfva_core::mapping::{ModuleMap, XorMatched, XorUnmatched};
use cfva_core::Addr;

use crate::table::Table;

/// Regenerates Figure 3: for `m = t = 3, s = 3`, the grid of which
/// address occupies each (row, module) cell, for the first 9 rows shown
/// in the paper.
pub fn fig3() -> String {
    let map = XorMatched::new(3, 3).expect("valid figure parameters");
    let mut grid = vec![[0u64; 8]; 9];
    for addr in 0..72u64 {
        let module = map.module_of(Addr::new(addr)).get() as usize;
        let row = map.displacement_of(Addr::new(addr)) as usize;
        grid[row][module] = addr;
    }

    let mut table = Table::new(&["row", "m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"]);
    for (row, entries) in grid.iter().enumerate() {
        let mut cells = vec![row.to_string()];
        cells.extend(entries.iter().map(|a| a.to_string()));
        table.row_owned(cells);
    }

    let paper_row1 = [9u64, 8, 11, 10, 13, 12, 15, 14];
    let ok = grid[1] == paper_row1;
    format!(
        "Figure 3 — XOR-based linear transformation, m=t=3, s=3\n\
         Grid entry (row, module) = address stored there.\n\n{}\n\
         Check vs paper row 1 (expects 9 8 11 10 13 12 15 14): {}\n",
        table.render(),
        if ok { "MATCH" } else { "MISMATCH" }
    )
}

/// Regenerates Figure 7: the two-level mapping `m=4, t=2, s=3, y=7`,
/// showing section-0 rows, the wrap-around block at 512, and the
/// italic example vector (`λ=5, A1=6, S=16`).
pub fn fig7() -> String {
    let map = XorUnmatched::new(2, 3, 7).expect("valid figure parameters");

    // Section-0 rows: addresses 0..32.
    let mut rows: Vec<[u64; 4]> = vec![[0; 4]; 8];
    for addr in 0..32u64 {
        let m = map.module_of(Addr::new(addr)).get() as usize;
        let row = (addr / 4) as usize;
        rows[row][m] = addr;
    }
    let mut t1 = Table::new(&["row", "m0", "m1", "m2", "m3"]);
    for (r, entries) in rows.iter().enumerate() {
        let mut cells = vec![r.to_string()];
        cells.extend(entries.iter().map(|a| a.to_string()));
        t1.row_owned(cells);
    }

    // The italic vector: A1 = 6, S = 16, L = 32.
    let mut t2 = Table::new(&["element", "address", "module", "section"]);
    for e in 0..32u64 {
        let a = Addr::new(6 + 16 * e);
        t2.row_owned(vec![
            e.to_string(),
            a.get().to_string(),
            map.module_of(a).get().to_string(),
            map.section_of(a).to_string(),
        ]);
    }

    let wrap: Vec<u64> = (512..516u64)
        .map(|a| map.module_of(Addr::new(a)).get())
        .collect();
    let first_subseq: Vec<u64> = [0u64, 8, 16, 24]
        .iter()
        .map(|&e| map.module_of(Addr::new(6 + 16 * e)).get())
        .collect();

    format!(
        "Figure 7 — two-level XOR transformation, m=4, t=2, s=3, y=7\n\
         Section 0 contents (addresses 0..32):\n\n{}\n\
         Block wrap-around: addresses 512..516 map to modules {:?} (paper: section 0 again)\n\n\
         Italic example vector (A1=6, S=16, λ=5):\n\n{}\n\
         First Lemma-4 subsequence (elements 0,8,16,24) modules: {:?}\n\
         Paper says: (2, 6, 10, 14) — {}\n",
        t1.render(),
        wrap,
        t2.render(),
        first_subseq,
        if first_subseq == [2, 6, 10, 14] {
            "MATCH"
        } else {
            "MISMATCH"
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_matches_paper() {
        let report = fig3();
        assert!(report.contains("MATCH"), "{report}");
        assert!(!report.contains("MISMATCH"), "{report}");
    }

    #[test]
    fn fig7_matches_paper() {
        let report = fig7();
        assert!(report.contains("MATCH"), "{report}");
        assert!(!report.contains("MISMATCH"), "{report}");
    }
}
