//! Section 5A/5B: fraction of conflict-free strides and efficiency.

use cfva_core::analysis;
use cfva_core::mapping::{Interleaved, XorMatched, XorUnmatched};
use cfva_core::plan::{Planner, Strategy};
use cfva_memsim::MemConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::runner::BatchRunner;
use crate::table::Table;

/// Section 5A: `f = 1 − 2^-(w+1)`, with the paper's two examples
/// (31/32 and 1023/1024) and a sweep over λ.
pub fn fraction() -> String {
    let mut t = Table::new(&["configuration", "window w", "fraction f", "exact"]);
    let configs = [
        (
            "matched L=128 T=8 (paper)",
            analysis::matched_window_boundary(7, 3),
        ),
        (
            "unmatched L=128 T=8 M=64 (paper)",
            analysis::unmatched_window_boundary(7, 3),
        ),
        ("ordered matched s=0", 0),
        (
            "ordered unmatched m=6 t=3",
            analysis::ordered_window_boundary(6, 3),
        ),
    ];
    for (name, w) in configs {
        let (num, den) = analysis::fraction_conflict_free_exact(w);
        t.row_owned(vec![
            name.to_string(),
            w.to_string(),
            format!("{:.6}", analysis::fraction_conflict_free(w)),
            format!("{num}/{den}"),
        ]);
    }

    let mut sweep = Table::new(&["λ (L=2^λ)", "matched f", "unmatched f"]);
    for lambda in 4..=10u32 {
        let wm = analysis::matched_window_boundary(lambda, 3);
        let wu = analysis::unmatched_window_boundary(lambda, 3);
        sweep.row_owned(vec![
            lambda.to_string(),
            format!("{:.6}", analysis::fraction_conflict_free(wm)),
            format!("{:.6}", analysis::fraction_conflict_free(wu)),
        ]);
    }

    let paper_checks = analysis::fraction_conflict_free_exact(4) == (31, 32)
        && analysis::fraction_conflict_free_exact(9) == (1023, 1024);
    format!(
        "Section 5A — fraction of conflict-free strides, f = 1 − 2^-(w+1)\n\n{}\n\
         Sweep over register length (t = 3):\n\n{}\n\
         Paper quotes 31/32 (matched) and 1023/1024 (unmatched): {}\n",
        t.render(),
        sweep.render(),
        if paper_checks { "MATCH" } else { "MISMATCH" }
    )
}

/// Section 5B: efficiency `η = 1/(1 + t·2^-(w+1))`, analytic and
/// measured on the cycle simulator, stratified over families `0..=12`
/// with the exact population weights `2^-(x+1)`.
pub fn efficiency() -> String {
    let max_x = 12u32;
    let per_family = 6u32;
    let mut rng = StdRng::seed_from_u64(1992);

    let mut t = Table::new(&["scheme", "w", "η analytic", "η simulated", "paper"]);
    let mut add = |name: &str,
                   w: u32,
                   paper: &str,
                   planner: Planner,
                   strategy: Strategy,
                   mem: MemConfig,
                   rng: &mut StdRng| {
        // One batch session per scheme: the whole stratified sweep runs
        // through its reused buffers.
        let mut session = BatchRunner::new(planner, mem);
        let eta_sim = session.stratified_efficiency(strategy, 128, max_x, per_family, rng);
        t.row_owned(vec![
            name.to_string(),
            w.to_string(),
            format!("{:.3}", analysis::efficiency(w, 3)),
            format!("{eta_sim:.3}"),
            paper.to_string(),
        ]);
    };

    add(
        "proposed matched (M=T=8, s=4)",
        4,
        "0.914",
        Planner::matched(XorMatched::new(3, 4).expect("valid")),
        Strategy::Auto,
        MemConfig::new(3, 3).expect("valid"),
        &mut rng,
    );
    add(
        "proposed unmatched (M=64, s=4, y=9)",
        9,
        "0.997",
        Planner::unmatched(XorUnmatched::new(3, 4, 9).expect("valid")),
        Strategy::Auto,
        MemConfig::new(6, 3).expect("valid"),
        &mut rng,
    );
    add(
        "ordered matched (interleaved, s=0)",
        0,
        "0.4",
        Planner::baseline(Interleaved::new(3).unwrap(), 3),
        Strategy::Canonical,
        MemConfig::new(3, 3).expect("valid"),
        &mut rng,
    );
    add(
        "ordered unmatched (interleaved, M=64)",
        3,
        "0.84",
        Planner::baseline(Interleaved::new(6).unwrap(), 3),
        Strategy::Canonical,
        MemConfig::new(6, 3).expect("valid"),
        &mut rng,
    );

    format!(
        "Section 5B — efficiency η over the stride population\n\
         (L = 128; families 0..={max_x} measured on the cycle simulator with\n\
         {per_family} random σ/base draws each, combined with exact weights 2^-(x+1))\n\n{}\n\
         The simulated values track the analytic model; the proposed scheme\n\
         more than doubles the matched-memory efficiency (0.4 → 0.91) and\n\
         closes the unmatched gap (0.84 → 0.997), as the paper reports.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_report_matches() {
        let r = fraction();
        assert!(r.contains("31/32"), "{r}");
        assert!(r.contains("1023/1024"), "{r}");
        assert!(r.contains("MATCH"), "{r}");
    }

    #[test]
    fn efficiency_report_contains_paper_numbers() {
        let r = efficiency();
        assert!(r.contains("0.914"), "{r}");
        assert!(r.contains("0.997"), "{r}");
    }
}
