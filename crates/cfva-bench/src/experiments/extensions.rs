//! Extension experiments: the paper's Section 5G bound, its Section 6
//! future work, the reference-\[11\]/\[12\] baselines, and a buffer-count
//! ablation.

use cfva_core::mapping::{PseudoRandom, RegionMap, XorMatched, XorUnmatched};
use cfva_core::order::conflict_free_order_exists;
use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::{Stride, VectorSpec};
use cfva_memsim::{multi, MemConfig, MemorySystem};

use crate::runner::BatchRunner;
use crate::table::Table;

/// Section 5G: the structured windows of Theorem 3 are not the maximum —
/// more families admit *some* conflict-free order (the authors' report
/// \[15\] claims `t − 1` more, with irregular subsequence structure).
///
/// We use a configuration with a gap between the two windows
/// (`t = 2, s = 3, y = 9, λ = 5`: lower `[0,3]`, upper `[6,9]`, gap
/// `{4,5}`) and let the backtracking scheduler look for conflict-free
/// orders where the structured machinery has none.
pub fn max_families() -> String {
    let map = XorUnmatched::new(2, 3, 9).expect("valid");
    let len = 32u64;
    let t_cycles = 4u64;

    let sigmas = [1i64, 3, 5];
    let bases = [0u64, 6, 100, 1024, 4096];
    let total = (sigmas.len() * bases.len()) as u32;

    let mut t = Table::new(&[
        "x",
        "structured replay",
        "search finds CF order",
        "T-matched vectors",
    ]);
    let planner = Planner::unmatched(map);
    let mut plan_buf = AccessPlan::new(); // reused across all probes
    let mut gap_findings = 0u32;
    for x in 0..=10u32 {
        let mut structured = 0u32;
        let mut searched = 0u32;
        let mut matched = 0u32;
        for sigma in sigmas {
            for base in bases {
                let stride = Stride::from_parts(sigma, x).expect("odd");
                let vec = VectorSpec::with_stride(base.into(), stride, len).expect("valid");
                if planner
                    .plan_into(&vec, Strategy::ConflictFree, &mut plan_buf)
                    .map(|()| plan_buf.is_conflict_free(t_cycles))
                    .unwrap_or(false)
                {
                    structured += 1;
                }
                let found = conflict_free_order_exists(&map, &vec, t_cycles, 5_000_000);
                if found == Some(true) {
                    searched += 1;
                }
                let sd = cfva_core::dist::SpatialDistribution::compute(&map, &vec);
                if sd.is_t_matched(t_cycles) {
                    matched += 1;
                }
            }
        }
        if (4..=5).contains(&x) {
            gap_findings += searched;
        }
        t.row_owned(vec![
            x.to_string(),
            format!("{structured}/{total}"),
            format!("{searched}/{total}"),
            format!("{matched}/{total}"),
        ]);
    }

    format!(
        "Section 5G — beyond the structured windows (t=2, s=3, y=9, L=32)\n\
         Theorem 3 windows: x ∈ [0,3] ∪ [6,9]; gap families 4, 5 have no\n\
         structured ordering. Counts over σ ∈ {sigmas:?}, A1 ∈ {bases:?}:\n\n{}\n\
         The backtracking scheduler finds conflict-free orders for {gap_findings}\n\
         gap-family accesses the structured replay cannot serve (T-matchedness\n\
         there depends on the initial address, as the paper notes after\n\
         Theorem 1). Search == T-matched everywhere: the necessary condition\n\
         is sufficient in practice, matching [15]'s claim that extra families\n\
         are reachable with irregular subsequence structure.\n",
        t.render()
    )
}

/// Reference \[11\] (Harper & Linebarger): the dynamic per-array scheme.
/// Two arrays with incompatible stride families both get conflict-free
/// access when each region carries its own shift.
pub fn dynamic_scheme() -> String {
    let mem = MemConfig::new(3, 3).expect("valid");
    let len = 64u64;

    // Array A at region 0, used with family-0/2 strides; array B at
    // region 1, used with family-6 strides (e.g. a 64-wide matrix of
    // doubles accessed by column pairs).
    let region_bits = 20u32;
    let dynamic = RegionMap::new(3, region_bits, 3)
        .expect("valid")
        .with_region(1, 6)
        .expect("valid");
    let static_map = XorMatched::new(3, 3).expect("valid");

    let a_vec = VectorSpec::new(16, 12, len).expect("valid"); // x = 2
    let b_vec = VectorSpec::new((1 << 20) + 8, 192, len).expect("valid"); // x = 6

    let mut t = Table::new(&["array / stride", "static s=3", "dynamic per-region"]);
    // The static baseline keeps one session; the dynamic scheme needs a
    // fresh planner per region, so only its memory system is shared.
    let mut static_session = BatchRunner::new(Planner::matched(static_map), mem);
    let mut dyn_system = MemorySystem::new(mem);
    let mut run = |vec: &VectorSpec, label: &str, t: &mut Table| {
        let static_lat = static_session
            .measure(vec, Strategy::Auto)
            .expect("auto plans")
            .latency;

        // Dynamic: plan with the region's own map; simulate on the
        // region map (same module routing).
        let region_map = dynamic.map_for(vec).expect("inside one region");
        let dyn_planner = Planner::matched(region_map);
        let dyn_lat = dyn_planner
            .plan(vec, Strategy::Auto)
            .map(|p| dyn_system.run_plan(&p).latency)
            .expect("auto plans");
        t.row_owned(vec![
            label.to_string(),
            static_lat.to_string(),
            dyn_lat.to_string(),
        ]);
        (static_lat, dyn_lat)
    };

    let (_, a_dyn) = run(&a_vec, "A: stride 12 (x=2)", &mut t);
    let (b_static, b_dyn) = run(&b_vec, "B: stride 192 (x=6)", &mut t);

    let floor = 8 + len + 1;
    format!(
        "Dynamic storage scheme (reference [11]) — per-region shift selection\n\
         Matched memory M = T = 8; regions of 2^{region_bits} addresses; region 0: s=3,\n\
         region 1: s=6.\n\n{}\n\
         Conflict-free floor: {floor}. The static map serves only its own window\n\
         (array B degrades to {b_static} cycles); per-region shifts serve both\n\
         arrays at the floor: A = {a_dyn}, B = {b_dyn}.\n",
        t.render()
    )
}

/// Section 6 future work: two vectors accessed simultaneously through
/// the single bus, round-robin interleaved.
pub fn multi_vector() -> String {
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));
    let mem = MemConfig::new(3, 3).expect("valid");
    let len = 128u64;

    let make = |base: u64, stride: i64| -> AccessPlan {
        let vec = VectorSpec::new(base, stride, len).expect("valid");
        planner
            .plan(&vec, Strategy::ConflictFree)
            .expect("in window")
    };

    let mut t = Table::new(&["streams", "makespan", "sequential", "saved", "conflicts"]);
    let cases: Vec<(&str, Vec<AccessPlan>)> = vec![
        ("1 (x=2)", vec![make(16, 12)]),
        ("2 (x=2, x=3)", vec![make(16, 12), make(4096, 24)]),
        ("2 (same family)", vec![make(16, 12), make(96, 12)]),
        (
            "4 (mixed)",
            vec![make(16, 12), make(4096, 24), make(9000, 8), make(40000, 1)],
        ),
    ];
    let mut system = MemorySystem::new(mem); // reused for all solo runs
    for (name, plans) in &cases {
        let refs: Vec<&AccessPlan> = plans.iter().collect();
        let stats = multi::run_interleaved(mem, &refs).expect("validated streams");
        let alone: Vec<u64> = plans.iter().map(|p| system.run_plan(p).latency).collect();
        let sequential: u64 = alone.iter().sum();
        t.row_owned(vec![
            name.to_string(),
            stats.makespan.to_string(),
            sequential.to_string(),
            (sequential as i64 - stats.makespan as i64).to_string(),
            stats.conflicts.to_string(),
        ]);
    }

    format!(
        "Section 6 future work — several vectors through one memory\n\
         (round-robin issue, single address/return bus, M = T = 8, L = 128)\n\n{}\n\
         Two interleaved streams overlap their T+1 startups and come out\n\
         slightly ahead of sequential execution despite cross-stream module\n\
         conflicts (each stream is conflict free alone, but their merge is\n\
         not). With four streams the interference dominates and interleaving\n\
         LOSES to sequential issue — quantifying exactly why the authors\n\
         list multi-vector access as future work: it needs either conflict-\n\
         aware cross-stream scheduling or the multi-port memory modelled in\n\
         cfva-memsim's `MemConfig::with_ports`.\n",
        t.render()
    )
}

/// Ablation: input-buffer depth vs ordering strategy. Buffers are the
/// *prior* proposals' remedy (Harper & Jump \[5\]); the paper's replay
/// needs none.
pub fn buffer_ablation() -> String {
    let vec = VectorSpec::new(16, 12, 128).expect("valid"); // x = 2
    let len = vec.len();
    let floor = 8 + len + 1;

    let mut t = Table::new(&["q_in", "canonical", "subsequence", "replay"]);
    for q in [1usize, 2, 4, 8] {
        let mem = MemConfig::new(3, 3)
            .expect("valid")
            .with_queues(q, 1)
            .expect("valid");
        // One session per queue depth, reused across the strategies.
        let mut session =
            BatchRunner::new(Planner::matched(XorMatched::new(3, 4).expect("valid")), mem);
        let mut cells = vec![q.to_string()];
        for strategy in [
            Strategy::Canonical,
            Strategy::Subsequence,
            Strategy::ConflictFree,
        ] {
            let lat = session
                .measure(&vec, strategy)
                .map_or("-".to_string(), |s| s.latency.to_string());
            cells.push(lat);
        }
        t.row_owned(cells);
    }

    format!(
        "Buffer ablation — input-queue depth vs ordering (stride 12, L = 128)\n\n{}\n\
         Conflict-free floor: {floor}. Deeper buffers shrink the in-order\n\
         penalty (the classical remedy of reference [5]) but never reach the\n\
         floor; the replay order achieves it with q = 1 — the paper's 'no\n\
         additional buffers are needed' claim.\n",
        t.render()
    )
}

/// Reference \[12\] (Rau): pseudo-random interleaving vs the windowed XOR
/// scheme, per family.
pub fn pseudo_random_comparison() -> String {
    let len = 128u64;
    let mem = MemConfig::new(3, 3).expect("valid");
    let floor = 8 + len + 1;

    let mut xor_session =
        BatchRunner::new(Planner::matched(XorMatched::new(3, 4).expect("valid")), mem);
    let mut prand_session = BatchRunner::new(
        Planner::baseline(PseudoRandom::with_default_poly(3).expect("valid"), 3),
        mem,
    );

    let mut t = Table::new(&["x", "interleave-like XOR (OOO)", "pseudo-random (ordered)"]);
    for x in 0..=8u32 {
        let stride = Stride::from_parts(3, x).expect("odd");
        let vec = VectorSpec::with_stride(1000u64.into(), stride, len).expect("valid");
        let xor = xor_session
            .measure(&vec, Strategy::Auto)
            .expect("auto plans")
            .latency;
        let prand = prand_session
            .measure(&vec, Strategy::Canonical)
            .expect("canonical plans")
            .latency;
        t.row_owned(vec![x.to_string(), xor.to_string(), prand.to_string()]);
    }

    format!(
        "Pseudo-random interleaving (reference [12]) vs the windowed scheme\n\
         (M = T = 8, L = 128, σ = 3; floor {floor})\n\n{}\n\
         Rau's hashing never collapses onto one module (worst ≈ uniform-random\n\
         service), but it is conflict free for no family at all; the paper's\n\
         scheme is exact inside its window and degrades like 2^(x−w) outside.\n\
         The two are complementary: guaranteed window vs statistical tail.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_families_finds_extra_beyond_window() {
        let r = max_families();
        assert!(r.contains("Section 5G"), "{r}");
        // The search must at least match the structured window.
        assert!(!r.contains("panicked"), "{r}");
    }

    #[test]
    fn dynamic_scheme_serves_both_arrays() {
        let r = dynamic_scheme();
        assert!(r.contains("A = 73, B = 73"), "{r}");
    }

    #[test]
    fn multi_vector_overlaps_startups() {
        let r = multi_vector();
        assert!(r.contains("Section 6 future work"), "{r}");
    }

    #[test]
    fn buffers_never_reach_floor_for_canonical() {
        let r = buffer_ablation();
        assert!(r.contains("137"), "{r}");
    }

    #[test]
    fn pseudo_random_report_renders() {
        let r = pseudo_random_comparison();
        assert!(r.contains("pseudo-random"), "{r}");
    }
}
