//! Section 5D / Figures 4–6: hardware cost and RTL-model equivalence.

use cfva_core::hardware::{AddressGenerator, GeneratorConfig, HardwareCost, ReplayEngine};
use cfva_core::mapping::XorMatched;
use cfva_core::order::{replay_order, subseq_order, ReplayKey, SubseqStructure};
use cfva_core::VectorSpec;

use crate::table::Table;

/// Renders the component-count table and checks the register-transfer
/// models produce exactly the functional planner's streams.
pub fn hardware() -> String {
    let t_cycles = 8u32;
    let mut t = Table::new(&[
        "datapath",
        "adders",
        "counters",
        "regs",
        "latches",
        "queue",
        "arbiter",
        "RA regfile",
    ]);
    for (name, cost) in [
        ("ordered (prior art)", HardwareCost::ordered()),
        ("subsequence (Fig 4/5)", HardwareCost::subsequence()),
        (
            "conflict-free replay (Fig 6)",
            HardwareCost::conflict_free_replay(t_cycles),
        ),
    ] {
        t.row_owned(vec![
            name.to_string(),
            cost.adders.to_string(),
            cost.counters.to_string(),
            cost.working_registers.to_string(),
            cost.address_latches.to_string(),
            cost.key_queue_entries.to_string(),
            cost.needs_arbiter.to_string(),
            cost.random_access_register_file.to_string(),
        ]);
    }

    // RTL equivalence on the paper's running example.
    let map = XorMatched::new(3, 3).expect("valid");
    let vec = VectorSpec::new(16, 12, 64).expect("valid");
    let st = SubseqStructure::for_matched(&map, vec.family()).expect("in window");

    let cfg = GeneratorConfig::for_vector(&vec, &st).expect("compatible");
    let rtl_stream: Vec<u64> = AddressGenerator::new(cfg).map(|(a, _)| a.get()).collect();
    let func_stream: Vec<u64> = subseq_order(&st, vec.len())
        .expect("compatible")
        .into_iter()
        .map(|e| vec.element_addr(e).get())
        .collect();
    let generator_matches = rtl_stream == func_stream;

    let mut engine = ReplayEngine::new(&map, &vec, &st, ReplayKey::Module).expect("in window");
    let engine_stream: Vec<u64> = std::iter::from_fn(|| engine.step().map(|r| r.element)).collect();
    let replay_stream = replay_order(&map, &vec, &st, ReplayKey::Module).expect("in window");
    let engine_matches = engine_stream == replay_stream;
    let stats = engine.stats();

    format!(
        "Section 5D — hardware complexity (T = {t_cycles})\n\n{}\n\
         RTL checks on the Section 3 example (stride 12, A1=16, L=64):\n\
         * Figure 4/5 generator reproduces the subsequence stream: {}\n\
         * Figure 6 engine reproduces the conflict-free replay stream: {}\n\
         * Latch pressure: max {} per key (paper claims 2 latches/key suffice),\n\
           max {} total (2T = {}).\n\
         The out-of-order additions are O(T) latches and one duplicated\n\
         generator — 'a minor part of the cost of the memory subsystem'.\n",
        t.render(),
        if generator_matches { "YES" } else { "NO" },
        if engine_matches { "YES" } else { "NO" },
        stats.max_latches_per_key,
        stats.max_latches_total,
        2 * t_cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtl_models_match_functional() {
        let r = hardware();
        assert!(r.contains("subsequence stream: YES"), "{r}");
        assert!(r.contains("replay stream: YES"), "{r}");
    }
}
