//! Config-driven map sweep: measure any registry-selectable map —
//! `experiments --map <spec>` — without naming a type at compile time.

use cfva_core::mapping::{MapSpec, Registry};
use cfva_core::plan::Strategy;
use cfva_core::{ConfigError, VectorSpec};

use crate::runner::BatchRunner;
use crate::table::Table;
use crate::workload::{family_sweep, registry_family_grid};

/// Per-family latency sweep of one runtime-selected map (or, for
/// `spec = "all"`, the comparative sweep of every registered map on
/// the same strides).
///
/// The spec decides everything: the map, its out-of-order capability
/// (`xor-matched`/`xor-unmatched` plan with [`Strategy::Auto`]'s best
/// available order; baselines access in order) and the memory geometry
/// (matched by default, or the spec's `t` latency rider).
///
/// # Errors
///
/// Spec parse/resolution errors — an unknown name lists the registered
/// maps, a bad key/value names itself. Never panics on user input.
pub fn map_sweep(spec: &str, len: u64, max_x: u32, sigma: i64) -> Result<String, ConfigError> {
    if spec == "all" {
        return comparative_sweep(len, max_x, sigma);
    }
    let spec: MapSpec = spec.parse()?;
    let mut session = BatchRunner::from_spec(&spec)?;
    let mem = session.mem();
    let floor = mem.t_cycles() + len + 1;

    let mut t = Table::new(&["x", "stride", "latency", "conflicts", "stalls", "vs floor"]);
    for stride in family_sweep(max_x, sigma) {
        let vec = vector_for(stride, len)?;
        let stats = session
            .measure(&vec, Strategy::Auto)
            .expect("auto always plans");
        t.row_owned(vec![
            stride.family().exponent().to_string(),
            stride.get().to_string(),
            stats.latency.to_string(),
            stats.conflicts.to_string(),
            stats.stall_cycles.to_string(),
            format!("{:.2}x", stats.latency as f64 / floor as f64),
        ]);
    }

    Ok(format!(
        "Map sweep: {spec}\n\
         {mem}, L = {len}, sigma = {sigma}; conflict-free floor T+L+1 = {floor}\n\n{}",
        t.render()
    ))
}

/// Every registered map on the same family sweep, one latency column
/// per map — the registry's reason to exist, as a table. The sweep
/// points ARE [`registry_family_grid`]: one measurement per grid
/// entry, with one session per spec reused down its whole family
/// column (grid entries are grouped by spec, families ascending).
fn comparative_sweep(len: u64, max_x: u32, sigma: i64) -> Result<String, ConfigError> {
    let registry = Registry::builtin();
    let specs = registry.all_specs();
    let families = max_x as usize + 1;

    // latencies[spec column][family row], filled in grid order.
    let mut latencies: Vec<Vec<u64>> = vec![Vec::with_capacity(families); specs.len()];
    let mut session: Option<(MapSpec, BatchRunner)> = None;
    for (i, (spec, stride)) in registry_family_grid(&registry, max_x, sigma)
        .into_iter()
        .enumerate()
    {
        if session.as_ref().is_none_or(|(s, _)| *s != spec) {
            session = Some((spec.clone(), BatchRunner::from_spec(&spec)?));
        }
        let (_, session) = session.as_mut().expect("just set");
        let vec = vector_for(stride, len)?;
        let stats = session
            .measure(&vec, Strategy::Auto)
            .expect("auto always plans");
        latencies[i / families].push(stats.latency);
    }

    let mut headers: Vec<String> = vec!["x".to_string(), "stride".to_string()];
    headers.extend(specs.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for (row, stride) in family_sweep(max_x, sigma).into_iter().enumerate() {
        let mut cells = vec![
            stride.family().exponent().to_string(),
            stride.get().to_string(),
        ];
        cells.extend(latencies.iter().map(|col| col[row].to_string()));
        t.row_owned(cells);
    }

    Ok(format!(
        "Comparative map sweep — every registered map, same strides\n\
         (L = {len}, sigma = {sigma}, base 16; latency in cycles, each map on\n\
         its spec's own memory geometry)\n\n{}",
        t.render()
    ))
}

fn vector_for(stride: cfva_core::Stride, len: u64) -> Result<VectorSpec, ConfigError> {
    VectorSpec::with_stride(16u64.into(), stride, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_a_baseline_map_in_order() {
        let r = map_sweep("interleaved:m=3", 64, 4, 3).unwrap();
        assert!(r.contains("interleaved:m=3"), "{r}");
        // Family 0 (odd stride) is conflict free on interleaving: floor 73.
        assert!(r.contains("73"), "{r}");
        // Family 3+ (stride multiple of M) is not: conflicts appear.
        assert!(r.contains("1.00x"), "{r}");
    }

    #[test]
    fn sweeps_an_out_of_order_map_at_the_floor() {
        let r = map_sweep("xor-matched:t=3,s=3", 64, 3, 3).unwrap();
        // The whole window rides at the floor under Strategy::Auto.
        for line in r.lines().filter(|l| l.starts_with(['0', '1', '2', '3'])) {
            assert!(line.contains("1.00x"), "{line}");
        }
    }

    #[test]
    fn comparative_sweep_has_one_column_per_registered_map() {
        let r = map_sweep("all", 32, 2, 3).unwrap();
        for name in Registry::builtin().names() {
            assert!(r.contains(name), "{r} missing {name}");
        }
    }

    #[test]
    fn malformed_and_rank_deficient_specs_error_cleanly() {
        // Unknown map name: diagnostic lists the registry.
        let e = map_sweep("skwed:m=3", 64, 4, 3).unwrap_err();
        assert!(e.to_string().contains("registered maps"), "{e}");
        // Grammar violation.
        let e = map_sweep("interleaved:m", 64, 4, 3).unwrap_err();
        assert!(e.to_string().contains("no '='"), "{e}");
        // Rank-deficient custom matrix: typed, not a panic.
        let e = map_sweep("custom-gf2:rows=0b11|0b11", 64, 4, 3).unwrap_err();
        assert_eq!(e, ConfigError::SingularMatrix);
    }
}
