//! The worked examples of Sections 3 and 4.1.

use cfva_core::dist::{ctp, is_conflict_free, temporal_distribution};
use cfva_core::mapping::{ModuleMap, XorMatched, XorUnmatched};
use cfva_core::order::{replay_order, subseq_order, ReplayKey, SubseqStructure};
use cfva_core::VectorSpec;

/// Section 3: stride 12 (family `x = 2`), `A1 = 16`, `L = 64` on the
/// Figure 3 memory. Reproduces the CTP, the two subsequences with their
/// module traces, and the conflict status before/after reordering.
pub fn ctp_example() -> String {
    let map = XorMatched::new(3, 3).expect("paper parameters");
    let vec = VectorSpec::new(16, 12, 64).expect("paper vector");

    let ctp_mods: Vec<u64> = ctp(&map, &vec).iter().map(|m| m.get()).collect();
    let paper_ctp = vec![2u64, 7, 5, 2, 0, 5, 3, 0, 6, 3, 1, 6, 4, 1, 7, 4];

    let st = SubseqStructure::for_matched(&map, vec.family()).expect("x <= s");
    let sub: Vec<Vec<u64>> = (0..st.subseq_count())
        .map(|j| st.subsequence_elements(0, j).collect())
        .collect();
    let sub_mods: Vec<Vec<u64>> = sub
        .iter()
        .map(|elems| {
            elems
                .iter()
                .map(|&e| map.module_of(vec.element_addr(e)).get())
                .collect()
        })
        .collect();

    let canonical_cf = {
        let order: Vec<u64> = (0..64).collect();
        is_conflict_free(&temporal_distribution(&map, &vec, &order), 8)
    };
    let subseq_cf = {
        let order = subseq_order(&st, 64).expect("length compatible");
        is_conflict_free(&temporal_distribution(&map, &vec, &order), 8)
    };
    let replay_cf = {
        let order = replay_order(&map, &vec, &st, ReplayKey::Module).expect("in window");
        is_conflict_free(&temporal_distribution(&map, &vec, &order), 8)
    };

    format!(
        "Section 3 worked example — m=t=3, s=3, stride 12, A1=16, L=64\n\n\
         CTP (one period of 16): {ctp_mods:?}\n\
         Paper:                  {paper_ctp:?}\n\
         CTP matches paper: {}\n\n\
         Subsequence 1 elements: {:?}\n  -> modules {:?} (paper: 2,5,0,3,6,1,4,7)\n\
         Subsequence 2 elements: {:?}\n  -> modules {:?} (paper: 7,2,5,0,3,6,1,4)\n\n\
         Conflict free in canonical order: {canonical_cf} (paper: no)\n\
         Conflict free in Section 3.1 subsequence order: {subseq_cf} (paper: no)\n\
         Conflict free in Section 3.2 replay order: {replay_cf} (paper: yes)\n",
        ctp_mods == paper_ctp,
        sub[0],
        sub_mods[0],
        sub[1],
        sub_mods[1],
    )
}

/// Section 4.1: the two unmatched worked examples on the Figure 7
/// memory.
pub fn unmatched_examples() -> String {
    let map = XorUnmatched::new(2, 3, 7).expect("paper parameters");

    // Example 1: x = 4, sigma = 1, A1 = 6, L = 32.
    let v1 = VectorSpec::new(6, 16, 32).expect("paper vector");
    let st1 = SubseqStructure::for_unmatched_upper(&map, v1.family()).expect("x <= y");
    let subs1: Vec<Vec<u64>> = (0..st1.subseq_count())
        .map(|j| {
            st1.subsequence_elements(0, j)
                .map(|e| map.module_of(v1.element_addr(e)).get())
                .collect()
        })
        .collect();

    // Example 2: x = 6, sigma = 3, A1 = 0, L = 8 (one period).
    let v2 = VectorSpec::new(0, 192, 8).expect("paper vector");
    let st2 = SubseqStructure::for_unmatched_upper(&map, v2.family()).expect("x <= y");
    let subs2: Vec<Vec<u64>> = (0..st2.subseq_count())
        .map(|j| {
            st2.subsequence_elements(0, j)
                .map(|e| map.module_of(v2.element_addr(e)).get())
                .collect()
        })
        .collect();
    let plain = subseq_order(&st2, 8).expect("length ok");
    let plain_cf = is_conflict_free(&temporal_distribution(&map, &v2, &plain), 4);
    let replay = replay_order(&map, &v2, &st2, ReplayKey::Section { t: 2 }).expect("in window");
    let replay_cf = is_conflict_free(&temporal_distribution(&map, &v2, &replay), 4);

    format!(
        "Section 4.1 worked examples — m=4, t=2, s=3, y=7\n\n\
         Example 1: x=4, σ=1, A1=6, L=32 (the Figure 7 italic vector)\n\
         Eight Lemma-4 subsequences -> modules:\n  {:?}\n\
         Paper: (2,6,10,14), (0,4,8,12), (2,6,10,14), ..., (0,4,8,12)\n\
         Alternation check: {}\n\n\
         Example 2: x=6, σ=3, A1=0 (P_x = 8, two subsequences)\n\
         Subsequences -> modules: {:?} and {:?}\n\
         Paper: (0,12,8,4) and (4,0,12,8)\n\
         Match: {}\n\
         Plain subsequence order conflict free: {plain_cf} (paper: no)\n\
         Section-keyed replay conflict free: {replay_cf} (paper: yes)\n",
        subs1,
        subs1.iter().enumerate().all(|(j, s)| if j % 2 == 0 {
            s == &[2, 6, 10, 14]
        } else {
            s == &[0, 4, 8, 12]
        }),
        subs2[0],
        subs2[1],
        subs2[0] == [0, 12, 8, 4] && subs2[1] == [4, 0, 12, 8],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctp_example_matches() {
        let r = ctp_example();
        assert!(r.contains("CTP matches paper: true"), "{r}");
        assert!(r.contains("canonical order: false"), "{r}");
        assert!(r.contains("replay order: true"), "{r}");
    }

    #[test]
    fn unmatched_examples_match() {
        let r = unmatched_examples();
        assert!(r.contains("Alternation check: true"), "{r}");
        assert!(r.contains("Match: true"), "{r}");
        assert!(r.contains("replay conflict free: true"), "{r}");
    }
}
