//! Section 5F: chaining LOAD with EXECUTE.

use cfva_core::mapping::XorMatched;
use cfva_core::plan::Planner;
use cfva_core::VectorSpec;
use cfva_memsim::MemConfig;
use cfva_vecproc::kernels::daxpy_chunk;
use cfva_vecproc::{Machine, MachineConfig};

use crate::table::Table;

fn machine(chaining: bool) -> Machine {
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));
    Machine::new(
        MachineConfig {
            reg_len: 128,
            chaining,
            ..MachineConfig::default()
        },
        planner,
        MemConfig::new(3, 3).expect("valid"),
    )
}

/// Runs a register-length DAXPY chained and unchained. The paper's
/// point: the proposed scheme returns one element per cycle in a
/// *deterministic* order, which makes chaining feasible where in-order
/// access with buffers (unpredictable timing) makes it impractical.
pub fn chaining() -> String {
    let x = VectorSpec::new(0, 12, 128).expect("valid"); // family 2: OOO
    let y = VectorSpec::new(1 << 20, 1, 128).expect("valid");
    let program = daxpy_chunk(3, x, y);

    let mut unchained = machine(false);
    let u = unchained.run(&program).expect("runs");
    let mut chained = machine(true);
    let c = chained.run(&program).expect("runs");

    let mut t = Table::new(&["mode", "total cycles", "axpy op cycles", "axpy chained"]);
    for (name, stats) in [("unchained", &u), ("chained", &c)] {
        t.row_owned(vec![
            name.to_string(),
            stats.total_cycles.to_string(),
            stats.ops[2].cycles.to_string(),
            stats.ops[2].chained.to_string(),
        ]);
    }

    let saved = u.total_cycles - c.total_cycles;
    format!(
        "Section 5F — chaining of LOAD and EXECUTE (DAXPY, L = 128, stride-12 x)\n\n{}\n\
         Chaining saves {saved} cycles — one vector length: the execute unit\n\
         consumes each element in the deterministic arrival order of the\n\
         conflict-free LOAD instead of waiting for the whole register.\n\
         Saved == L: {}\n",
        t.render(),
        if saved == 128 { "YES" } else { "NO" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaining_saves_one_vector_length() {
        let r = chaining();
        assert!(r.contains("Saved == L: YES"), "{r}");
    }
}
