//! Section 5C: vectors shorter than the register length.

use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::{mapping::XorMatched, VectorSpec};
use cfva_memsim::MemConfig;
use cfva_vecproc::stripmine::split_short;

use crate::runner::BatchRunner;
use crate::table::Table;

/// Splits short vectors into an out-of-order prefix (`k·2^{w+t−x}`
/// elements) plus an in-order tail, issues both as one back-to-back
/// request stream (the compiler-generated pattern of Section 5C), and
/// compares against accessing the whole vector in order.
pub fn short_vectors() -> String {
    let mem = MemConfig::new(3, 3).expect("valid");
    // One session reused for every split and in-order measurement
    // (w = s = 4).
    let mut session =
        BatchRunner::new(Planner::matched(XorMatched::new(3, 4).expect("valid")), mem);

    let mut t = Table::new(&[
        "V",
        "stride",
        "x",
        "split (ooo+tail)",
        "split latency",
        "all in-order",
    ]);

    let mut split_never_worse = true;
    for (v_len, stride) in [(48u64, 12i64), (100, 12), (20, 12), (96, 24), (72, 8)] {
        let vec = VectorSpec::new(64, stride, v_len).expect("valid");
        let x = vec.family().exponent();
        let (ooo, tail) = split_short(&vec, 4, 3);

        // One combined request stream: prefix in replay order, tail in
        // canonical order, issued back to back.
        let mut parts: Vec<AccessPlan> = Vec::new();
        if let Some(ref o) = ooo {
            parts.push(
                session
                    .planner()
                    .plan(o, Strategy::ConflictFree)
                    .expect("in window"),
            );
        }
        if let Some(ref tl) = tail {
            parts.push(
                session
                    .planner()
                    .plan(tl, Strategy::Canonical)
                    .expect("plannable"),
            );
        }
        let combined = AccessPlan::concat(parts.iter());
        let split_latency = session.run_plan(&combined).latency;

        let in_order = session
            .measure(&vec, Strategy::Canonical)
            .expect("plannable")
            .latency;
        if split_latency > in_order {
            split_never_worse = false;
        }

        t.row_owned(vec![
            v_len.to_string(),
            stride.to_string(),
            x.to_string(),
            format!(
                "{}+{}",
                ooo.map_or(0, |o| o.len()),
                tail.map_or(0, |t| t.len())
            ),
            split_latency.to_string(),
            in_order.to_string(),
        ]);
    }

    format!(
        "Section 5C — short vectors (matched memory, T = 8, s = w = 4)\n\
         Split rule: out-of-order prefix of k·2^(w+t−x) elements, remainder in\n\
         order, both issued as one back-to-back request stream.\n\n{}\n\
         Split access never slower than all-in-order: {}\n\
         (For V = k·2^(w+t−x) exactly, the whole access is conflict free.)\n",
        t.render(),
        if split_never_worse { "YES" } else { "NO" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_beats_in_order() {
        let r = short_vectors();
        assert!(r.contains("never slower than all-in-order: YES"), "{r}");
    }
}
