//! Theorems 1 and 3: exhaustive simulation of the conflict-free
//! windows.

use cfva_core::mapping::{XorMatched, XorUnmatched};
use cfva_core::plan::{Planner, Strategy};
use cfva_core::{Stride, VectorSpec};
use cfva_memsim::{Engine, MemConfig};

use crate::runner::BatchRunner;
use crate::table::Table;

const SIGMAS: [i64; 4] = [1, 3, 5, 7];
const BASES: [u64; 5] = [0, 1, 16, 37, 1000];

/// For every family, try all σ/base samples through one session:
/// returns `(plannable, all conflict-free at T+L+1)`.
fn probe_family(session: &mut BatchRunner, x: u32, len: u64) -> (bool, bool) {
    let floor = session.mem().t_cycles() + len + 1;
    let mut plannable = true;
    let mut all_cf = true;
    for sigma in SIGMAS {
        for base in BASES {
            let stride = Stride::from_parts(sigma, x).expect("odd sigma");
            let vec = VectorSpec::with_stride(base.into(), stride, len).expect("valid");
            match session.measure(&vec, Strategy::ConflictFree) {
                Some(stats) => {
                    if stats.latency != floor || stats.conflicts != 0 {
                        all_cf = false;
                    }
                }
                None => {
                    plannable = false;
                    all_cf = false;
                }
            }
        }
    }
    (plannable, all_cf)
}

/// Probes families `0..=max_x` in parallel — one [`BatchRunner`]
/// session per worker — and reports per-family conflict-freedom.
fn probe_windows(
    make_session: impl Fn() -> BatchRunner + Sync,
    max_x: u32,
    len: u64,
) -> Vec<(u32, bool)> {
    let families: Vec<u32> = (0..=max_x).collect();
    BatchRunner::sweep(make_session, &families, |session, &x| {
        // This experiment *verifies* the windows, so every access must
        // go through the per-cycle oracle — not the conflict-free
        // shortcut, and not the event engine either.
        session.set_engine(Engine::Cycle);
        let (_, cf) = probe_family(session, x, len);
        (x, cf)
    })
}

/// Regenerates the Theorem 1 / Theorem 3 windows: matched `L=128, T=8,
/// s=4` must be conflict free exactly for `x ∈ [0,4]`; unmatched
/// `M=64, T=8, s=4, y=9` exactly for `x ∈ [0,9]` (Sections 3.3, 4.3).
pub fn window() -> String {
    let len = 128u64;

    // Matched: t = 3, s = 4 (recommended for λ = 7).
    let mut tm = Table::new(&["x", "conflict-free (sim)", "paper window [0,4]"]);
    let mut matched_ok = true;
    for (x, cf) in probe_windows(
        || {
            BatchRunner::new(
                Planner::matched(XorMatched::new(3, 4).expect("s >= t")),
                MemConfig::new(3, 3).expect("valid"),
            )
        },
        7,
        len,
    ) {
        let expected = x <= 4;
        if cf != expected {
            matched_ok = false;
        }
        tm.row_owned(vec![x.to_string(), cf.to_string(), expected.to_string()]);
    }

    // Unmatched: t = 3, m = 6, s = 4, y = 9.
    let mut tu = Table::new(&["x", "conflict-free (sim)", "paper window [0,9]"]);
    let mut unmatched_ok = true;
    for (x, cf) in probe_windows(
        || {
            BatchRunner::new(
                Planner::unmatched(XorUnmatched::new(3, 4, 9).expect("valid")),
                MemConfig::new(6, 3).expect("valid"),
            )
        },
        12,
        len,
    ) {
        let expected = x <= 9;
        if cf != expected {
            unmatched_ok = false;
        }
        tu.row_owned(vec![x.to_string(), cf.to_string(), expected.to_string()]);
    }

    format!(
        "Conflict-free windows, verified by cycle simulation over σ ∈ {SIGMAS:?}, A1 ∈ {BASES:?}\n\n\
         Matched memory: L=128, M=T=8, s=4 (Theorem 1: x ∈ [0, 4])\n\n{}\n\
         Window matches Theorem 1: {}\n\n\
         Unmatched memory: L=128, T=8, M=64, s=4, y=9 (Theorem 3: x ∈ [0, 9])\n\n{}\n\
         Window matches Theorem 3: {}\n",
        tm.render(),
        if matched_ok { "YES" } else { "NO" },
        tu.render(),
        if unmatched_ok { "YES" } else { "NO" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_match_theorems() {
        let r = window();
        assert!(r.contains("Window matches Theorem 1: YES"), "{r}");
        assert!(r.contains("Window matches Theorem 3: YES"), "{r}");
    }
}
