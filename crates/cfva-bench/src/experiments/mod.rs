//! Experiment runners — one per paper artifact (DESIGN.md §4).
//!
//! Each runner regenerates a figure or quantitative claim and returns a
//! plain-text report quoting the paper's value next to the measured one.

pub mod analytic;
pub mod chaining;
pub mod contention;
pub mod extensions;
pub mod fig_maps;
pub mod hardware;
pub mod latency;
pub mod map_sweep;
pub mod serve_demo;
pub mod shortvec;
pub mod tradeoff;
pub mod window_sweep;
pub mod worked;

pub use map_sweep::map_sweep;
pub use serve_demo::serve_demo;

/// One runnable experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Short id used on the command line (e.g. `fig3`).
    pub id: &'static str,
    /// Human-readable title including the paper artifact.
    pub title: &'static str,
    /// Runs the experiment and renders its report.
    pub run: fn() -> String,
}

/// The full experiment registry, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig3",
            title: "Figure 3: matched XOR mapping grid (m=t=3, s=3)",
            run: fig_maps::fig3,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7: unmatched two-level mapping grid (m=4, t=2, s=3, y=7)",
            run: fig_maps::fig7,
        },
        Experiment {
            id: "ctp-ex",
            title: "Section 3 worked example: stride 12, A1=16 (CTP & subsequences)",
            run: worked::ctp_example,
        },
        Experiment {
            id: "unm-ex",
            title: "Section 4.1 worked examples: Lemma 4 subsequences",
            run: worked::unmatched_examples,
        },
        Experiment {
            id: "window",
            title: "Theorems 1 & 3: conflict-free windows verified by simulation",
            run: window_sweep::window,
        },
        Experiment {
            id: "frac",
            title: "Section 5A: fraction of conflict-free strides",
            run: analytic::fraction,
        },
        Experiment {
            id: "eff",
            title: "Section 5B: efficiency, analytic vs simulated",
            run: analytic::efficiency,
        },
        Experiment {
            id: "lat",
            title: "Sections 2/3.1/3.2: latency per family and strategy",
            run: latency::latency,
        },
        Experiment {
            id: "modcost",
            title: "Section 5E: window width vs module count",
            run: tradeoff::module_cost,
        },
        Experiment {
            id: "len",
            title: "Section 5H: conflict-free families vs vector length",
            run: tradeoff::family_counts,
        },
        Experiment {
            id: "short",
            title: "Section 5C: short-vector split",
            run: shortvec::short_vectors,
        },
        Experiment {
            id: "hw",
            title: "Section 5D / Figures 4-6: hardware cost and RTL equivalence",
            run: hardware::hardware,
        },
        Experiment {
            id: "chain",
            title: "Section 5F: LOAD/EXECUTE chaining",
            run: chaining::chaining,
        },
        Experiment {
            id: "maxfam",
            title: "Section 5G: families beyond the structured windows (search)",
            run: extensions::max_families,
        },
        Experiment {
            id: "dynamic",
            title: "Reference [11]: dynamic per-region scheme",
            run: extensions::dynamic_scheme,
        },
        Experiment {
            id: "multi",
            title: "Section 6 future work: simultaneous vector accesses",
            run: extensions::multi_vector,
        },
        Experiment {
            id: "buffers",
            title: "Ablation: input-buffer depth vs ordering strategy",
            run: extensions::buffer_ablation,
        },
        Experiment {
            id: "prand",
            title: "Reference [12]: pseudo-random interleaving baseline",
            run: extensions::pseudo_random_comparison,
        },
    ]
}

/// Runs one experiment by id.
pub fn run_by_id(id: &str) -> Option<String> {
    all().into_iter().find(|e| e.id == id).map(|e| (e.run)())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let exps = all();
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), exps.len());
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("nope").is_none());
    }
}
