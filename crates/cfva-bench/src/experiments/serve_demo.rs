//! `serve-demo`: drive the plan/measure service with a mixed
//! multi-client workload and report throughput, latency percentiles
//! and backpressure rejections.
//!
//! Each client runs a closed loop with a small in-flight window:
//! submit until the window is full, then reap the oldest ticket,
//! recording submit→response latency. The request mix spans every
//! [`Request`] variant across all registered map specs, so worker
//! session caches, spec-affinity routing and work stealing are all
//! exercised. An over-capacity run (small `--queue`, many clients)
//! must *reject* with `Overloaded` — never deadlock — which the
//! summary reports and CI asserts via `--require-rejections`.
//!
//! The mix has deliberate **temporal locality**: every client re-submits
//! one pinned request every 30 iterations, so a run long enough to
//! repeat it (`--requests` ≥ 31, window < 30) is *guaranteed* to hit
//! the service's result cache. The report prints the final
//! [`Service::stats`] snapshot (cache hits/misses/evictions, hit
//! rate), and CI asserts a nonzero hit rate via `--require-cache-hits`.
//!
//! With `--tcp` the same workload runs over the loopback wire instead:
//! the service is fronted by a [`WireServer`] on `127.0.0.1:0` and each
//! client thread drives its own [`WireClient`] connection. Admission
//! behaves identically — `Overloaded` arrives as a typed reply frame
//! (counted at reap time rather than submit time) — and the report adds
//! the server's `wire_*` counters. `--require-no-loss` asserts the
//! conservation law `completed + rejected + failed == attempted`, i.e.
//! the drain path flushed every accepted ticket.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfva_core::mapping::Registry;
use cfva_core::plan::Strategy;
use cfva_core::{Stride, VectorSpec};
use cfva_serve::api::{Estimator, Request, ServeError};
use cfva_serve::service::{ServeTicket, Service, ServiceConfig, ServiceStats};
use cfva_wire::client::{WireClient, WireTicket};
use cfva_wire::server::{WireServer, WireServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// Demo sizing, straight from the `serve-demo` CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemoConfig {
    /// Service workers.
    pub workers: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client attempts.
    pub requests_per_client: usize,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// Per-client in-flight window (tickets held before reaping).
    pub window: usize,
    /// Chaos seed (`--inject-faults`): installs a seeded
    /// [`FaultPlan`](cfva_serve::fault::FaultPlan) — worker kills, job
    /// panics, queue bursts, cache poisoning — which the hardened
    /// service must absorb without losing a single accepted ticket.
    pub fault_seed: Option<u64>,
    /// Run the workload over the loopback wire (`--tcp`): a
    /// [`WireServer`] fronts the service and every client thread opens
    /// its own [`WireClient`] connection.
    pub tcp: bool,
}

impl Default for DemoConfig {
    fn default() -> Self {
        DemoConfig {
            workers: ServiceConfig::default().workers,
            clients: 3,
            requests_per_client: 60,
            queue_capacity: ServiceConfig::default().queue_capacity,
            window: 8,
            fault_seed: None,
            tcp: false,
        }
    }
}

/// What the demo measured (the caller renders or asserts on it).
#[derive(Debug, Clone, PartialEq)]
pub struct DemoOutcome {
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests that resolved to a non-overload error (should be 0 —
    /// the demo only submits valid requests).
    pub failed: u64,
    /// The service's final [`Service::stats`] snapshot (taken after
    /// every client finished, before shutdown) — queue depth, in-flight
    /// gauge and result-cache counters. In `--tcp` mode this is the
    /// [`WireServer::stats`] snapshot, so the `wire_*` counters are
    /// live rather than zero.
    pub stats: ServiceStats,
    /// The rendered report.
    pub report: String,
}

/// The pinned request every client re-submits every 30 iterations: the
/// demo's temporal locality, and the guarantee behind
/// `--require-cache-hits` — by a client's second submission its first
/// response has long been reaped (the in-flight window is far smaller
/// than 30), so the result cache must hold it.
fn pinned_request(specs: &[String]) -> Request {
    Request::FamilySweep {
        spec: specs[0].clone(),
        len: 128,
        max_x: 5,
        sigma: 3,
    }
}

/// One client's sampled request: every variant appears in the mix, all
/// specs drawn from the live registry.
fn sample_request<R: Rng + ?Sized>(rng: &mut R, specs: &[String]) -> Request {
    let spec = specs[rng.gen_range(0..specs.len())].clone();
    // Conflicted-leaning strides: high families collide on most maps.
    let sigma = 2 * rng.gen_range(0i64..8) + 1;
    let x = rng.gen_range(0u32..7);
    let stride = Stride::from_parts(sigma, x).expect("odd sigma, bounded x");
    match rng.gen_range(0u32..10) {
        0..=5 => Request::Measure {
            spec,
            vec: VectorSpec::with_stride(rng.gen_range(0u64..1 << 20).into(), stride, 512)
                .expect("bounded base cannot overflow"),
            strategy: Strategy::Auto,
        },
        6..=7 => Request::MeasureBatch {
            spec,
            accesses: (0..4)
                .map(|i| {
                    (
                        VectorSpec::new(16 + 8 * i, stride.get(), 256).expect("valid"),
                        Strategy::Auto,
                    )
                })
                .collect(),
        },
        8 => Request::Efficiency {
            spec,
            strategy: Strategy::Auto,
            len: 64,
            estimator: Estimator::Stratified {
                max_x: 6,
                per_family: 2,
            },
            seed: rng.gen_range(0..u64::MAX),
        },
        _ => Request::FamilySweep {
            spec,
            len: 128,
            max_x: 5,
            sigma,
        },
    }
}

/// One client's closed loop against the in-process [`Service`]:
/// `Overloaded` is counted at submit time, everything else at reap.
fn direct_client_loop(
    service: &Service,
    client: usize,
    config: &DemoConfig,
    specs: &[String],
) -> (Vec<Duration>, u64, u64) {
    let mut rng = StdRng::seed_from_u64(0x5e11_0000 + client as u64);
    let mut window: Vec<(Instant, ServeTicket)> = Vec::new();
    let mut latencies = Vec::with_capacity(config.requests_per_client);
    let (mut rejected, mut failed) = (0u64, 0u64);
    let reap =
        |w: &mut Vec<(Instant, ServeTicket)>, latencies: &mut Vec<Duration>, failed: &mut u64| {
            let (submitted, ticket) = w.remove(0);
            match ticket.wait() {
                Ok(_) => latencies.push(submitted.elapsed()),
                Err(_) => *failed += 1,
            }
        };
    for i in 0..config.requests_per_client {
        let request = if i % 30 == 0 {
            pinned_request(specs)
        } else {
            sample_request(&mut rng, specs)
        };
        match service.submit(request) {
            Ok(ticket) => window.push((Instant::now(), ticket)),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("demo submitted an invalid request: {e}"),
        }
        if window.len() >= config.window {
            reap(&mut window, &mut latencies, &mut failed);
        }
    }
    while !window.is_empty() {
        reap(&mut window, &mut latencies, &mut failed);
    }
    (latencies, rejected, failed)
}

/// The same closed loop over one loopback [`WireClient`] connection.
/// On the wire a submission always succeeds at the transport level;
/// service-level rejections come back as the ticket's *result*, so
/// `Overloaded` is counted at reap time instead — the conservation law
/// `completed + rejected + failed == attempted` holds either way.
fn wire_client_loop(
    addr: SocketAddr,
    client: usize,
    config: &DemoConfig,
    specs: &[String],
) -> (Vec<Duration>, u64, u64) {
    fn reap(
        conn: &mut WireClient,
        w: &mut Vec<(Instant, WireTicket)>,
        latencies: &mut Vec<Duration>,
        rejected: &mut u64,
        failed: &mut u64,
    ) {
        let (submitted, ticket) = w.remove(0);
        match conn.wait(ticket).expect("loopback transport stays up") {
            Ok(_) => latencies.push(submitted.elapsed()),
            Err(ServeError::Overloaded { .. }) => *rejected += 1,
            Err(_) => *failed += 1,
        }
    }
    let mut conn = WireClient::connect(addr).expect("loopback connect cannot fail");
    let mut rng = StdRng::seed_from_u64(0x5e11_0000 + client as u64);
    let mut window: Vec<(Instant, WireTicket)> = Vec::new();
    let mut latencies = Vec::with_capacity(config.requests_per_client);
    let (mut rejected, mut failed) = (0u64, 0u64);
    for i in 0..config.requests_per_client {
        let request = if i % 30 == 0 {
            pinned_request(specs)
        } else {
            sample_request(&mut rng, specs)
        };
        let ticket = conn
            .submit(request)
            .expect("loopback submit cannot fail at the transport level");
        window.push((Instant::now(), ticket));
        if window.len() >= config.window {
            reap(
                &mut conn,
                &mut window,
                &mut latencies,
                &mut rejected,
                &mut failed,
            );
        }
    }
    while !window.is_empty() {
        reap(
            &mut conn,
            &mut window,
            &mut latencies,
            &mut rejected,
            &mut failed,
        );
    }
    (latencies, rejected, failed)
}

/// Runs the demo and returns the outcome (see the module docs).
pub fn serve_demo(config: &DemoConfig) -> DemoOutcome {
    let mut service_config =
        ServiceConfig::with_workers(config.workers).queue_capacity(config.queue_capacity);
    if let Some(seed) = config.fault_seed {
        // Horizon covers every submission index and job tag the run can
        // produce (bursts included), so faults fire throughout.
        let horizon = (config.clients * config.requests_per_client * 4).max(4096) as u64;
        service_config = service_config.fault_plan(std::sync::Arc::new(
            cfva_serve::fault::FaultPlan::seeded(seed, horizon),
        ));
    }
    let service = Arc::new(Service::new(service_config));
    let server = if config.tcp {
        Some(
            WireServer::bind(
                Arc::clone(&service),
                "127.0.0.1:0",
                WireServerConfig {
                    // The window bounds each client's outstanding
                    // tickets, but the server's gauge decrements only
                    // once the reply is *written* — one slot of margin
                    // absorbs that lag so the cap never fires here.
                    max_in_flight_per_conn: config.window + 1,
                },
            )
            .expect("binding an ephemeral loopback port cannot fail"),
        )
    } else {
        None
    };
    let wire_addr = server.as_ref().map(WireServer::local_addr);
    let specs: Vec<String> = Registry::builtin()
        .all_specs()
        .iter()
        .map(|s| s.to_string())
        .collect();

    let started = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut rejected = 0u64;
    let mut failed = 0u64;

    std::thread::scope(|scope| {
        let service = &service;
        let specs = &specs;
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                scope.spawn(move || match wire_addr {
                    Some(addr) => wire_client_loop(addr, client, config, specs),
                    None => direct_client_loop(service, client, config, specs),
                })
            })
            .collect();
        for handle in handles {
            let (client_latencies, client_rejected, client_failed) =
                handle.join().expect("demo client panicked");
            latencies.extend(client_latencies);
            rejected += client_rejected;
            failed += client_failed;
        }
    });
    let wall = started.elapsed();
    // The server's snapshot carries the wire_* counters the plain
    // service snapshot leaves at zero.
    let stats = match &server {
        Some(server) => server.stats(),
        None => service.stats(),
    };
    if let Some(server) = &server {
        server.shutdown();
    }
    service.shutdown();

    let completed = latencies.len() as u64;
    latencies.sort_unstable();
    let pct = |p: f64| -> Duration {
        if latencies.is_empty() {
            Duration::ZERO
        } else {
            let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
            latencies[idx]
        }
    };
    let throughput = completed as f64 / wall.as_secs_f64().max(1e-9);

    let mut t = Table::new(&["metric", "value"]);
    t.row_owned(vec!["workers".into(), config.workers.to_string()]);
    t.row_owned(vec!["clients".into(), config.clients.to_string()]);
    t.row_owned(vec![
        "transport".into(),
        if config.tcp {
            "tcp loopback".into()
        } else {
            "in-process".into()
        },
    ]);
    t.row_owned(vec![
        "queue capacity".into(),
        config.queue_capacity.to_string(),
    ]);
    t.row_owned(vec![
        "attempted".into(),
        (config.clients * config.requests_per_client).to_string(),
    ]);
    t.row_owned(vec!["completed".into(), completed.to_string()]);
    t.row_owned(vec!["rejected (Overloaded)".into(), rejected.to_string()]);
    t.row_owned(vec!["failed".into(), failed.to_string()]);
    t.row_owned(vec!["wall time".into(), format!("{wall:.2?}")]);
    t.row_owned(vec!["throughput".into(), format!("{throughput:.0} req/s")]);
    t.row_owned(vec!["latency p50".into(), format!("{:.2?}", pct(0.50))]);
    t.row_owned(vec!["latency p95".into(), format!("{:.2?}", pct(0.95))]);
    t.row_owned(vec!["latency p99".into(), format!("{:.2?}", pct(0.99))]);
    t.row_owned(vec![
        "queue depth / in flight".into(),
        format!("{} / {}", stats.queue_depth, stats.in_flight),
    ]);
    match stats.cache {
        Some(cache) => {
            t.row_owned(vec![
                "cache hits / misses / bypasses".into(),
                format!("{} / {} / {}", cache.hits, cache.misses, cache.bypasses),
            ]);
            t.row_owned(vec![
                "cache hit rate".into(),
                format!("{:.1}%", 100.0 * cache.hit_rate()),
            ]);
            t.row_owned(vec![
                "cache entries / capacity / evictions".into(),
                format!(
                    "{} / {} / {}",
                    cache.entries, cache.capacity, cache.evictions
                ),
            ]);
        }
        None => {
            t.row_owned(vec!["result cache".into(), "disabled".into()]);
        }
    }
    t.row_owned(vec![
        "retries / worker restarts".into(),
        format!("{} / {}", stats.retries, stats.restarts),
    ]);
    t.row_owned(vec![
        "deadline exceeded / degraded".into(),
        format!("{} / {}", stats.deadline_exceeded, stats.degraded),
    ]);
    if config.fault_seed.is_some() {
        t.row_owned(vec![
            "faults injected".into(),
            stats.faults_injected.to_string(),
        ]);
    }
    if config.tcp {
        t.row_owned(vec![
            "wire connections / rejections / in flight".into(),
            format!(
                "{} / {} / {}",
                stats.wire_connections, stats.wire_rejections, stats.wire_in_flight
            ),
        ]);
    }

    let report = format!(
        "Serve demo — mixed workload (measure / batch / efficiency / family sweep)\n\
         across {} registered map specs, {} client(s) with an in-flight window of {}\n\n{}",
        specs.len(),
        config.clients,
        config.window,
        t.render()
    );
    DemoOutcome {
        completed,
        rejected,
        failed,
        stats,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_demo_completes_everything_with_ample_queue() {
        let outcome = serve_demo(&DemoConfig {
            workers: 2,
            clients: 2,
            requests_per_client: 10,
            queue_capacity: 256,
            window: 4,
            fault_seed: None,
            tcp: false,
        });
        assert_eq!(outcome.completed, 20);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.failed, 0);
        assert!(outcome.report.contains("throughput"), "{}", outcome.report);
        assert!(
            outcome.report.contains("cache hit rate"),
            "{}",
            outcome.report
        );
    }

    #[test]
    fn long_enough_run_is_guaranteed_cache_hits() {
        // 31 requests re-submit the pinned request once per client,
        // long after its first response was reaped — the hit cannot be
        // raced away. This is the contract `--require-cache-hits`
        // (the CI cached-path smoke) stands on.
        let outcome = serve_demo(&DemoConfig {
            workers: 2,
            clients: 2,
            requests_per_client: 31,
            queue_capacity: 256,
            window: 4,
            fault_seed: None,
            tcp: false,
        });
        assert_eq!(outcome.failed, 0);
        let cache = outcome.stats.cache.expect("cache on by default");
        assert!(cache.hits >= 2, "one guaranteed hit per client: {cache:?}");
        assert!(cache.hit_rate() > 0.0);
        assert_eq!(
            (outcome.stats.queue_depth, outcome.stats.in_flight),
            (0, 0),
            "all clients joined before the snapshot"
        );
    }

    #[test]
    fn chaos_run_recovers_every_accepted_ticket() {
        // The `--inject-faults … --require-recovery` contract: under a
        // seeded chaos schedule, no accepted ticket is lost, nothing
        // fails, and the fault plan demonstrably fired.
        let outcome = serve_demo(&DemoConfig {
            workers: 2,
            clients: 2,
            requests_per_client: 40,
            queue_capacity: 256,
            window: 4,
            fault_seed: Some(7),
            tcp: false,
        });
        assert_eq!(outcome.failed, 0, "{}", outcome.report);
        assert_eq!(
            outcome.completed + outcome.rejected,
            80,
            "{}",
            outcome.report
        );
        assert!(outcome.stats.faults_injected > 0, "{}", outcome.report);
        assert!(outcome.report.contains("faults injected"));
    }

    #[test]
    fn over_capacity_burst_rejects_instead_of_deadlocking() {
        // One worker, a queue of one, and clients that keep eight
        // requests in flight: rejections are unavoidable, and the demo
        // must still terminate with every accepted ticket resolved.
        let outcome = serve_demo(&DemoConfig {
            workers: 1,
            clients: 3,
            requests_per_client: 25,
            queue_capacity: 1,
            window: 8,
            fault_seed: None,
            tcp: false,
        });
        assert!(outcome.rejected > 0, "{}", outcome.report);
        assert_eq!(outcome.failed, 0);
        assert_eq!(
            outcome.completed + outcome.rejected,
            75,
            "{}",
            outcome.report
        );
    }

    #[test]
    fn tcp_demo_matches_in_process_accounting() {
        // An ample-queue `--tcp` run: every request completes, nothing
        // is lost on the wire, and the server counted one connection
        // per client thread.
        let outcome = serve_demo(&DemoConfig {
            workers: 2,
            clients: 2,
            requests_per_client: 15,
            queue_capacity: 256,
            window: 4,
            fault_seed: None,
            tcp: true,
        });
        assert_eq!(outcome.completed, 30, "{}", outcome.report);
        assert_eq!(outcome.rejected, 0, "{}", outcome.report);
        assert_eq!(outcome.failed, 0, "{}", outcome.report);
        assert_eq!(outcome.stats.wire_connections, 2, "{}", outcome.report);
        assert_eq!(
            (outcome.stats.wire_rejections, outcome.stats.wire_in_flight),
            (0, 0),
            "{}",
            outcome.report
        );
        assert!(
            outcome.report.contains("tcp loopback"),
            "{}",
            outcome.report
        );
        assert!(
            outcome.report.contains("wire connections"),
            "{}",
            outcome.report
        );
    }

    #[test]
    fn tcp_over_capacity_burst_rejects_with_zero_loss() {
        // The CI wire-smoke contract (`--tcp --require-rejections
        // --require-no-loss`): backpressure engages over the socket as
        // typed `Overloaded` replies, the server's rejection counter
        // agrees with the clients' tally, and the conservation law
        // holds — no ticket is lost between submit and drain.
        let outcome = serve_demo(&DemoConfig {
            workers: 1,
            clients: 3,
            requests_per_client: 25,
            queue_capacity: 1,
            window: 8,
            fault_seed: None,
            tcp: true,
        });
        assert!(outcome.rejected > 0, "{}", outcome.report);
        assert_eq!(outcome.failed, 0, "{}", outcome.report);
        assert_eq!(
            outcome.completed + outcome.rejected,
            75,
            "{}",
            outcome.report
        );
        assert_eq!(
            outcome.stats.wire_rejections, outcome.rejected,
            "every Overloaded reply is one wire rejection: {}",
            outcome.report
        );
        assert_eq!(outcome.stats.wire_connections, 3, "{}", outcome.report);
        assert_eq!(outcome.stats.wire_in_flight, 0, "{}", outcome.report);
    }
}
