//! Golden regression tests: every experiment report must keep asserting
//! agreement with the paper. These run the full harness end to end —
//! if a refactor silently changes a reproduced number, these fail.

use cfva_bench::experiments;

fn report(id: &str) -> String {
    experiments::run_by_id(id).unwrap_or_else(|| panic!("unknown experiment {id}"))
}

#[test]
fn registry_covers_all_paper_artifacts() {
    let ids: Vec<&str> = experiments::all().iter().map(|e| e.id).collect();
    for required in [
        "fig3", "fig7", "ctp-ex", "unm-ex", "window", "frac", "eff", "lat", "modcost", "len",
        "short", "hw", "chain", "maxfam", "dynamic", "multi", "buffers", "prand",
    ] {
        assert!(ids.contains(&required), "missing experiment {required}");
    }
}

#[test]
fn fig3_grid_pinned() {
    let r = report("fig3");
    // The full row the paper prints for displacement 1.
    assert!(r.contains("9   8   11  10  13  12  15  14"), "{r}");
    assert!(r.contains("MATCH"), "{r}");
}

#[test]
fn fig7_vector_modules_pinned() {
    let r = report("fig7");
    assert!(r.contains("[2, 6, 10, 14]"), "{r}");
    assert!(r.contains("modules [0, 1, 2, 3]"), "{r}");
}

#[test]
fn ctp_sequence_pinned() {
    let r = report("ctp-ex");
    assert!(
        r.contains("[2, 7, 5, 2, 0, 5, 3, 0, 6, 3, 1, 6, 4, 1, 7, 4]"),
        "{r}"
    );
    assert!(r.contains("replay order: true"), "{r}");
}

#[test]
fn window_verdicts_pinned() {
    let r = report("window");
    assert!(r.contains("Window matches Theorem 1: YES"), "{r}");
    assert!(r.contains("Window matches Theorem 3: YES"), "{r}");
}

#[test]
fn fraction_values_pinned() {
    let r = report("frac");
    assert!(r.contains("31/32"), "{r}");
    assert!(r.contains("1023/1024"), "{r}");
}

#[test]
fn efficiency_values_pinned() {
    let r = report("eff");
    // Analytic columns exactly as the paper rounds them.
    assert!(r.contains("0.914"), "{r}");
    assert!(r.contains("0.997"), "{r}");
    assert!(r.contains("0.400"), "{r}");
    assert!(r.contains("0.842"), "{r}");
    // Simulated values within 0.02 of analytic is asserted implicitly:
    // the table prints both; sanity-check one line shape.
    assert!(r.contains("proposed matched"), "{r}");
}

#[test]
fn latency_floor_pinned() {
    let r = report("lat");
    assert!(r.contains("(x ≤ 4): YES"), "{r}");
    assert!(r.contains("2T+L = 144: YES"), "{r}");
}

#[test]
fn tradeoff_tables_pinned() {
    let modcost = report("modcost");
    assert!(modcost.contains("64       10"), "{modcost}");
    let len = report("len");
    assert!(len.contains("2(λ−t+1) = 10"), "{len}");
}

#[test]
fn short_split_pinned() {
    let r = report("short");
    assert!(r.contains("never slower than all-in-order: YES"), "{r}");
}

#[test]
fn hardware_equivalence_pinned() {
    let r = report("hw");
    assert!(r.contains("subsequence stream: YES"), "{r}");
    assert!(r.contains("replay stream: YES"), "{r}");
    assert!(r.contains("max 2 per key"), "{r}");
}

#[test]
fn chaining_saving_pinned() {
    let r = report("chain");
    assert!(r.contains("Saved == L: YES"), "{r}");
}

#[test]
fn extension_reports_pinned() {
    assert!(report("dynamic").contains("A = 73, B = 73"));
    assert!(report("buffers").contains("137"));
    let maxfam = report("maxfam");
    assert!(maxfam.contains("10/15"), "{maxfam}");
    let prand = report("prand");
    assert!(prand.contains("137"), "{prand}");
}
