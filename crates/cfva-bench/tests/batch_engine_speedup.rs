//! Acceptance test for the batch execution engine: the session path
//! (reused system + plan scratch + verified fast path) must be at
//! least 1.5× faster than the naive per-call path on a 400-sample
//! efficiency sweep — and must compute the identical estimate.

use std::time::Instant;

use cfva_bench::runner::{self, BatchRunner};
use cfva_bench::workload::StrideSampler;
use cfva_core::mapping::XorMatched;
use cfva_core::plan::{Planner, Strategy};
use cfva_memsim::MemConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: u32 = 400;
const LEN: u64 = 128;

fn naive_sweep(planner: &Planner, mem: MemConfig, sampler: &StrideSampler) -> f64 {
    let mut rng = StdRng::seed_from_u64(1992);
    runner::naive_simulated_efficiency(
        planner,
        Strategy::Auto,
        mem,
        LEN,
        SAMPLES,
        sampler,
        &mut rng,
    )
}

fn batch_sweep(session: &mut BatchRunner, sampler: &StrideSampler) -> f64 {
    let mut rng = StdRng::seed_from_u64(1992);
    session.simulated_efficiency(Strategy::Auto, LEN, SAMPLES, sampler, &mut rng)
}

#[test]
fn batch_path_at_least_1_5x_faster_than_naive() {
    let mem = MemConfig::new(3, 3).unwrap();
    let sampler = StrideSampler::new(10, 9);
    let planner = Planner::matched(XorMatched::new(3, 4).unwrap());
    let mut session = BatchRunner::new(Planner::matched(XorMatched::new(3, 4).unwrap()), mem);

    // Same seed, same samples: the estimates must agree exactly.
    let eta_naive = naive_sweep(&planner, mem, &sampler);
    let eta_batch = batch_sweep(&mut session, &sampler);
    assert_eq!(
        eta_naive, eta_batch,
        "batch and naive sweeps must compute the same estimate"
    );

    // Warm-up already done above; take the best of three timed rounds
    // for each path to damp scheduler noise.
    let time = |f: &mut dyn FnMut() -> f64| {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let naive_time = time(&mut || naive_sweep(&planner, mem, &sampler));
    let batch_time = time(&mut || batch_sweep(&mut session, &sampler));

    let speedup = naive_time.as_secs_f64() / batch_time.as_secs_f64();
    assert!(
        speedup >= 1.5,
        "batch sweep must be >= 1.5x faster than the naive per-call path, got {speedup:.2}x \
         (naive {naive_time:?}, batch {batch_time:?})"
    );
}
