//! Determinism contract of the parallel sweep: with a seeded RNG per
//! sweep point, `BatchRunner::sweep` must produce **bit-identical**
//! results to the serial path, whatever the worker count or chunking.

use cfva_bench::runner::BatchRunner;
use cfva_bench::workload::StrideSampler;
use cfva_core::mapping::{XorMatched, XorUnmatched};
use cfva_core::plan::{Planner, Strategy};
use cfva_memsim::{AccessStats, MemConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sweep point: a seed driving that point's private RNG.
fn matched_session() -> BatchRunner {
    BatchRunner::new(
        Planner::matched(XorMatched::new(3, 4).unwrap()),
        MemConfig::new(3, 3).unwrap(),
    )
}

/// Measures one random access per point, seeded per point.
fn measure_point(session: &mut BatchRunner, seed: u64) -> AccessStats {
    let sampler = StrideSampler::new(8, 9);
    let mut rng = StdRng::seed_from_u64(seed);
    let vec = sampler.sample_vector(&mut rng, 1 << 24, 128);
    session
        .measure_owned(&vec, Strategy::Auto)
        .expect("auto plans")
}

#[test]
fn parallel_sweep_bit_identical_to_serial() {
    let points: Vec<u64> = (0..64).collect();

    let serial = BatchRunner::sweep_with_threads(1, matched_session, &points, |session, &seed| {
        measure_point(session, seed)
    });

    for threads in [2, 3, 4, 7, 64] {
        let parallel =
            BatchRunner::sweep_with_threads(threads, matched_session, &points, |session, &seed| {
                measure_point(session, seed)
            });
        assert_eq!(
            serial, parallel,
            "sweep with {threads} workers diverged from the serial path"
        );
    }
}

#[test]
fn parallel_efficiency_sweep_bit_identical_to_serial() {
    // Whole-estimator points (a full stratified sweep per point) on the
    // unmatched memory, seeded per point.
    let points: Vec<u64> = (0..6).collect();
    let make_session = || {
        BatchRunner::new(
            Planner::unmatched(XorUnmatched::new(2, 3, 7).unwrap()),
            MemConfig::new(4, 2).unwrap(),
        )
    };
    let run = |session: &mut BatchRunner, &seed: &u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        session
            .stratified_efficiency(Strategy::Auto, 64, 6, 3, &mut rng)
            .to_bits()
    };

    let serial = BatchRunner::sweep_with_threads(1, make_session, &points, run);
    let parallel = BatchRunner::sweep_with_threads(3, make_session, &points, run);
    assert_eq!(serial, parallel);
}

#[test]
fn default_sweep_matches_explicit_threads() {
    let points: Vec<u64> = (0..16).collect();
    let auto = BatchRunner::sweep(matched_session, &points, |session, &seed| {
        measure_point(session, seed).latency
    });
    let serial = BatchRunner::sweep_with_threads(1, matched_session, &points, |session, &seed| {
        measure_point(session, seed).latency
    });
    assert_eq!(auto, serial);
}
