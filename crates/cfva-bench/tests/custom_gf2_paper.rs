//! `CustomGf2` against the paper's published matrix: equation (1)
//! (`b_i = a_i ⊕ a_{s+i}`, here t = 3, s = 4 — the Theorem 1 window
//! configuration) encoded as a committed `.gf2` matrix file must
//! route **and measure** exactly like the built-in [`XorMatched`] map
//! on the window-sweep workload.

use cfva_bench::runner::BatchRunner;
use cfva_core::mapping::{CustomGf2, MapSpec, ModuleMap, XorMatched};
use cfva_core::plan::Strategy;
use cfva_core::{Addr, Stride, VectorSpec};

/// The committed matrix file, addressed relative to this crate so the
/// test runs from any working directory.
fn matrix_path() -> String {
    format!(
        "{}/tests/data/xor_matched_t3s4.gf2",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn matrix_spec() -> MapSpec {
    format!("custom-gf2:matrix=@{}", matrix_path())
        .parse()
        .expect("spec grammar admits @file paths")
}

/// The window-sweep workload of the `window` experiment: every family
/// up to beyond the window, the same σ and base spreads.
const SIGMAS: [i64; 4] = [1, 3, 5, 7];
const BASES: [u64; 5] = [0, 1, 16, 37, 1000];
const LEN: u64 = 128;

#[test]
fn file_matrix_reproduces_equation_1_routing() {
    let custom = CustomGf2::from_file(matrix_path()).expect("committed file parses");
    let builtin = XorMatched::new(3, 4).expect("valid");
    assert_eq!(custom.module_bits(), builtin.module_bits());
    assert_eq!(custom.address_bits_used(), builtin.address_bits_used());
    for a in 0..1 << 14 {
        assert_eq!(
            custom.module_of(Addr::new(a)),
            builtin.module_of(Addr::new(a)),
            "address {a}"
        );
    }
}

/// Stats parity on the window-sweep workload. The custom map plans in
/// order (it is a baseline to the planner), so the comparison pins the
/// canonical strategy — identical routing must give identical
/// conflicts, stalls, latency, arrival times, everything.
#[test]
fn file_matrix_measures_identically_to_builtin_on_window_sweep() {
    let mut custom = BatchRunner::from_spec(&matrix_spec()).expect("file spec builds");
    let mut builtin = BatchRunner::from_spec_str("xor-matched:t=3,s=4").expect("valid");
    assert_eq!(custom.mem(), builtin.mem(), "same memory geometry");
    for x in 0..=7u32 {
        for sigma in SIGMAS {
            for base in BASES {
                let stride = Stride::from_parts(sigma, x).expect("odd sigma");
                let vec = VectorSpec::with_stride(base.into(), stride, LEN).expect("valid");
                assert_eq!(
                    custom.measure_owned(&vec, Strategy::Canonical),
                    builtin.measure_owned(&vec, Strategy::Canonical),
                    "x={x} sigma={sigma} base={base}"
                );
            }
        }
    }
}

/// The same matrix given inline must behave like the file form — the
/// README documents both spellings.
#[test]
fn inline_rows_match_the_file_form() {
    let mut from_file = BatchRunner::from_spec(&matrix_spec()).expect("file spec builds");
    let mut inline =
        BatchRunner::from_spec_str("custom-gf2:rows=0b0010001|0b0100010|0b1000100,cols=7")
            .expect("valid");
    for x in [0u32, 2, 4, 6] {
        let stride = Stride::from_parts(3, x).expect("odd sigma");
        let vec = VectorSpec::with_stride(16u64.into(), stride, LEN).expect("valid");
        assert_eq!(
            from_file.measure_owned(&vec, Strategy::Canonical),
            inline.measure_owned(&vec, Strategy::Canonical),
            "x={x}"
        );
    }
}

/// Spec-level negative paths: rank-deficient and odd-shaped matrices
/// are typed errors with a diagnostic, never a panic.
#[test]
fn bad_matrices_fail_with_typed_diagnostics() {
    let e = BatchRunner::from_spec_str("custom-gf2:rows=0b11|0b11").unwrap_err();
    assert_eq!(e, cfva_core::ConfigError::SingularMatrix);

    let e = BatchRunner::from_spec_str("custom-gf2:matrix=@/no/such/file.gf2").unwrap_err();
    assert!(e.to_string().contains("file.gf2"), "{e}");
}
