//! Cycle engine vs event-queue engine vs fast path, on the regimes
//! each one targets. The headline comparison is the worst-case
//! all-requests-one-module stride (stride = M on low-order
//! interleaving, T = 64), where the event engine's ≥ 2× advantage is
//! also *enforced* by
//! `cfva-memsim/tests/event_engine.rs::event_engine_at_least_2x_faster_on_all_conflicts_stride`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cfva_core::mapping::MapSpec;
use cfva_core::plan::{Planner, Strategy};
use cfva_core::VectorSpec;
use cfva_memsim::{AccessStats, Engine, MemConfig, MemorySystem};

/// Planner + memory geometry from one registry spec — engines are
/// engine-vs-engine comparisons, so both sides must come from the same
/// runtime-selected configuration.
fn from_spec(spec: &str) -> (Planner, MemConfig) {
    let spec: MapSpec = spec.parse().expect("static spec");
    (
        Planner::from_spec(&spec).expect("static spec"),
        MemConfig::from_spec(&spec).expect("static spec"),
    )
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");

    // Worst case: every request on one module (stride 8 on 8-way
    // low-order interleaving), long service time T = 64. The cycle
    // loop walks ~L·T cycles; the event engine jumps them.
    let (planner, cfg) = from_spec("interleaved:m=3,t=6");
    for len in [128u64, 512] {
        let vec = VectorSpec::new(0, 8, len).expect("valid");
        let plan = planner.plan(&vec, Strategy::Canonical).expect("plans");
        group.throughput(Throughput::Elements(len));
        for engine in [Engine::Cycle, Engine::Event] {
            let mut sys = MemorySystem::new(cfg.with_engine(engine));
            let mut out = AccessStats::default();
            group.bench_function(BenchmarkId::new(format!("one_module_{engine}"), len), |b| {
                b.iter(|| sys.run_plan_into(black_box(&plan), &mut out))
            });
        }
    }

    // Mixed regime: canonical order of an in-window family — bursts of
    // conflicts separated by conflict-free stretches.
    let (planner, cfg) = from_spec("xor-matched:t=3,s=4");
    let vec = VectorSpec::new(16, 12, 128).expect("valid");
    let plan = planner.plan(&vec, Strategy::Canonical).expect("plans");
    for engine in [Engine::Cycle, Engine::Event] {
        let mut sys = MemorySystem::new(cfg.with_engine(engine));
        let mut out = AccessStats::default();
        group.bench_function(
            BenchmarkId::new(format!("conflicted_canonical_{engine}"), 128u64),
            |b| b.iter(|| sys.run_plan_into(black_box(&plan), &mut out)),
        );
    }

    // Conflict-free plan: the fast path's home turf; the event engine
    // must at least not regress badly vs the cycle loop here (it
    // processes every cycle, like the oracle, when no queueing
    // happens).
    let plan = planner.plan(&vec, Strategy::ConflictFree).expect("window");
    for engine in [Engine::Cycle, Engine::Event, Engine::FastPath] {
        let mut sys = MemorySystem::new(cfg.with_engine(engine));
        let mut out = AccessStats::default();
        group.bench_function(
            BenchmarkId::new(format!("conflict_free_{engine}"), 128u64),
            |b| b.iter(|| sys.run_plan_into(black_box(&plan), &mut out)),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
