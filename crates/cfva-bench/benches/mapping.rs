//! Address-mapping throughput: the module-number computation sits on
//! the critical path of every memory request, so it must be a handful
//! of gate delays (here: a handful of ALU ops).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cfva_core::mapping::{Interleaved, Linear, ModuleMap, Skewed, XorMatched, XorUnmatched};
use cfva_core::Addr;

fn bench_maps(c: &mut Criterion) {
    let mut group = c.benchmark_group("module_of");
    let addrs: Vec<Addr> = (0..1024u64).map(|i| Addr::new(i * 2654435761)).collect();

    let interleaved = Interleaved::new(3).unwrap();
    group.bench_function(BenchmarkId::new("interleaved", "m=3"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= interleaved.module_of(black_box(a)).get();
            }
            acc
        })
    });

    let skewed = Skewed::new(3, 1).unwrap();
    group.bench_function(BenchmarkId::new("skewed", "m=3 d=1"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= skewed.module_of(black_box(a)).get();
            }
            acc
        })
    });

    let xor_m = XorMatched::new(3, 4).expect("valid");
    group.bench_function(BenchmarkId::new("xor_matched", "t=3 s=4"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= xor_m.module_of(black_box(a)).get();
            }
            acc
        })
    });

    let xor_u = XorUnmatched::new(3, 4, 9).expect("valid");
    group.bench_function(BenchmarkId::new("xor_unmatched", "t=3 s=4 y=9"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= xor_u.module_of(black_box(a)).get();
            }
            acc
        })
    });

    let linear = Linear::xor_unmatched(3, 4, 9).expect("valid");
    group.bench_function(BenchmarkId::new("linear_matrix", "t=3 s=4 y=9"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= linear.module_of(black_box(a)).get();
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_maps);
criterion_main!(benches);
