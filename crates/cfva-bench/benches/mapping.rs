//! Address-mapping throughput: the module-number computation sits on
//! the critical path of every memory request, so it must be a handful
//! of gate delays (here: a handful of ALU ops).
//!
//! The `map_stride_into` group measures the bulk mapping API against
//! the per-element `module_of` loop over a `&dyn ModuleMap` — the
//! delta `Planner::plan_into` gains by resolving all modules of a plan
//! through one virtual call (periodic head + cyclic copy) instead of
//! one call per element.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cfva_core::mapping::{
    Interleaved, Linear, ModuleMap, Registry, Skewed, XorMatched, XorUnmatched,
};
use cfva_core::plan::{AccessPlan, Planner, Strategy};
use cfva_core::{Addr, ModuleId, VectorSpec};

fn bench_maps(c: &mut Criterion) {
    let mut group = c.benchmark_group("module_of");
    let addrs: Vec<Addr> = (0..1024u64).map(|i| Addr::new(i * 2654435761)).collect();

    let interleaved = Interleaved::new(3).unwrap();
    group.bench_function(BenchmarkId::new("interleaved", "m=3"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= interleaved.module_of(black_box(a)).get();
            }
            acc
        })
    });

    let skewed = Skewed::new(3, 1).unwrap();
    group.bench_function(BenchmarkId::new("skewed", "m=3 d=1"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= skewed.module_of(black_box(a)).get();
            }
            acc
        })
    });

    let xor_m = XorMatched::new(3, 4).expect("valid");
    group.bench_function(BenchmarkId::new("xor_matched", "t=3 s=4"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= xor_m.module_of(black_box(a)).get();
            }
            acc
        })
    });

    let xor_u = XorUnmatched::new(3, 4, 9).expect("valid");
    group.bench_function(BenchmarkId::new("xor_unmatched", "t=3 s=4 y=9"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= xor_u.module_of(black_box(a)).get();
            }
            acc
        })
    });

    let linear = Linear::xor_unmatched(3, 4, 9).expect("valid");
    group.bench_function(BenchmarkId::new("linear_matrix", "t=3 s=4 y=9"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= linear.module_of(black_box(a)).get();
            }
            acc
        })
    });

    group.finish();
}

/// Bulk stride mapping vs the per-element virtual-call loop, for every
/// registered map: the registry's coverage set is the bench matrix, so
/// a newly registered map (including runtime `custom-gf2` matrices) is
/// measured automatically.
fn bench_bulk_mapping(c: &mut Criterion) {
    const LEN: usize = 4096;
    let maps = Registry::builtin().all_maps();

    let mut group = c.benchmark_group("map_stride_into");
    group.throughput(Throughput::Elements(LEN as u64));
    let base = Addr::new(16);
    let stride = 12i64;
    for (spec, map) in &maps {
        let name = spec.name();
        let map: &dyn ModuleMap = map.as_ref();
        let mut out = vec![ModuleId::new(0); LEN];
        group.bench_function(BenchmarkId::new(format!("{name}_per_element"), LEN), |b| {
            b.iter(|| {
                let mut addr = base.get();
                for slot in out.iter_mut() {
                    *slot = map.module_of(black_box(Addr::new(addr)));
                    addr = addr.wrapping_add_signed(stride);
                }
            })
        });
        group.bench_function(BenchmarkId::new(format!("{name}_bulk"), LEN), |b| {
            b.iter(|| map.map_stride_into(black_box(base), black_box(stride), &mut out))
        });
    }
    group.finish();

    // The downstream payoff: plan construction through the reused
    // buffer, which now performs one map_stride_into call per plan.
    let mut group = c.benchmark_group("plan_into");
    group.throughput(Throughput::Elements(LEN as u64));
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));
    let vec = VectorSpec::new(16, 12, LEN as u64).expect("valid");
    let mut plan = AccessPlan::new();
    for strategy in [Strategy::Canonical, Strategy::ConflictFree] {
        group.bench_function(BenchmarkId::new(format!("{strategy}"), LEN), |b| {
            b.iter(|| {
                planner
                    .plan_into(black_box(&vec), strategy, &mut plan)
                    .expect("plannable")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maps, bench_bulk_mapping);
criterion_main!(benches);
