//! Periodic steady-state fast-forward engine vs the event-queue engine
//! (and the cycle oracle), on the long-vector regimes the extrapolation
//! targets. The headline numbers here have an *enforced* twin:
//! `cfva-memsim/tests/periodic_engine.rs` asserts ≥ 3× over the event
//! engine on long-vector conflicted strides.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cfva_core::mapping::{Interleaved, XorMatched};
use cfva_core::plan::{Planner, Strategy};
use cfva_core::VectorSpec;
use cfva_memsim::{AccessStats, Engine, MemConfig, MemorySystem};

fn bench_periodic(c: &mut Criterion) {
    let mut group = c.benchmark_group("periodic");

    // Long-vector conflicted stride: family x = 2 in canonical order on
    // the eq. (1) map — conflicted but not serialized, so the event
    // engine still processes nearly every cycle. P_x = 32; lengths are
    // 16..256 periods.
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));
    let cfg = MemConfig::new(3, 3).expect("valid");
    for len in [512u64, 2048, 8192] {
        let vec = VectorSpec::new(16, 12, len).expect("valid");
        let plan = planner.plan(&vec, Strategy::Canonical).expect("plans");
        group.throughput(Throughput::Elements(len));
        for engine in [Engine::Event, Engine::Periodic] {
            let mut sys = MemorySystem::new(cfg.with_engine(engine));
            let mut out = AccessStats::default();
            group.bench_function(
                BenchmarkId::new(format!("conflicted_x2_{engine}"), len),
                |b| b.iter(|| sys.run_plan_into(black_box(&plan), &mut out)),
            );
        }
    }

    // Fully serialized worst case: stride = M on low-order interleaving
    // (module-sequence period 1), long service time T = 64.
    let planner = Planner::baseline(Interleaved::new(3).expect("m in range"), 6);
    let cfg = MemConfig::new(3, 6).expect("valid");
    for len in [1024u64, 4096] {
        let vec = VectorSpec::new(0, 8, len).expect("valid");
        let plan = planner.plan(&vec, Strategy::Canonical).expect("plans");
        group.throughput(Throughput::Elements(len));
        for engine in [Engine::Event, Engine::Periodic] {
            let mut sys = MemorySystem::new(cfg.with_engine(engine));
            let mut out = AccessStats::default();
            group.bench_function(BenchmarkId::new(format!("one_module_{engine}"), len), |b| {
                b.iter(|| sys.run_plan_into(black_box(&plan), &mut out))
            });
        }
    }

    // Conflict-free replay plan: period T, zero conflicts — the
    // periodic engine extrapolates it just as well (FastPath would
    // shortcut it entirely; shown for scale).
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));
    let cfg = MemConfig::new(3, 3).expect("valid");
    let vec = VectorSpec::new(16, 12, 4096).expect("valid");
    let plan = planner.plan(&vec, Strategy::ConflictFree).expect("window");
    group.throughput(Throughput::Elements(4096));
    for engine in [Engine::Event, Engine::Periodic, Engine::FastPath] {
        let mut sys = MemorySystem::new(cfg.with_engine(engine));
        let mut out = AccessStats::default();
        group.bench_function(
            BenchmarkId::new(format!("conflict_free_{engine}"), 4096u64),
            |b| b.iter(|| sys.run_plan_into(black_box(&plan), &mut out)),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_periodic);
criterion_main!(benches);
