//! Plan-generation cost: building the request order for one
//! register-length access. The paper's hardware does this incrementally
//! at one address per cycle; the software planner should be comparably
//! cheap per element.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cfva_core::mapping::XorMatched;
use cfva_core::plan::{Planner, Strategy};
use cfva_core::VectorSpec;

fn bench_strategies(c: &mut Criterion) {
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));

    let mut group = c.benchmark_group("plan");
    for len in [64u64, 128, 1024] {
        let vec = VectorSpec::new(16, 12, len).expect("valid");
        group.throughput(Throughput::Elements(len));
        for (name, strategy) in [
            ("canonical", Strategy::Canonical),
            ("subsequence", Strategy::Subsequence),
            ("conflict_free", Strategy::ConflictFree),
        ] {
            group.bench_function(BenchmarkId::new(name, len), |b| {
                b.iter(|| planner.plan(black_box(&vec), strategy).expect("plannable"))
            });
        }
    }
    group.finish();
}

fn bench_generator_fsm(c: &mut Criterion) {
    use cfva_core::hardware::{AddressGenerator, GeneratorConfig};
    use cfva_core::order::SubseqStructure;

    let vec = VectorSpec::new(16, 12, 1024).expect("valid");
    let st = SubseqStructure::new(2, 8);
    let cfg = GeneratorConfig::for_vector(&vec, &st).expect("compatible");

    let mut group = c.benchmark_group("hardware_fsm");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("address_generator_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (addr, reg) in AddressGenerator::new(black_box(cfg)) {
                acc = acc.wrapping_add(addr.get()).wrapping_add(reg);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_generator_fsm);
criterion_main!(benches);
