//! Simulator throughput: cycles simulated per second, across memory
//! sizes and plan kinds. Keeps the experiment harness honest about its
//! own cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cfva_core::mapping::{XorMatched, XorUnmatched};
use cfva_core::plan::{Planner, Strategy};
use cfva_core::VectorSpec;
use cfva_memsim::{MemConfig, MemorySystem};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsim");

    // Matched, conflict-free plan (the fast path: no queueing).
    let planner = Planner::matched(XorMatched::new(3, 4).expect("valid"));
    for len in [128u64, 1024] {
        let vec = VectorSpec::new(16, 12, len).expect("valid");
        let plan = planner
            .plan(&vec, Strategy::ConflictFree)
            .expect("in window");
        let mem = MemConfig::new(3, 3).expect("valid");
        group.throughput(Throughput::Elements(len));
        group.bench_function(BenchmarkId::new("conflict_free", len), |b| {
            b.iter(|| MemorySystem::new(mem).run_plan(black_box(&plan)))
        });
    }

    // Matched, canonical plan with conflicts (the queueing path).
    let vec = VectorSpec::new(16, 12, 128).expect("valid");
    let plan = planner.plan(&vec, Strategy::Canonical).expect("plannable");
    let mem = MemConfig::new(3, 3).expect("valid");
    group.bench_function(BenchmarkId::new("conflicting_canonical", 128u64), |b| {
        b.iter(|| MemorySystem::new(mem).run_plan(black_box(&plan)))
    });

    // Unmatched memory: 64 modules.
    let planner = Planner::unmatched(XorUnmatched::new(3, 4, 9).expect("valid"));
    let vec = VectorSpec::new(6, 96, 128).expect("valid"); // x = 5: section replay
    let plan = planner
        .plan(&vec, Strategy::ConflictFree)
        .expect("in window");
    let mem = MemConfig::new(6, 3).expect("valid");
    group.bench_function(BenchmarkId::new("unmatched_64_modules", 128u64), |b| {
        b.iter(|| MemorySystem::new(mem).run_plan(black_box(&plan)))
    });

    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
